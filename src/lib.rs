//! # truthful-ufp
//!
//! A complete Rust implementation of **"Truthful Unsplittable Flow for
//! Large Capacity Networks"** (Yossi Azar, Iftah Gamzu, Shai Gutner;
//! SPAA 2007): monotone deterministic primal–dual algorithms — and the
//! truthful mechanisms they induce — for the `Ω(ln m)`-bounded
//! unsplittable flow problem and the `Ω(ln m)`-bounded single-minded
//! multi-unit combinatorial auction, together with the paper's
//! lower-bound constructions, the baselines it improves upon, and an
//! experiment harness certifying every quantitative claim.
//!
//! ## Quick start
//!
//! ```
//! use truthful_ufp::prelude::*;
//!
//! // A tiny network: one link of capacity 8.
//! let mut gb = GraphBuilder::directed(2);
//! gb.add_edge(NodeId(0), NodeId(1), 8.0);
//! let instance = UfpInstance::new(
//!     gb.build(),
//!     (0..20)
//!         .map(|i| Request::new(NodeId(0), NodeId(1), 1.0, 1.0 + (i % 5) as f64))
//!         .collect(),
//! );
//!
//! // Run Algorithm 1 and read its self-certified approximation ratio.
//! let result = bounded_ufp(&instance, &BoundedUfpConfig::with_epsilon(0.3));
//! assert!(result.solution.check_feasible(&instance, false).is_ok());
//! let ratio = result.certified_ratio(&instance).unwrap();
//! assert!(ratio >= 1.0 - 1e-9);
//!
//! // Wrap it into a truthful mechanism with critical-value payments.
//! let mechanism = CriticalValueMechanism::new(UfpAllocator {
//!     config: BoundedUfpConfig::with_epsilon(0.3),
//! });
//! let outcome = mechanism.run(&instance);
//! assert!(outcome.revenue() >= 0.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`ufp_netgraph`] | capacitated graphs, Dijkstra, path enumeration, generators, residual views |
//! | [`ufp_lp`] | exact simplex + Garg–Könemann fractional solvers (certified bounds) |
//! | [`ufp_par`] | crossbeam-based parallel map with per-thread workspaces |
//! | [`ufp_core`] | Algorithms 1 & 3, the reasonable-algorithm engine, baselines |
//! | [`ufp_auction`] | Algorithm 2 and the auction substrate |
//! | [`ufp_mechanism`] | critical-value payments and truthfulness verification |
//! | [`ufp_workloads`] | Figure 2/3/4 constructions, random workloads, arrival traces |
//! | [`ufp_engine`] | streaming admission-control engine (epochs, residual capacities, payments, metrics) |
//! | [`ufp_shard`] | sharded engine: partitioned parallel epochs, capacity leases, cross-shard reconciliation |

pub use ufp_auction;
pub use ufp_core;
pub use ufp_engine;
pub use ufp_lp;
pub use ufp_mechanism;
pub use ufp_netgraph;
pub use ufp_par;
pub use ufp_shard;
pub use ufp_workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use ufp_auction::{
        bounded_muca, AuctionInstance, AuctionSolution, Bid, BidId, BoundedMucaConfig, ItemId,
    };
    pub use ufp_core::{
        bounded_ufp, bounded_ufp_repeat, BoundedUfpConfig, RepeatConfig, Request, RequestId,
        StopReason, UfpInstance, UfpSolution,
    };
    pub use ufp_lp::{solve_fractional_ufp, solve_ufp_lp_exact, Commodity};
    pub use ufp_mechanism::{
        CriticalValueMechanism, MechanismOutcome, MucaAllocator, UfpAllocator,
    };
    pub use ufp_netgraph::{Graph, GraphBuilder, NodeId, Path};
    pub use ufp_par::Pool;
    pub use ufp_shard::{Partitioner, ShardConfig, ShardPlan, ShardedEngine};
}
