#!/usr/bin/env bash
# Regenerate BENCH_PR4.json — the perf-trajectory snapshot for the
# incremental selection loop (dirty-set shortest-path cache + lazy score
# heap) against the paper-literal full fan-out.
#
# Replays one contended epoch of a fixed seeded trace (the engine_sim
# default network: 1000 nodes, 5000 edges, 32 hotspot pairs) under both
# selection strategies:
#   * payments off at 10^3 / 10^4 / 10^5-request epochs (the headline
#     epoch-allocation speedup trajectory), and
#   * critical-value payments on at 100 / 300-request epochs (the
#     pricing path resumes thousands of probe suffixes, each of which
#     re-enters the selection loop). Payment batches stop at 300 because
#     the *fan-out baseline* becomes impractical beyond that on this
#     network — pricing a 10^3-request epoch under fan-out selection ran
#     past 40 minutes without finishing on the reference host, which is
#     the bottleneck this PR removes.
#
# For every batch size the two strategies' JSON documents must agree on
# every deterministic field — admissions, revenue, stop counters,
# utilization — byte for byte; only the "timing" object and the
# "selection" config field may differ. The diff below enforces that
# in-script, like scripts/bench_pr2.sh does for the payment paths.
# Expect the fan-out rows at 10^5 (allocation) and 300 (payments) to
# take several minutes each — that is the point.
#
# Usage: cargo build --release && scripts/bench_pr4.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
COMMON="--nodes 1000 --edges 5000 --eps 0.5 --hotspots 32 --epochs 1 --seed 7"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_pair() { # run_pair <tag> <mean> <payments>
  local tag=$1 mean=$2 pay=$3
  for sel in fanout incremental; do
    echo >&2 "bench_pr4: $tag mean=$mean payments=$pay selection=$sel ..."
    $BIN $COMMON --mean "$mean" --payments "$pay" --selection "$sel" --json \
      >"$tmp/run_${tag}_${mean}_${sel}.json" 2>/dev/null
  done
  # Bit-identity: strip only wall-clock and the config echo (which
  # contains the selection label); everything else must match exactly.
  if ! diff <(grep -v '"timing"\|"config"' "$tmp/run_${tag}_${mean}_fanout.json") \
            <(grep -v '"timing"\|"config"' "$tmp/run_${tag}_${mean}_incremental.json") \
            >/dev/null; then
    echo >&2 "bench_pr4: incremental vs fanout mismatch at $tag mean=$mean"
    exit 1
  fi
}

for mean in 1000 10000 100000; do
  run_pair alloc "$mean" none
done
for mean in 100 300; do
  run_pair pay "$mean" critical
done

elapsed() { # elapsed <tag> <mean> <sel>
  grep -o '"elapsed_s": [0-9.]*' "$tmp/run_$1_$2_$3.json" | grep -o '[0-9.]*'
}

speedup_row() { # speedup_row <tag> <mean> <sep>
  awk -v f="$(elapsed "$1" "$2" fanout)" \
      -v i="$(elapsed "$1" "$2" incremental)" -v m="$2" -v s="$3" \
      'BEGIN { printf "    \"batch_%s\": %.1f%s\n", m, f / i, s }'
}

{
  echo '{'
  echo '  "bench": "PR4 perf trajectory: incremental selection (dirty-set path cache + lazy score heap) vs full fan-out",'
  echo '  "network": "gnm_digraph, 1000 nodes, 5000 edges, eps 0.5, 32 hotspot pairs, seed 7",'
  echo '  "workload": "1 epoch, Poisson arrivals at the stated mean, demands in [0.2, 1.0]",'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "for every batch size the fanout and incremental documents are bit-identical on every deterministic field (verified by this script); timing objects are wall-clock and machine-dependent",'
  echo '  "speedup_incremental_vs_fanout_allocation": {'
  speedup_row alloc 1000 ','
  speedup_row alloc 10000 ','
  speedup_row alloc 100000 ''
  echo '  },'
  echo '  "speedup_incremental_vs_fanout_critical_value_payments": {'
  speedup_row pay 100 ','
  speedup_row pay 300 ''
  echo '  },'
  echo '  "runs": ['
  first=1
  for spec in alloc_1000 alloc_10000 alloc_100000 pay_100 pay_300; do
    tag=${spec%_*}
    mean=${spec##*_}
    for sel in fanout incremental; do
      [ "$first" = 1 ] || echo '    ,'
      first=0
      sed 's/^/    /' "$tmp/run_${tag}_${mean}_${sel}.json"
    done
  done
  echo '  ]'
  echo '}'
} >BENCH_PR4.json
echo >&2 "bench_pr4: wrote BENCH_PR4.json"
