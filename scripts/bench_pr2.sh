#!/usr/bin/env bash
# Regenerate BENCH_PR2.json — the perf-trajectory snapshot for the
# prefix-resumed critical-value payment path.
#
# Replays one contended epoch (guard-limited winners) of a fixed seeded
# trace at three batch sizes under all three payment policies, recording
# each run's deterministic totals and wall-clock. The "critical" and
# "critical-naive" rows of a batch size must agree on every deterministic
# field (bit-identical payments); only the timing differs. Expect the
# naive 10^4 row to take on the order of ten minutes — that is the point.
#
# Usage: cargo build --release && scripts/bench_pr2.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
COMMON="--nodes 100 --edges 400 --eps 0.7 --hotspots 2 --epochs 1 --seed 7"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for mean in 100 1000 10000; do
  for pay in none critical critical-naive; do
    echo >&2 "bench_pr2: mean=$mean payments=$pay ..."
    $BIN $COMMON --mean "$mean" --payments "$pay" --json \
      >"$tmp/run_${mean}_${pay}.json" 2>/dev/null
  done
  # Payments must be bit-identical across the two pricing paths: every
  # deterministic field of the documents must match.
  if ! diff <(grep -v '"timing"\|"payments"' "$tmp/run_${mean}_critical.json") \
            <(grep -v '"timing"\|"payments"' "$tmp/run_${mean}_critical-naive.json") \
            >/dev/null; then
    echo >&2 "bench_pr2: resumed vs naive mismatch at mean=$mean"
    exit 1
  fi
done

elapsed() {
  grep -o '"elapsed_s": [0-9.]*' "$tmp/run_$1_$2.json" | grep -o '[0-9.]*'
}

{
  echo '{'
  echo '  "bench": "PR2 perf trajectory: prefix-resumed critical-value payments",'
  echo '  "network": "gnm_digraph, 100 nodes, 400 edges, eps 0.7, 2 hotspot pairs, seed 7",'
  echo '  "workload": "1 epoch, Poisson arrivals at the stated mean, demands in [0.2, 1.0]",'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "critical and critical-naive rows are bit-identical on every deterministic field (verified by this script); timing objects are wall-clock and machine-dependent",'
  echo '  "speedup_resumed_vs_naive": {'
  for mean in 100 1000 10000; do
    sep=','
    [ "$mean" = 10000 ] && sep=''
    awk -v n="$(elapsed "$mean" critical-naive)" \
        -v r="$(elapsed "$mean" critical)" -v m="$mean" -v s="$sep" \
        'BEGIN { printf "    \"batch_%s\": %.1f%s\n", m, n / r, s }'
  done
  echo '  },'
  echo '  "runs": ['
  first=1
  for mean in 100 1000 10000; do
    for pay in none critical critical-naive; do
      [ "$first" = 1 ] || echo '    ,'
      first=0
      sed 's/^/    /' "$tmp/run_${mean}_${pay}.json"
    done
  done
  echo '  ]'
  echo '}'
} >BENCH_PR2.json
echo >&2 "bench_pr2: wrote BENCH_PR2.json"
