#!/usr/bin/env bash
# Regenerate BENCH_PR5.json — the perf snapshot for the sharded engine
# (ufp_shard: capacity leases + merge-replay reconciliation) against one
# global engine on the same stream.
#
# Network: the BENCH_PR4 scale (1000 nodes, 5000 edges, 32 hotspot
# pairs, eps 0.5, seed 7) restructured into 4 communities so a
# block partition is component-aligned — the regime where the sharded
# engine is bit-identical to the single engine, which this script
# verifies byte-for-byte before trusting any timing.
#
# Rows:
#   * critical-value payments on, churned arrivals, at two epoch sizes —
#     the headline speedup. Sharding cuts every payment probe's resume
#     suffix and every iteration's O(remaining) bookkeeping to one
#     shard's share, so the win holds even on a single core; on
#     multi-core hosts the four shard epochs additionally run in
#     parallel (shards plan/commit via ufp_par's nested-safe pool).
#   * payments off at a bulk epoch size (3·10^4 requests/epoch) — the
#     allocation-only trajectory. On one core this is Dijkstra-bound
#     (identical work either way), so the recorded speedup is modest;
#     the row exists to keep the trajectory honest across hosts.
#
# In-script checks (all fatal):
#   * shards=4 vs shards=1 byte-identical on every deterministic field
#     (strip timing, the config echo, and the shards_detail block that
#     only the sharded run emits);
#   * shards=4 rerun byte-identical to itself (determinism);
#   * "feasible": true in every document;
#   * headline paid speedup >= 2.0 at 4 shards.
#
# Usage: cargo build --release && scripts/bench_pr5.sh
#
# Pinned to --payment-scope shard-local: this snapshot measures PR 5's
# sharding win as shipped (per-shard payment probes). PR 8 made the
# global merged-trace pass the default and prices its extra probe cost
# separately in scripts/bench_pr8.sh. On these zero-cross, guard-free
# traces both scopes are byte-identical to the single engine.
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
COMMON="--nodes 1000 --edges 5000 --eps 0.5 --hotspots 32 --communities 4 --seed 7 --payment-scope shard-local"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_pair() { # run_pair <tag> <mean> <epochs> <payments> <extra...>
  local tag=$1 mean=$2 epochs=$3 pay=$4
  shift 4
  for shards in 1 4; do
    echo >&2 "bench_pr5: $tag mean=$mean epochs=$epochs payments=$pay shards=$shards ..."
    $BIN $COMMON --mean "$mean" --epochs "$epochs" --payments "$pay" \
      --shards "$shards" "$@" --json \
      >"$tmp/run_${tag}_${mean}_${shards}.json" 2>/dev/null
    grep -q '"feasible": true' "$tmp/run_${tag}_${mean}_${shards}.json" || {
      echo >&2 "bench_pr5: infeasible output at $tag shards=$shards"
      exit 1
    }
  done
  # Zero-cross equivalence: the sharded run must reproduce the single
  # engine byte for byte on every deterministic field.
  if ! diff <(grep -v '"timing"\|"config"\|"shards_detail"' "$tmp/run_${tag}_${mean}_1.json") \
            <(grep -v '"timing"\|"config"\|"shards_detail"' "$tmp/run_${tag}_${mean}_4.json") \
            >/dev/null; then
    echo >&2 "bench_pr5: sharded vs single mismatch at $tag mean=$mean"
    exit 1
  fi
  # Determinism of the sharded replay itself.
  $BIN $COMMON --mean "$mean" --epochs "$epochs" --payments "$pay" \
    --shards 4 "$@" --json >"$tmp/rerun_${tag}_${mean}.json" 2>/dev/null
  if ! diff <(grep -v '"timing"' "$tmp/run_${tag}_${mean}_4.json") \
            <(grep -v '"timing"' "$tmp/rerun_${tag}_${mean}.json") >/dev/null; then
    echo >&2 "bench_pr5: sharded replay nondeterministic at $tag mean=$mean"
    exit 1
  fi
}

run_pair pay 300 6 critical --churn 2,4
run_pair pay 600 4 critical --churn 2,4
run_pair alloc 30000 2 none

elapsed() { # elapsed <tag> <mean> <shards>
  grep -o '"elapsed_s": [0-9.]*' "$tmp/run_$1_$2_$3.json" | grep -o '[0-9.]*'
}

speedup() { # speedup <tag> <mean>
  awk -v a="$(elapsed "$1" "$2" 1)" -v b="$(elapsed "$1" "$2" 4)" \
    'BEGIN { printf "%.2f", a / b }'
}

headline=$(speedup pay 300)
headline2=$(speedup pay 600)
awk -v s="$headline" -v t="$headline2" 'BEGIN { exit !(s >= 2.0 || t >= 2.0) }' || {
  echo >&2 "bench_pr5: paid epoch-allocation speedup below 2x (got $headline / $headline2)"
  exit 1
}

{
  echo '{'
  echo '  "bench": "PR5: sharded engine (4 shards, capacity leases, merge-replay reconciliation) vs one global engine",'
  echo '  "network": "community_digraph, 1000 nodes, 5000 edges, 4 disconnected communities, eps 0.5, 8 hotspot pairs per community, seed 7",'
  echo '  "workload": "Poisson arrivals at the stated per-epoch mean, demands in [0.2, 1.0]; paid rows add TTL churn 2-4 and critical-value payments",'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "shards=4 output is byte-identical to shards=1 on every deterministic field and deterministic across reruns (both verified by this script). The paid speedup is algorithmic — per-shard payment-probe suffixes and selection bookkeeping are a quarter of the global ones — and multi-core hosts add parallel shard epochs on top. The payment-free bulk row is Dijkstra-bound on one core.",'
  echo '  "speedup_4_shards_vs_single": {'
  echo '    "paid_mean_300_x6_epochs": '"$headline"','
  echo '    "paid_mean_600_x4_epochs": '"$headline2"','
  echo '    "alloc_mean_30000_x2_epochs": '"$(speedup alloc 30000)"
  echo '  },'
  echo '  "runs": ['
  first=1
  for spec in pay_300 pay_600 alloc_30000; do
    tag=${spec%_*}
    mean=${spec##*_}
    for shards in 1 4; do
      [ "$first" = 1 ] || echo '    ,'
      first=0
      sed 's/^/    /' "$tmp/run_${tag}_${mean}_${shards}.json"
    done
  done
  echo '  ]'
  echo '}'
} >BENCH_PR5.json
echo >&2 "bench_pr5: wrote BENCH_PR5.json (paid speedups ${headline}x / ${headline2}x at 4 shards)"
