#!/usr/bin/env bash
# Regenerate BENCH_PR8.json — what the global payment pass costs.
#
# PR 8 moved critical-value pricing off the shard-local traces and onto
# the merged global replay trace (ShardConfig::payment_scope =
# GlobalTrace), which upgraded the sharded engine's zero-cross
# bit-identity contract to the full contract: payments now match a
# single engine unconditionally, guard-stopping probes and unroutable
# cross-shard arrivals included. The price is longer probes — a probe
# resumes the *global* trace's suffix instead of one shard's — and this
# script measures that cost against the legacy per-shard pass
# (--payment-scope shard-local), which survives only as this baseline.
#
# Scenarios:
#   * guard: small capacities (eps 0.8 over 160 edges), every epoch
#     guard-stops mid-run, 20% unroutable cross arrivals — the regime
#     the old pass documented as divergent. Identity is verified here.
#   * bulk: the BENCH_PR5-scale paid workload (1000 nodes, 5000 edges,
#     4 communities, churned) — the headline cost ratio at scale.
#
# In-script checks (all fatal), before any timing is trusted:
#   * global scope at shards=4 is byte-identical to shards=1 on every
#     deterministic field (payments INCLUDED — no zero-cross filter),
#     in both scenarios;
#   * the guard scenario actually guard-stops and actually charges;
#   * the shard-local baseline is deterministic across reruns;
#   * "feasible": true in every document.
#
# Usage: cargo build --release && scripts/bench_pr8.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim

GUARD="--nodes 80 --edges 160 --eps 0.8 --communities 4 --hotspots 4 \
  --mean 90 --epochs 8 --churn 1,3 --cross-fraction 0.2 --cross-unroutable \
  --payments critical --seed 7"
BULK="--nodes 1000 --edges 5000 --eps 0.5 --communities 4 --hotspots 32 \
  --mean 300 --epochs 6 --churn 2,4 --payments critical --seed 7"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

strip() { grep -v '"timing"\|"config"\|"shards_detail"\|"leases"' "$1"; }

run_scenario() { # run_scenario <tag> <flags...>
  local tag=$1
  shift
  for variant in single global local; do
    case $variant in
      single) args="--shards 1" ;;
      global) args="--shards 4 --payment-scope global" ;;
      local) args="--shards 4 --payment-scope shard-local" ;;
    esac
    echo >&2 "bench_pr8: $tag/$variant ..."
    # shellcheck disable=SC2086
    $BIN "$@" $args --json >"$tmp/${tag}_${variant}.json" 2>/dev/null
    grep -q '"feasible": true' "$tmp/${tag}_${variant}.json" || {
      echo >&2 "bench_pr8: infeasible output at $tag/$variant"
      exit 1
    }
  done
  # Payment bit-identity: the global-scope sharded run must reproduce
  # the single engine byte for byte — payments included, no filter.
  if ! diff <(strip "$tmp/${tag}_single.json") \
            <(strip "$tmp/${tag}_global.json") >/dev/null; then
    echo >&2 "bench_pr8: global-scope payments diverged from single engine at $tag"
    exit 1
  fi
  # The legacy baseline must still be deterministic (it is allowed to
  # misprice vs the single engine under guard pressure — that is the
  # bug PR 8 fixed — but never to be flaky).
  # shellcheck disable=SC2086
  $BIN "$@" --shards 4 --payment-scope shard-local --json \
    >"$tmp/${tag}_local_rerun.json" 2>/dev/null
  if ! diff <(grep -v '"timing"' "$tmp/${tag}_local.json") \
            <(grep -v '"timing"' "$tmp/${tag}_local_rerun.json") >/dev/null; then
    echo >&2 "bench_pr8: shard-local baseline nondeterministic at $tag"
    exit 1
  fi
}

# shellcheck disable=SC2086
run_scenario guard $GUARD
# shellcheck disable=SC2086
run_scenario bulk $BULK

# The guard scenario must exercise the hard regime: guard stops AND
# nonzero payments, or the identity check above proved nothing new.
guard_stops=$(grep -o '"guard": [0-9]*' "$tmp/guard_global.json" | grep -o '[0-9]*')
[ "${guard_stops:-0}" -gt 0 ] || {
  echo >&2 "bench_pr8: guard scenario never tripped the guard"
  exit 1
}
grep -o '"revenue": [0-9.]*' "$tmp/guard_global.json" | head -1 \
  | grep -qv '"revenue": 0\.0*$' || {
  echo >&2 "bench_pr8: guard scenario charged nothing"
  exit 1
}

elapsed() { # elapsed <tag> <variant>
  grep -o '"elapsed_s": [0-9.]*' "$tmp/$1_$2.json" | grep -o '[0-9.]*'
}

ratio() { # ratio <tag> <num-variant> <den-variant>
  awk -v a="$(elapsed "$1" "$2")" -v b="$(elapsed "$1" "$3")" \
    'BEGIN { printf "%.2f", a / b }'
}

{
  echo '{'
  echo '  "bench": "PR8: global merged-trace payment pass (PaymentScope::GlobalTrace) vs the legacy per-shard pass, 4 shards",'
  echo '  "scenarios": {'
  echo '    "guard": "80 nodes, 160 edges, eps 0.8 (guard-stopping epochs), 4 disconnected communities, 20% unroutable cross arrivals, churn 1-3, critical payments, seed 7",'
  echo '    "bulk": "1000 nodes, 5000 edges, eps 0.5, 4 disconnected communities, mean 300, churn 2-4, critical payments, seed 7"'
  echo '  },'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "global scope at 4 shards is byte-identical to a single engine on every deterministic field, payments included, in both scenarios (verified by this script; the guard scenario had '"$guard_stops"' guard-stopped epochs and nonzero revenue). The ratios price that contract: a global probe resumes the merged trace suffix where the legacy pass resumed one shard-local suffix.",'
  echo '  "global_pass_cost_vs_shard_local": {'
  echo '    "guard": '"$(ratio guard global local)"','
  echo '    "bulk": '"$(ratio bulk global local)"
  echo '  },'
  echo '  "sharded_global_speedup_vs_single": {'
  echo '    "guard": '"$(ratio guard single global)"','
  echo '    "bulk": '"$(ratio bulk single global)"
  echo '  },'
  echo '  "runs": ['
  first=1
  for tag in guard bulk; do
    for variant in single global local; do
      [ "$first" = 1 ] || echo '    ,'
      first=0
      sed 's/^/    /' "$tmp/${tag}_${variant}.json"
    done
  done
  echo '  ]'
  echo '}'
} >BENCH_PR8.json
echo >&2 "bench_pr8: wrote BENCH_PR8.json (global/local cost: guard $(ratio guard global local)x, bulk $(ratio bulk global local)x)"
