#!/usr/bin/env bash
# Crash-recovery smoke for the engine snapshot/restore path, end to end
# on the release binary:
#
#   1. unbroken reference run (--json, deterministic fields recorded);
#   2. the same run snapshotting every 5 epochs and "crashing" after
#      epoch 13 (--stop-after — snapshots at epochs 5 and 10 survive);
#   3. restore from the newest snapshot and replay the remaining epochs;
#   4. byte-compare restored vs unbroken output (minus the wall-clock
#      "timing" object, the one documented non-deterministic field);
#   5. corrupt the newest snapshot and restore again: recovery must fall
#      back to the older snapshot, report the torn file on stderr, and
#      STILL reproduce the unbroken run byte for byte.
#
# Usage: cargo build --release && scripts/snapshot_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
FLAGS="--nodes 120 --edges 480 --eps 0.6 --hotspots 4 --epochs 24 --mean 80 \
       --seed 11 --churn 2,6 --payments critical"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo >&2 "snapshot_smoke: unbroken reference run ..."
$BIN $FLAGS --json >"$tmp/full.json"

echo >&2 "snapshot_smoke: snapshotting run, simulated crash after epoch 13 ..."
$BIN $FLAGS --snapshot-every 5 --snapshot-dir "$tmp/snaps" --stop-after 13 \
  >"$tmp/crash.out" 2>"$tmp/crash.log"
test -s "$tmp/crash.out" && { echo >&2 "snapshot_smoke: crashed run must not print a summary"; exit 1; }
test -f "$tmp/snaps/snap-000000000010.ufpsnap" || { echo >&2 "snapshot_smoke: expected snapshot at epoch 10"; exit 1; }

echo >&2 "snapshot_smoke: restore + replay ..."
$BIN $FLAGS --restore-from "$tmp/snaps" --json >"$tmp/restored.json" 2>"$tmp/restore.log"
grep -q "restored epoch 10" "$tmp/restore.log"
if ! diff <(grep -v '"timing"' "$tmp/full.json") \
          <(grep -v '"timing"' "$tmp/restored.json"); then
  echo >&2 "snapshot_smoke: restored run diverged from the unbroken run"
  exit 1
fi

echo >&2 "snapshot_smoke: corrupting newest snapshot, restore must fall back ..."
printf '\xde\xad\xbe\xef' | dd of="$tmp/snaps/snap-000000000010.ufpsnap" \
  bs=1 seek=64 conv=notrunc 2>/dev/null
$BIN $FLAGS --restore-from "$tmp/snaps" --json >"$tmp/fallback.json" 2>"$tmp/fallback.log"
grep -q "skipped unreadable snapshot" "$tmp/fallback.log"
grep -q "restored epoch 5" "$tmp/fallback.log"
if ! diff <(grep -v '"timing"' "$tmp/full.json") \
          <(grep -v '"timing"' "$tmp/fallback.json"); then
  echo >&2 "snapshot_smoke: fallback-restored run diverged from the unbroken run"
  exit 1
fi

echo >&2 "snapshot_smoke: PASS (kill -> restore -> byte-identical, incl. torn-file fallback)"
