#!/usr/bin/env bash
# Regenerate BENCH_PR10.json — the auction-health snapshot (PR 10:
# per-epoch regret oracle, SLO/starvation accounting, Prometheus
# exporter).
#
# Two sweeps on the churned paid fault-injected workload:
#
#   1. Outage radius 1/2/3: correlated regional outages of growing
#      blast radius, with the regret oracle sampling every 2nd epoch.
#      Records wall-clock, evictions, links down, and the mean/worst
#      online-vs-offline regret ratio per radius — the health layer's
#      own answer to "how much value do bigger outages cost us?".
#   2. Threads 1/2/4/8 with the oracle on: the fractional solve is
#      dispatched onto the engine's worker pool, so the sweep bounds
#      what the out-of-band oracle does to wall-clock as the pool that
#      also serves payments grows.
#
# In-script checks (all fatal):
#   * every run exits feasible;
#   * per radius, the health-on deterministic JSON is byte-identical to
#     the health-off run (the PR 6 non-perturbation contract extended
#     to the health layer);
#   * every reported regret ratio lies in (0, 1].
#
# Usage: cargo build --release && scripts/bench_pr10.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
COMMON="--nodes 200 --edges 800 --eps 0.6 --hotspots 8 --seed 7 \
  --mean 120 --epochs 8 --churn 2,4 --payments critical"
FAIL="--fail-trace 11 --flap-rate 0.5 --outage-rate 0.5"
HEALTH="--regret-every 2 --slo-us 2000"
REPS=3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

elapsed() { grep -o '"elapsed_s": [0-9.]*' "$1" | grep -o '[0-9.]*'; }
field() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$'; }

median() { # median <v1> <v2> ...
  printf '%s\n' "$@" | sort -g | awk '{a[NR]=$1} END {
    if (NR % 2) print a[(NR+1)/2];
    else printf "%.6f\n", (a[NR/2] + a[NR/2+1]) / 2 }'
}

check_ratio() { # check_ratio <value> <context>
  awk -v r="$1" 'BEGIN { exit !(r > 0.0 && r <= 1.0) }' || {
    echo >&2 "bench_pr10: regret ratio $1 outside (0, 1] ($2)"
    exit 1
  }
}

# --- Sweep 1: outage radius, health on vs health off -----------------
radius_rows=()
for r in 1 2 3; do
  echo >&2 "bench_pr10: outage radius $r (health on + off) ..."
  $BIN $COMMON $FAIL --outage-radius "$r" $HEALTH \
    --health-out "$tmp/health_r$r.prom" --json \
    >"$tmp/radius_on_$r.json" 2>/dev/null
  $BIN $COMMON $FAIL --outage-radius "$r" --json \
    >"$tmp/radius_off_$r.json" 2>/dev/null
  for f in on off; do
    grep -q '"feasible": true' "$tmp/radius_${f}_$r.json" || {
      echo >&2 "bench_pr10: infeasible output (radius $r, $f)"
      exit 1
    }
  done
  # Health must be byte-invisible to the deterministic document.
  diff <(grep -v '"timing"' "$tmp/radius_on_$r.json") \
       <(grep -v '"timing"' "$tmp/radius_off_$r.json") >/dev/null || {
    echo >&2 "bench_pr10: health run perturbed deterministic output (radius $r)"
    exit 1
  }
  mean=$(field "$tmp/radius_on_$r.json" regret_ratio_mean)
  worst=$(field "$tmp/radius_on_$r.json" regret_ratio_worst)
  check_ratio "$mean" "radius $r mean"
  check_ratio "$worst" "radius $r worst"
  grep -q '^health_regret_ratio' "$tmp/health_r$r.prom" || {
    echo >&2 "bench_pr10: exposition missing health_regret_ratio (radius $r)"
    exit 1
  }
  radius_rows+=("{\"outage_radius\": $r, \
\"elapsed_s\": $(elapsed "$tmp/radius_on_$r.json"), \
\"evicted\": $(field "$tmp/radius_on_$r.json" evicted), \
\"links_down\": $(field "$tmp/radius_on_$r.json" links_down), \
\"regret_samples\": $(field "$tmp/radius_on_$r.json" regret_samples), \
\"regret_ratio_mean\": $mean, \
\"regret_ratio_worst\": $worst, \
\"alerts\": $(field "$tmp/radius_on_$r.json" alerts)}")
done

# --- Sweep 2: thread scaling with the oracle on ----------------------
thread_rows=()
for t in 1 2 4 8; do
  declare -a runs=()
  for i in $(seq 1 $REPS); do
    echo >&2 "bench_pr10: threads $t rep $i/$REPS ..."
    $BIN $COMMON $HEALTH --threads "$t" --json \
      >"$tmp/threads_${t}_$i.json" 2>/dev/null
    grep -q '"feasible": true' "$tmp/threads_${t}_$i.json" || {
      echo >&2 "bench_pr10: infeasible output (threads $t rep $i)"
      exit 1
    }
    runs+=("$(elapsed "$tmp/threads_${t}_$i.json")")
  done
  mean=$(field "$tmp/threads_${t}_1.json" regret_ratio_mean)
  check_ratio "$mean" "threads $t"
  thread_rows+=("{\"threads\": $t, \
\"median_elapsed_s\": $(median "${runs[@]}"), \
\"regret_ratio_mean\": $mean}")
  unset runs
done

join_rows() { local IFS=,; echo "$*"; }

{
  echo '{'
  echo '  "bench": "PR10: auction-health telemetry — regret oracle under growing outage radius, and thread scaling with the oracle on the worker pool",'
  echo '  "network": "gnm_digraph, 200 nodes, 800 edges, eps 0.6, 8 hotspot pairs, seed 7",'
  echo '  "workload": "Poisson mean 120/epoch x 8 epochs, TTL churn 2-4, critical-value payments; failure trace seed 11 (flap rate 0.5, outage rate 0.5) on the radius sweep",'
  echo '  "health_flags": "--regret-every 2 --slo-us 2000 (--health-out adds starvation + storm watermarks)",'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "every radius row is byte-diffed health-on vs health-off (minus the timing object) before its numbers are trusted; every regret ratio is gated to (0, 1] — online value can never beat the offline fractional optimum of the same frozen epoch snapshot.",'
  echo '  "radius_sweep": ['
  echo "    $(join_rows "${radius_rows[@]}")"
  echo '  ],'
  echo '  "reps_per_thread_point": '"$REPS"','
  echo '  "threads_sweep": ['
  echo "    $(join_rows "${thread_rows[@]}")"
  echo '  ],'
  echo '  "sample_exposition_lines": ['
  grep '^health_' "$tmp/health_r2.prom" | head -8 | sed 's/.*/    "&",/' | sed '$ s/,$//'
  echo '  ]'
  echo '}'
} >BENCH_PR10.json
echo >&2 "bench_pr10: wrote BENCH_PR10.json"
