#!/usr/bin/env bash
# Regenerate BENCH_PR6.json — the observability-overhead snapshot for
# ufp_obs (PR 6: structured tracing + metrics registry + epoch
# profiles).
#
# Two questions, answered on the BENCH_PR4/PR5-scale workload (1000
# nodes, 5000 edges, 32 hotspot pairs, eps 0.5, seed 7; churned paid
# arrivals):
#
#   1. What does the *off* recorder cost? The default `Recorder::off()`
#      is a `None` check on every instrumented site — the claim is
#      "zero-overhead when off", the gate is < 3% wall-clock vs the
#      PR 6 instrumentation being compiled in but disabled... which is
#      the only build there is. So the off row is measured against
#      itself across repetitions: the median |run - median| spread
#      bounds the noise floor, and the recorded overhead_off_pct is the
#      median-vs-median comparison of two interleaved off-run groups —
#      an honest A/A measurement of the off-path cost signal.
#   2. What does *full tracing* cost? Spans + gauges + histograms +
#      epoch profiles all on (--profile --trace-out --metrics-out),
#      reported as overhead_on_pct vs the off median. Informational (no
#      gate): tracing is opt-in.
#
# In-script checks (all fatal):
#   * traced deterministic JSON byte-identical to untraced (the ufp_obs
#     non-perturbation contract, re-verified here before trusting any
#     timing);
#   * "feasible": true everywhere;
#   * A/A off-recorder overhead < 3%.
#
# Usage: cargo build --release && scripts/bench_pr6.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BIN=./target/release/engine_sim
COMMON="--nodes 1000 --edges 5000 --eps 0.5 --hotspots 32 --seed 7 \
  --mean 300 --epochs 6 --churn 2,4 --payments critical"
REPS=5

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

elapsed() { grep -o '"elapsed_s": [0-9.]*' "$1" | grep -o '[0-9.]*'; }

median() { # median <v1> <v2> ...
  printf '%s\n' "$@" | sort -g | awk '{a[NR]=$1} END {
    if (NR % 2) print a[(NR+1)/2];
    else printf "%.6f\n", (a[NR/2] + a[NR/2+1]) / 2 }'
}

# Interleave off-group-A, off-group-B, and traced runs so slow drift in
# the host lands evenly across all three series.
declare -a off_a off_b on
for i in $(seq 1 $REPS); do
  echo >&2 "bench_pr6: rep $i/$REPS (off-A, off-B, traced) ..."
  $BIN $COMMON --json >"$tmp/off_a_$i.json" 2>/dev/null
  $BIN $COMMON --json >"$tmp/off_b_$i.json" 2>/dev/null
  $BIN $COMMON --json --profile --trace-out "$tmp/trace_$i.jsonl" \
    --metrics-out "$tmp/metrics_$i.json" >"$tmp/on_$i.json" 2>/dev/null
  for f in off_a off_b on; do
    grep -q '"feasible": true' "$tmp/${f}_$i.json" || {
      echo >&2 "bench_pr6: infeasible output in ${f}_$i"
      exit 1
    }
  done
  # Non-perturbation: the traced document matches the untraced one on
  # every deterministic field before any timing is trusted.
  diff <(grep -v '"timing"' "$tmp/off_a_$i.json") \
       <(grep -v '"timing"' "$tmp/on_$i.json") >/dev/null || {
    echo >&2 "bench_pr6: traced run perturbed deterministic output (rep $i)"
    exit 1
  }
  off_a+=("$(elapsed "$tmp/off_a_$i.json")")
  off_b+=("$(elapsed "$tmp/off_b_$i.json")")
  on+=("$(elapsed "$tmp/on_$i.json")")
done

med_a=$(median "${off_a[@]}")
med_b=$(median "${off_b[@]}")
med_on=$(median "${on[@]}")
overhead_off=$(awk -v a="$med_a" -v b="$med_b" \
  'BEGIN { d = b - a; if (d < 0) d = -d; printf "%.2f", 100 * d / a }')
overhead_on=$(awk -v a="$med_a" -v b="$med_on" \
  'BEGIN { printf "%.2f", 100 * (b - a) / a }')

awk -v o="$overhead_off" 'BEGIN { exit !(o < 3.0) }' || {
  echo >&2 "bench_pr6: off-recorder A/A overhead ${overhead_off}% >= 3%"
  exit 1
}

spans=$(wc -l <"$tmp/trace_1.jsonl")

{
  echo '{'
  echo '  "bench": "PR6: ufp_obs recorder overhead — off (A/A gate < 3%) and fully traced — on the churned paid 1000-node trace",'
  echo '  "network": "gnm_digraph, 1000 nodes, 5000 edges, eps 0.5, 32 hotspot pairs, seed 7",'
  echo '  "workload": "Poisson mean 300/epoch x 6 epochs, demands in [0.2, 1.0], TTL churn 2-4, critical-value payments",'
  echo '  "host": "'"$(uname -srm)"', '"$(nproc)"' core(s)",'
  echo '  "note": "off rows are two interleaved groups of the identical untraced binary (the off recorder is a None check; any measured gap is noise — the gate bounds it below 3%). The traced row enables spans, domain gauges, histograms, and per-epoch profiles; its deterministic JSON is byte-diffed against the untraced run every repetition before timings are trusted.",'
  echo '  "reps_per_group": '"$REPS"','
  echo '  "median_elapsed_s": {'
  echo '    "recorder_off_group_a": '"$med_a"','
  echo '    "recorder_off_group_b": '"$med_b"','
  echo '    "recorder_on_full_tracing": '"$med_on"
  echo '  },'
  echo '  "overhead_off_pct": '"$overhead_off"','
  echo '  "overhead_on_pct": '"$overhead_on"','
  echo '  "gate": "overhead_off_pct < 3.0 (enforced by scripts/bench_pr6.sh)",'
  echo '  "spans_per_traced_run": '"$spans"','
  echo '  "sample_runs": ['
  sed 's/^/    /' "$tmp/off_a_1.json"
  echo '    ,'
  sed 's/^/    /' "$tmp/on_1.json"
  echo '  ]'
  echo '}'
} >BENCH_PR6.json
echo >&2 "bench_pr6: wrote BENCH_PR6.json (off A/A ${overhead_off}%, traced ${overhead_on}%)"
