//! In-tree shim for the `proptest` crate (the build environment is
//! offline). A deterministic miniature property-testing harness exposing
//! the subset this workspace's test suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `pattern in strategy` bindings,
//! * [`Strategy`] for integer / float ranges, [`any`], [`Just`], tuples
//!   up to arity 6, and [`Strategy::prop_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`TestCaseError`]s.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its raw inputs), and case generation is derived deterministically from
//! the test's name, so failures reproduce without a persistence file.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Harness configuration (subset).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test name, so each test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

/// Strategy for "any value of `T`".
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+ { $body } Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}", stringify!($name), case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Property assertion: on failure the current case returns an error
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..7), x in 0.5..=1.5f64) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((0.5..=1.5).contains(&x), "x out of range: {x}");
        }

        #[test]
        fn map_and_any(v in (any::<u64>(), 1usize..4).prop_map(|(s, k)| vec![s; k])) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v[0], v[v.len() - 1]);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
