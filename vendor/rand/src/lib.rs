//! In-tree shim for the `rand` crate (the build environment is offline).
//!
//! Implements exactly the rand 0.9 API subset this workspace uses:
//!
//! * [`Rng::random_range`] over half-open and inclusive integer / float
//!   ranges,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so streams differ from upstream, but
//! every consumer in this workspace only relies on *determinism per
//! seed*, which holds: identical seeds produce identical streams on every
//! platform.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`). Panics on an empty range, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators (rand 0.9 subset).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable by this shim.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                if lo == hi {
                    return lo;
                }
                // Measure-zero difference from half-open; fine for a shim.
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draw one sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for the real
    /// crate's ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (rand 0.9 subset).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0.25..=4.0f64);
            assert!((0.25..=4.0).contains(&y));
            let z = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&z));
        }
        assert_eq!(rng.random_range(9..=9usize), 9);
        assert_eq!(rng.random_range(2.5..=2.5f64), 2.5);
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let x = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&x));
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
        }
        assert!(lo_seen && hi_seen, "poor coverage of the unit interval");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
