//! In-tree shim for the `criterion` crate (the build environment is
//! offline). A minimal wall-clock timing harness behind the criterion API
//! subset this workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! No statistics, plots, or baselines: each benchmark is warmed up once,
//! then timed over an adaptive number of iterations, and the mean
//! per-iteration time is printed. Good enough for the perf trajectory
//! table benches maintain in this repository; swap in the real criterion
//! when a registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier (name, or name + parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone (group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then an adaptive number of timed
    /// iterations (at least 5, more for sub-millisecond routines).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed();
        // Target ~200ms of measurement, clamped to [5, 1000] iterations.
        let target = Duration::from_millis(200);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(5, 1000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let human = if per_iter >= 1.0 {
            format!("{per_iter:.3} s")
        } else if per_iter >= 1e-3 {
            format!("{:.3} ms", per_iter * 1e3)
        } else if per_iter >= 1e-6 {
            format!("{:.3} µs", per_iter * 1e6)
        } else {
            format!("{:.1} ns", per_iter * 1e9)
        };
        println!("{label:<50} {human:>12}  ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark a routine without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        b.report(name);
        self
    }
}

/// Declare a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main()` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        for &n in &[10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("dij", 7).to_string(), "dij/7");
    }
}
