//! In-tree shim for the `crossbeam` crate (the build environment is
//! offline). Provides the multi-producer **multi-consumer** unbounded
//! channel subset used by `ufp-par`'s persistent worker pool: cloneable
//! [`channel::Sender`] and [`channel::Receiver`], blocking
//! [`channel::Receiver::iter`] that terminates when all senders drop.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cv: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: all receivers are gone (cannot happen through this API
    /// subset while a `Receiver` clone is alive).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.push_back(value);
            drop(inner);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `None` once the queue is empty and every
        /// sender has dropped.
        pub fn recv(&self) -> Option<T> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Some(v);
                }
                if inner.senders == 0 {
                    return None;
                }
                inner = self
                    .shared
                    .cv
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive: `Ok(v)` when a message is queued,
        /// `Err(TryRecvError::Empty)` when the queue is momentarily
        /// empty, `Err(TryRecvError::Disconnected)` once it is empty and
        /// every sender has dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The queue is empty and all senders have dropped.
        Disconnected,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.iter().count(), 2);
        assert!(rx.recv().is_none());
    }
}
