//! In-tree shim for the `parking_lot` crate (the build environment is
//! offline). Wraps `std::sync` primitives behind parking_lot's
//! poison-free API subset used by this workspace: [`Mutex::lock`]
//! returning a guard directly, [`Mutex::into_inner`], and
//! [`Condvar::wait`] taking the guard by `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII lock guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Unwrap the value, ignoring poison (parking_lot has no poisoning).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait; the lock is
    /// re-acquired (through the same `&mut` guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes and returns the guard; parking_lot's takes it
        // by &mut. Bridge by moving the inner guard out and back. No code
        // path between the read and the write can unwind: wait() only errs
        // on poisoning, which unwrap_or_else(into_inner) absorbs.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, reacquired);
        }
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` when the
    /// wait timed out (parking_lot's `WaitTimeoutResult::timed_out`
    /// collapsed to the bool this workspace needs).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        // Same guard-swap bridge as `wait`; see the comment there.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (reacquired, result) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, reacquired);
            result.timed_out()
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g += 1;
            cv.notify_all();
            while *g < 2 {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while *g < 1 {
                cv.wait(&mut g);
            }
            *g += 1;
            cv.notify_all();
        }
        assert_eq!(handle.join().unwrap(), 2);
    }
}
