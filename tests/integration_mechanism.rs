//! Cross-crate integration: the mechanism layer on top of both
//! algorithms, plus cross-algorithm incentive comparisons.

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_auction::BoundedMucaConfig;
use truthful_ufp::ufp_core::baselines::BkvConfig;
use truthful_ufp::ufp_mechanism::{
    critical_value, verify_ufp_type_truthfulness, verify_value_monotonicity,
    verify_value_truthfulness, BkvAllocator, PaymentConfig, SingleParamAllocator,
};
use truthful_ufp::ufp_workloads::{
    random_auction, random_ufp, RandomAuctionConfig, RandomUfpConfig, ValueModel,
};

fn small_contended_ufp(seed: u64) -> UfpInstance {
    random_ufp(&RandomUfpConfig {
        nodes: 10,
        edges: 40,
        requests: 18,
        epsilon_target: 0.4,
        demand_range: (0.4, 1.0),
        values: ValueModel::Uniform(0.5, 3.0),
        hotspot_pairs: Some(2),
        seed,
    })
}

#[test]
fn bounded_ufp_mechanism_truthful_across_seeds() {
    let cfg = BoundedUfpConfig::with_epsilon(0.4);
    for seed in [1u64, 5, 9] {
        let inst = small_contended_ufp(seed);
        let mech = CriticalValueMechanism::new(UfpAllocator {
            config: cfg.clone(),
        });
        let report = verify_value_truthfulness(&mech, &inst, &[0.3, 0.7, 1.4, 3.0]);
        assert!(report.passed(), "seed {seed}: {report:?}");
        let joint = verify_ufp_type_truthfulness(&inst, &cfg, 5, seed);
        assert!(joint.passed(), "seed {seed} joint lies: {joint:?}");
    }
}

#[test]
fn muca_mechanism_truthful_and_ir() {
    let a = random_auction(&RandomAuctionConfig {
        items: 10,
        bids: 15,
        bundle_size: (1, 3),
        epsilon_target: 0.4,
        seed: 21,
        ..Default::default()
    });
    let mech = CriticalValueMechanism::new(MucaAllocator {
        config: BoundedMucaConfig::with_epsilon(0.4),
    });
    let outcome = mech.run(&a);
    for agent in 0..a.num_bids() {
        let declared = a.bid(BidId(agent as u32)).value;
        if outcome.selected[agent] {
            assert!(outcome.payments[agent] <= declared + 1e-6, "IR violated");
            assert!(outcome.payments[agent] >= -1e-12);
        } else {
            assert_eq!(outcome.payments[agent], 0.0);
        }
    }
    let report = verify_value_truthfulness(&mech, &a, &[0.25, 0.6, 1.5, 4.0]);
    assert!(report.passed(), "{report:?}");
}

#[test]
fn bkv_baseline_is_also_monotone_just_worse() {
    // The BKV reconstruction must itself be monotone (it was a truthful
    // mechanism) — the paper's improvement is allocation quality, not
    // incentives.
    let inst = small_contended_ufp(33);
    let alloc = BkvAllocator {
        config: BkvConfig { epsilon: 0.4 },
    };
    let report = verify_value_monotonicity(&alloc, &inst, &[1.5, 4.0, 20.0]);
    assert!(report.passed(), "{report:?}");
}

#[test]
fn payments_are_thresholds() {
    // Declaring just above the computed payment wins; just below loses.
    // Deterministic contested link: capacity 6, ten distinct-value bids —
    // the guard rations slots, so thresholds are strictly positive.
    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 6.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..10)
            .map(|i| Request::new(NodeId(0), NodeId(1), 1.0, 1.0 + 0.8 * i as f64))
            .collect(),
    );
    let alloc = UfpAllocator {
        config: BoundedUfpConfig::with_epsilon(0.4),
    };
    let selected = alloc.selected(&inst);
    let cfg = PaymentConfig::default();
    let mut checked = 0;
    for (agent, &sel) in selected.iter().enumerate() {
        if !sel {
            continue;
        }
        let pay = critical_value(&alloc, &inst, agent, &cfg);
        if pay <= 1e-9 {
            continue; // wins at any bid: nothing to bracket
        }
        let above = alloc.with_value(&inst, agent, pay * (1.0 + 1e-6));
        assert!(
            alloc.selected(&above)[agent],
            "agent {agent} loses just above its payment"
        );
        let below = alloc.with_value(&inst, agent, pay * (1.0 - 1e-6));
        assert!(
            !alloc.selected(&below)[agent],
            "agent {agent} still wins just below its payment"
        );
        checked += 1;
    }
    assert!(
        checked > 0,
        "no positive payments to bracket — weak fixture"
    );
}

#[test]
fn losers_cannot_win_profitably() {
    // A losing agent can force its way in only by bidding above its
    // critical value — which exceeds its true value, so utility < 0.
    let inst = small_contended_ufp(55);
    let cfg = BoundedUfpConfig::with_epsilon(0.4);
    let alloc = UfpAllocator { config: cfg };
    let selected = alloc.selected(&inst);
    for (agent, &sel) in selected.iter().enumerate() {
        if sel {
            continue;
        }
        let true_value = inst.request(RequestId(agent as u32)).value;
        // Try overbidding aggressively.
        for factor in [2.0, 10.0] {
            let lie = alloc.with_value(&inst, agent, true_value * factor);
            if alloc.selected(&lie)[agent] {
                let pay = critical_value(&alloc, &lie, agent, &PaymentConfig::default());
                assert!(
                    pay >= true_value - 1e-5,
                    "agent {agent} bought a slot below its true value: pay {pay}"
                );
            }
        }
    }
}
