//! Cross-crate integration: the three lower-bound theorems reproduced
//! end-to-end through the generic engines (small parameters; the full
//! sweeps live in the experiments binary).

use truthful_ufp::ufp_auction::{
    exact_auction_optimum, iterative_bundle_minimizer, BundleEngineConfig, MucaPrimalDualScore,
};
use truthful_ufp::ufp_core::{
    exact_optimum, iterative_path_minimizer, EngineConfig, ExactConfig, PrimalDualScore, TieBreak,
};
use truthful_ufp::ufp_workloads as w;

#[test]
fn figure3_realizes_exactly_3b() {
    for b in [2usize, 4, 8, 16] {
        let inst = w::figure3(b);
        let cfg = EngineConfig {
            tie: TieBreak::ViaHub(w::figure3_hub()),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        assert_eq!(
            run.solution.value(&inst),
            w::figure3_algorithm_bound(b),
            "B={b}: adversarial schedule must reach exactly 3B"
        );
        run.solution.check_feasible(&inst, false).unwrap();
    }
}

#[test]
fn figure3_optimum_is_4b() {
    let inst = w::figure3(2);
    let exact = exact_optimum(&inst, &ExactConfig::default());
    assert_eq!(exact.value, w::figure3_optimum(2));
    assert!(exact.exhaustive);
}

#[test]
fn figure4_realizes_exactly_the_counting_bound() {
    for (p, b) in [(3usize, 2usize), (3, 4), (5, 4), (7, 2)] {
        let a = w::figure4(p, b, p * (p + 1));
        let run =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        assert_eq!(
            run.solution.value(&a),
            w::figure4_algorithm_bound(p, b),
            "p={p} B={b}: engine must reach exactly (3p+1)B/4"
        );
        run.solution.check_feasible(&a).unwrap();
    }
}

#[test]
fn figure4_optimum_matches_branch_and_bound() {
    let a = w::figure4(3, 2, 12);
    let (opt, _) = exact_auction_optimum(&a);
    assert_eq!(opt, w::figure4_optimum(3, 2));
}

#[test]
fn figure2_engine_and_simulator_agree_and_track_the_formula() {
    // Generic engine at a size it can afford…
    let (ell, b) = (8usize, 2usize);
    let inst = w::figure2(ell, b);
    let cfg = EngineConfig {
        tie: TieBreak::HighestSecondNode,
        ..Default::default()
    };
    let run = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
    let engine_alg = run.solution.value(&inst);
    // …must agree with the fast simulator…
    let sim_alg = w::figure2::simulate_figure2_adversary(ell, b, cfg.epsilon);
    assert_eq!(engine_alg, sim_alg);
    // …and a larger simulated run must sit in the proof's corridor.
    let (ell, b) = (256usize, 8usize);
    let alg = w::figure2::simulate_figure2_adversary(ell, b, 0.5);
    let opt = w::figure2_optimum(ell, b);
    let ratio = opt / alg;
    assert!(
        ratio > 1.55 && ratio <= w::figure2_predicted_ratio(b) + 1e-9,
        "B={b}: ratio {ratio} outside (1.55, predicted]"
    );
}

#[test]
fn lower_bound_instances_have_large_capacity_structure() {
    // The constructions themselves satisfy the basic shape the theorems
    // assume: uniform capacities equal to B, unit demands/values.
    let inst = w::figure2(6, 3);
    assert_eq!(inst.graph().min_capacity(), 3.0);
    assert_eq!(inst.graph().max_capacity(), 3.0);
    assert!(inst
        .requests()
        .iter()
        .all(|r| r.demand == 1.0 && r.value == 1.0));

    let inst3 = w::figure3(4);
    assert_eq!(inst3.graph().min_capacity(), 4.0);
    assert!(inst3.requests().iter().all(|r| r.demand == 1.0));

    let a = w::figure4(3, 4, 12);
    assert!(a.multiplicities().iter().all(|&c| c == 4.0));
    assert!(a.bids().iter().all(|bid| bid.value == 1.0));
}
