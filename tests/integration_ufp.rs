//! Cross-crate integration: Algorithm 1 against the LP substrate, the
//! exact solver, and the paper's theorem bounds, end to end.

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_core::{exact_optimum, ExactConfig, StopReason};
use truthful_ufp::ufp_lp::{solve_fractional_ufp, solve_ufp_lp_exact};
use truthful_ufp::ufp_workloads::{random_ufp, RandomUfpConfig, ValueModel};

const E: f64 = std::f64::consts::E;

fn contended_instance(seed: u64, eps: f64) -> UfpInstance {
    let b = truthful_ufp::ufp_workloads::required_b(80, eps);
    random_ufp(&RandomUfpConfig {
        nodes: 20,
        edges: 80,
        requests: (15.0 * b).ceil() as usize,
        epsilon_target: eps,
        demand_range: (0.3, 1.0),
        values: ValueModel::Uniform(0.5, 2.0),
        hotspot_pairs: Some(2),
        seed,
    })
}

#[test]
fn theorem31_certified_ratio_holds_across_seeds() {
    let eps = 0.3;
    for seed in 1..=5u64 {
        let inst = contended_instance(seed, eps);
        assert!(inst.meets_large_capacity_bound(eps));
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(eps));
        run.solution
            .check_feasible(&inst, false)
            .expect("Lemma 3.3");
        let ratio = run.certified_ratio(&inst).expect("certificate");
        let guarantee = (1.0 + 6.0 * eps) * E / (E - 1.0);
        assert!(
            ratio <= guarantee + 1e-6,
            "seed {seed}: certified ratio {ratio} above guarantee {guarantee}"
        );
    }
}

#[test]
fn dual_certificate_upper_bounds_exact_lp() {
    // Claim 3.6's bound must sit above the true fractional optimum.
    let inst = random_ufp(&RandomUfpConfig {
        nodes: 8,
        edges: 24,
        requests: 12,
        epsilon_target: 0.5,
        demand_range: (0.4, 1.0),
        values: ValueModel::Uniform(0.5, 2.0),
        hotspot_pairs: None,
        seed: 3,
    });
    let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
    let lp = solve_ufp_lp_exact(inst.graph(), &inst.to_commodities());
    if let Some(bound) = run.dual_upper_bound() {
        assert!(
            bound >= lp.objective - 1e-6,
            "certificate {bound} below LP optimum {}",
            lp.objective
        );
    }
    // And the LP optimum itself dominates the integral algorithm.
    assert!(lp.objective >= run.solution.value(&inst) - 1e-6);
}

#[test]
fn algorithm_never_beats_exact_optimum() {
    for seed in [7u64, 8, 9] {
        let inst = random_ufp(&RandomUfpConfig {
            nodes: 7,
            edges: 20,
            requests: 8,
            epsilon_target: 0.5,
            demand_range: (0.5, 1.0),
            values: ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: None,
            seed,
        });
        let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.5));
        let exact = exact_optimum(&inst, &ExactConfig::default());
        assert!(
            run.solution.value(&inst) <= exact.value + 1e-9,
            "seed {seed}: heuristic beat the optimum?!"
        );
    }
}

#[test]
fn fractional_solvers_bracket_each_other() {
    let inst = contended_instance(11, 0.4);
    let commodities = inst.to_commodities();
    let gk = solve_fractional_ufp(inst.graph(), &commodities, 0.05, 300_000);
    // GK primal ≤ OPT_frac ≤ GK dual bound; the integral algorithm lies
    // under both.
    assert!(gk.value <= gk.upper_bound + 1e-6);
    let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.4));
    assert!(run.solution.value(&inst) <= gk.upper_bound + 1e-6);
}

#[test]
fn claim52_certificate_dominates_figure5_lp() {
    // The repetitions dual bound (Claim 5.2) upper-bounds the Figure 5
    // relaxation, which in turn dominates the integral repetition value.
    use truthful_ufp::ufp_lp::solve_ufp_repetition_lp_exact;
    let mut gb = GraphBuilder::directed(3);
    gb.add_edge(NodeId(0), NodeId(1), 12.0);
    gb.add_edge(NodeId(1), NodeId(2), 9.0);
    let inst = UfpInstance::new(
        gb.build(),
        vec![
            Request::new(NodeId(0), NodeId(2), 1.0, 2.0),
            Request::new(NodeId(0), NodeId(1), 0.5, 0.6),
        ],
    );
    let run = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(0.3));
    let fig5 = solve_ufp_repetition_lp_exact(inst.graph(), &inst.to_commodities());
    let alg = run.solution.value(&inst);
    assert!(
        alg <= fig5.objective + 1e-6,
        "ALG {alg} above Figure 5 LP {}",
        fig5.objective
    );
    let bound = run.dual_upper_bound().expect("claim 5.2");
    assert!(
        bound >= fig5.objective - 1e-6,
        "certificate {bound} below Figure 5 optimum {}",
        fig5.objective
    );
}

#[test]
fn repetition_variant_dominates_plain_on_shared_instance() {
    // With repetitions allowed, the achievable value can only grow.
    let inst = contended_instance(13, 0.4);
    let plain = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.4));
    let repeat = bounded_ufp_repeat(&inst, &RepeatConfig::with_epsilon(0.4));
    assert!(
        repeat.solution.value(&inst) >= plain.solution.value(&inst) * 0.8,
        "repetition run unexpectedly far below plain: {} vs {}",
        repeat.solution.value(&inst),
        plain.solution.value(&inst)
    );
    repeat
        .solution
        .check_feasible(&inst, true)
        .expect("repetitions feasible");
}

#[test]
fn stop_reasons_cover_the_three_regimes() {
    // Guard: contended instance.
    let run = bounded_ufp(
        &contended_instance(17, 0.3),
        &BoundedUfpConfig::with_epsilon(0.3),
    );
    assert_eq!(run.trace.stop_reason, StopReason::Guard);

    // Exhausted: abundant capacity.
    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 1000.0);
    let inst = UfpInstance::new(
        gb.build(),
        (0..5)
            .map(|_| Request::new(NodeId(0), NodeId(1), 1.0, 1.0))
            .collect(),
    );
    let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.3));
    assert_eq!(run.trace.stop_reason, StopReason::Exhausted);

    // NoPath: disconnected terminals.
    let gb = GraphBuilder::directed(3);
    let inst = UfpInstance::new(
        gb.build(),
        vec![Request::new(NodeId(0), NodeId(2), 1.0, 1.0)],
    );
    let run = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.3));
    assert_eq!(run.trace.stop_reason, StopReason::NoPath);
}

#[test]
fn parallel_pool_is_bit_identical_on_integration_workload() {
    let inst = contended_instance(19, 0.35);
    let seq = bounded_ufp(&inst, &BoundedUfpConfig::with_epsilon(0.35));
    let par = bounded_ufp(
        &inst,
        &BoundedUfpConfig::with_epsilon(0.35).parallel(Pool::new(4)),
    );
    assert_eq!(seq.solution.routed.len(), par.solution.routed.len());
    for (a, b) in seq.solution.routed.iter().zip(&par.solution.routed) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.nodes(), b.1.nodes());
    }
}
