//! Cross-crate integration for the auction stack: Algorithm 2, the LP
//! relaxation, baselines, and the theorem bound.

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_auction::{
    auction_lp, bkv_auction, exact_auction_optimum, greedy_auction, rounding_auction,
    AuctionGreedyOrder,
};
use truthful_ufp::ufp_workloads::{
    random_auction, required_multiplicity, Popularity, RandomAuctionConfig,
};

const E: f64 = std::f64::consts::E;

/// The **one table to re-baseline** when the vendor `rand` shim
/// (xoshiro256++) is swapped for the real crates.io `StdRng` (ChaCha12)
/// — see ROADMAP "Vendor shims". Every seeded stream changes on that
/// swap, so any assertion about a *specific* seed's outcome lives here,
/// behind [`assert_seed_baseline`], instead of being scattered through
/// test bodies as magic constants.
///
/// Theorem-backed assertions (certified ratios, feasibility, bundle
/// shrinking) hold for *any* seed and deliberately do not appear here.
mod seed_baseline {
    /// Per-seed outcome of Bounded-MUCA vs BKV on the contended Zipf
    /// auctions of `muca_beats_or_matches_bkv_under_contention`, for
    /// seeds `1..=5` under the current (shim) RNG stream.
    pub const MUCA_BEATS_BKV: [bool; 5] = [true, true, true, true, true];
}

/// Compare one seed's observed outcome against the recorded baseline,
/// with a message that points straight at the table to update after an
/// RNG swap.
fn assert_seed_baseline(what: &str, seed: u64, observed: bool, expected: bool) {
    assert_eq!(
        observed, expected,
        "{what}: seed {seed} diverged from the recorded baseline. If the \
         vendor rand shim was just swapped for the real crate, re-baseline \
         `seed_baseline` in tests/integration_auction.rs (one table, no \
         other constants to hunt down); otherwise this is a real regression."
    );
}

fn contended_auction(seed: u64, eps: f64) -> AuctionInstance {
    let b = required_multiplicity(20, eps);
    random_auction(&RandomAuctionConfig {
        items: 20,
        bids: (20.0 * b).ceil() as usize,
        bundle_size: (2, 5),
        epsilon_target: eps,
        popularity: Popularity::Zipf { s: 1.2 },
        seed,
        ..Default::default()
    })
}

#[test]
fn theorem41_certified_ratio_across_seeds() {
    let eps = 0.35;
    for seed in 1..=4u64 {
        let a = contended_auction(seed, eps);
        assert!(a.meets_large_multiplicity_bound(eps));
        let run = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
        run.solution.check_feasible(&a).expect("feasible");
        let ratio = run.certified_ratio(&a).expect("certificate");
        let guarantee = (1.0 + 6.0 * eps) * E / (E - 1.0);
        assert!(
            ratio <= guarantee + 1e-6,
            "seed {seed}: ratio {ratio} above {guarantee}"
        );
    }
}

#[test]
fn lp_relaxation_dominates_integral_solutions() {
    let a = random_auction(&RandomAuctionConfig {
        items: 8,
        bids: 14,
        bundle_size: (1, 3),
        epsilon_target: 0.5,
        seed: 12,
        ..Default::default()
    });
    let (lp_opt, _) = auction_lp(&a);
    let (int_opt, int_sol) = exact_auction_optimum(&a);
    assert!(lp_opt >= int_opt - 1e-7);
    int_sol.check_feasible(&a).unwrap();

    let muca = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.5));
    assert!(muca.solution.value(&a) <= int_opt + 1e-9);
    for order in [
        AuctionGreedyOrder::ByValue,
        AuctionGreedyOrder::ByDensity,
        AuctionGreedyOrder::BySqrtDensity,
    ] {
        assert!(greedy_auction(&a, order).value(&a) <= int_opt + 1e-9);
    }
}

#[test]
fn all_auction_algorithms_produce_feasible_outcomes() {
    let a = contended_auction(5, 0.4);
    bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.4))
        .solution
        .check_feasible(&a)
        .unwrap();
    bkv_auction(&a, 0.4).check_feasible(&a).unwrap();
    for order in [
        AuctionGreedyOrder::ByValue,
        AuctionGreedyOrder::ByDensity,
        AuctionGreedyOrder::BySqrtDensity,
    ] {
        greedy_auction(&a, order).check_feasible(&a).unwrap();
    }
    for seed in 0..3 {
        rounding_auction(&a, 0.1, seed).check_feasible(&a).unwrap();
    }
}

#[test]
fn muca_beats_or_matches_bkv_under_contention() {
    // The same e/(e−1)-vs-e separation as E7, auction flavored. BKV is
    // order-dependent; Bounded-MUCA picks globally. On contended Zipf
    // auctions the improvement should be visible (allowing a small
    // tolerance for lucky orders).
    let mut wins = 0;
    for seed in 1..=5u64 {
        let a = contended_auction(seed, 0.4);
        let muca = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.4))
            .solution
            .value(&a);
        let bkv = bkv_auction(&a, 0.4).value(&a);
        let muca_wins = muca >= bkv;
        // Exact per-seed outcomes are seed-stream-sensitive and live in
        // the baseline table, not here.
        assert_seed_baseline(
            "muca vs bkv",
            seed,
            muca_wins,
            seed_baseline::MUCA_BEATS_BKV[(seed - 1) as usize],
        );
        if muca_wins {
            wins += 1;
        }
    }
    // The paper-level claim is stream-independent: Bounded-MUCA wins the
    // contention on (at least) most seeds, whatever the RNG.
    assert!(
        wins >= 4,
        "Bounded-MUCA lost to BKV on {} of 5 seeds",
        5 - wins
    );
}

#[test]
fn unknown_single_minded_shrinking_preserved_under_contention() {
    // Corollary 4.2 on a non-trivial instance: every winner keeps winning
    // after dropping a random item from its bundle.
    let a = contended_auction(9, 0.5);
    let cfg = BoundedMucaConfig::with_epsilon(0.5);
    let run = bounded_muca(&a, &cfg);
    let mut checked = 0;
    for &winner in run.solution.winners.iter().take(10) {
        let bundle = a.bid(winner).bundle.clone();
        if bundle.len() < 2 {
            continue;
        }
        let shrunk: Vec<_> = bundle[1..].to_vec();
        let probe = a.with_declared_bundle(winner, shrunk);
        let rerun = bounded_muca(&probe, &cfg);
        assert!(
            rerun.solution.contains(winner),
            "winner {winner} lost after shrinking its bundle"
        );
        checked += 1;
    }
    assert!(checked > 0);
}
