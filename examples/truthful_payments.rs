//! Agents try to lie; utilities never improve. A live demonstration of
//! Theorem 2.3 on a contested link, including what happens to the
//! *non-monotone* randomized-rounding baseline under the same probes.
//!
//! ```text
//! cargo run --release --example truthful_payments
//! ```

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_core::baselines::{randomized_rounding, RoundingConfig};
use truthful_ufp::ufp_mechanism::verify_value_truthfulness;

fn main() {
    // One contested link: capacity 6, ten agents with distinct values.
    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 6.0);
    let instance = UfpInstance::new(
        gb.build(),
        (0..10)
            .map(|i| Request::new(NodeId(0), NodeId(1), 1.0, 1.0 + 0.8 * i as f64))
            .collect(),
    );

    let config = BoundedUfpConfig::with_epsilon(0.4);
    let mechanism = CriticalValueMechanism::new(UfpAllocator {
        config: config.clone(),
    });
    let honest = mechanism.run(&instance);

    println!("agent | bid  | wins | pays | utility(truth)");
    println!("------+------+------+------+---------------");
    for agent in 0..instance.num_requests() {
        let bid = instance.request(RequestId(agent as u32)).value;
        println!(
            "{agent:>5} | {bid:>4.1} | {:>4} | {:>4.2} | {:>6.2}",
            honest.selected[agent],
            honest.payments[agent],
            honest.utility(agent, bid)
        );
    }

    // Every agent tries a grid of lies.
    println!("\nprobing lies (value misreports ×0.2 .. ×5.0) for every agent…");
    let report = verify_value_truthfulness(
        &mechanism,
        &instance,
        &[0.2, 0.5, 0.8, 0.95, 1.05, 1.5, 2.0, 5.0],
    );
    println!(
        "probes: {}, violations: {}, best gain any lie achieved: {:.2e}",
        report.probes, report.violations, report.worst_gain
    );
    assert!(report.passed(), "truthfulness must hold");
    println!("=> no misreport beats truth-telling (Theorem 2.3).");

    // Contrast: randomized rounding with fixed coins is NOT monotone.
    // A multi-path network with hotspot contention makes the LP solution
    // fractional, which is where raising a bid can reshuffle the rounding.
    println!("\nsame probes against randomized rounding (coins fixed, contended network):");
    let contended =
        truthful_ufp::ufp_workloads::random_ufp(&truthful_ufp::ufp_workloads::RandomUfpConfig {
            nodes: 8,
            edges: 24,
            requests: 24,
            epsilon_target: 0.6,
            demand_range: (0.4, 1.0),
            values: truthful_ufp::ufp_workloads::ValueModel::Uniform(0.5, 2.0),
            hotspot_pairs: Some(2),
            seed: 2,
        });
    let cfg = RoundingConfig {
        epsilon: 0.1,
        seed: 1234,
        ..Default::default()
    };
    let base = randomized_rounding(&contended, &cfg);
    let mut flips = 0;
    for agent in contended.request_ids() {
        if !base.contains(agent) {
            continue;
        }
        for factor in [1.3, 2.0, 4.0] {
            let raised = contended.with_declared_type(
                agent,
                contended.request(agent).demand,
                contended.request(agent).value * factor,
            );
            if !randomized_rounding(&raised, &cfg).contains(agent) {
                flips += 1;
            }
        }
    }
    println!("winners dropped after RAISING their bid: {flips} case(s).");
    if flips > 0 {
        println!("monotonicity fails, so no payment rule can make rounding truthful");
        println!("(the paper's §1 motivation; experiment E12 records a pinned witness).");
    } else {
        println!("(none on this draw — experiment E12 searches more seeds and records a");
        println!("pinned witness where a winner is rejected after doubling its bid.)");
    }
}
