//! Quickstart: build a network, submit requests, run the truthful
//! mechanism, inspect allocation + payments + the certified ratio.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use truthful_ufp::prelude::*;

fn main() {
    // A small backbone: two routers connected by parallel 2-hop routes,
    // every link with capacity 12 (the "large capacity" regime).
    let mut gb = GraphBuilder::directed(4);
    let (a, x, y, b) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    gb.add_edge(a, x, 12.0);
    gb.add_edge(x, b, 12.0);
    gb.add_edge(a, y, 12.0);
    gb.add_edge(y, b, 12.0);
    let graph = gb.build();

    // 40 connection requests a -> b with varied bandwidth demands and
    // declared values. Demands are normalized into (0, 1].
    let requests: Vec<Request> = (0..40)
        .map(|i| {
            let demand = 0.4 + 0.15 * ((i % 5) as f64);
            let value = 1.0 + 0.5 * ((i % 7) as f64);
            Request::new(a, b, demand, value)
        })
        .collect();
    let instance = UfpInstance::new(graph, requests);
    println!(
        "instance: {} requests, B = {}, total declared value {:.1}",
        instance.num_requests(),
        instance.bound_b(),
        instance.total_value()
    );

    // --- Algorithm 1: the monotone primal-dual allocation -----------------
    let config = BoundedUfpConfig::with_epsilon(0.25);
    let result = bounded_ufp(&instance, &config);
    result
        .solution
        .check_feasible(&instance, false)
        .expect("Lemma 3.3: output is always feasible");
    println!(
        "\nBounded-UFP(0.25): routed {} requests, value {:.2} (stopped: {:?})",
        result.solution.len(),
        result.solution.value(&instance),
        result.trace.stop_reason,
    );
    if let Some(ratio) = result.certified_ratio(&instance) {
        println!(
            "certified approximation ratio ≤ {ratio:.4}  (theorem bound: {:.4})",
            (1.0 + 6.0 * 0.25) * std::f64::consts::E / (std::f64::consts::E - 1.0)
        );
    }

    // --- Theorem 2.3: the truthful mechanism on top -----------------------
    let mechanism = CriticalValueMechanism::new(UfpAllocator { config });
    let outcome = mechanism.run(&instance);
    println!(
        "\nmechanism: {} winners, revenue {:.2}",
        outcome.num_winners(),
        outcome.revenue()
    );
    for agent in 0..instance.num_requests().min(8) {
        if outcome.selected[agent] {
            let bid = instance.request(RequestId(agent as u32)).value;
            println!(
                "  agent {agent:2}: bid {bid:.2}, pays {:.2}, utility {:.2}",
                outcome.payments[agent],
                outcome.utility(agent, bid)
            );
        }
    }
    println!("  (winners always pay at most their bid — individual rationality)");
}
