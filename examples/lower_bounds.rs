//! Replay the paper's three lower-bound constructions (Figures 2, 3, 4)
//! and watch the adversary cap every reasonable iterative minimizer.
//!
//! ```text
//! cargo run --release --example lower_bounds
//! ```

use truthful_ufp::ufp_auction::{
    iterative_bundle_minimizer, BundleEngineConfig, MucaPrimalDualScore,
};
use truthful_ufp::ufp_core::{iterative_path_minimizer, EngineConfig, PrimalDualScore, TieBreak};
use truthful_ufp::ufp_workloads as workloads;

fn main() {
    let e = std::f64::consts::E;
    println!("e/(e-1) = {:.4}, 4/3 = {:.4}\n", e / (e - 1.0), 4.0 / 3.0);

    // --- Figure 2 (Theorem 3.11): directed, ratio -> e/(e-1) ---------------
    println!("Figure 2 (directed staircase, adversarial ties):");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>8} {:>10}",
        "B", "ell", "ALG", "OPT", "ratio", "predicted"
    );
    for (b, ell) in [(2usize, 64usize), (4, 128), (8, 256), (16, 512)] {
        let alg = workloads::figure2::simulate_figure2_adversary(ell, b, 0.5);
        let opt = workloads::figure2_optimum(ell, b);
        println!(
            "{b:>4} {ell:>6} {alg:>10.0} {opt:>10.0} {:>8.4} {:>10.4}",
            opt / alg,
            workloads::figure2_predicted_ratio(b)
        );
    }

    // --- Figure 3 (Theorem 3.12): undirected, ratio -> 4/3 -----------------
    println!("\nFigure 3 (7-vertex hub graph, hub-preferring ties):");
    println!("{:>4} {:>10} {:>10} {:>8}", "B", "ALG", "OPT", "ratio");
    for b in [2usize, 16, 64] {
        let inst = workloads::figure3(b);
        let cfg = EngineConfig {
            tie: TieBreak::ViaHub(workloads::figure3_hub()),
            ..Default::default()
        };
        let run = iterative_path_minimizer(&inst, &PrimalDualScore, &cfg);
        let alg = run.solution.value(&inst);
        let opt = workloads::figure3_optimum(b);
        println!("{b:>4} {alg:>10.0} {opt:>10.0} {:>8.4}", opt / alg);
    }

    // --- Figure 4 (Theorem 4.5): auctions, ratio -> 4/3 --------------------
    println!("\nFigure 4 (row/column bundles, lowest-id ties):");
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>10}",
        "p", "ALG", "OPT", "ratio", "predicted"
    );
    for p in [3usize, 7, 15] {
        let a = workloads::figure4(p, 4, p * (p + 1));
        let run =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        let alg = run.solution.value(&a);
        let opt = workloads::figure4_optimum(p, 4);
        println!(
            "{p:>4} {alg:>10.0} {opt:>10.0} {:>8.4} {:>10.4}",
            opt / alg,
            workloads::figure4_predicted_ratio(p)
        );
    }

    println!("\nConsequence (paper §3.3): Bounded-UFP is optimal within this family —");
    println!("a monotone PTAS, if one exists, needs fundamentally different techniques.");
}
