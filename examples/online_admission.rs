//! Online admission control: drive the streaming engine over three epochs
//! of Poisson arrivals and read acceptance, revenue, and utilization per
//! epoch.
//!
//! ```text
//! cargo run --example online_admission
//! ```

use truthful_ufp::ufp_engine::{Engine, EngineConfig, PaymentPolicy};
use truthful_ufp::ufp_netgraph::generators;
use truthful_ufp::ufp_workloads::arrivals::{arrival_trace, ArrivalProcess, ArrivalTraceConfig};
use truthful_ufp::ufp_workloads::random_ufp::required_b;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small ISP-ish backbone in the large-capacity regime for ε = 0.5.
    let epsilon = 0.5;
    let (nodes, edges) = (20, 60);
    let b = required_b(edges, epsilon).ceil();
    let graph = generators::gnm_digraph(nodes, edges, (b, 2.0 * b), &mut StdRng::seed_from_u64(11));

    // Three epochs of Poisson(60) arrivals concentrated on two hotspot
    // pairs — enough contention that critical-value payments bind.
    let trace = arrival_trace(
        &graph,
        &ArrivalTraceConfig {
            epochs: 3,
            process: ArrivalProcess::Poisson { mean: 60.0 },
            hotspot_pairs: Some(2),
            seed: 11,
            ..Default::default()
        },
    );

    // Truthful engine: critical-value payments against each epoch's
    // frozen residual state.
    let config = EngineConfig::with_epsilon(epsilon).with_payments(PaymentPolicy::critical_value());
    let mut engine = Engine::new(graph, config);

    println!("epoch  arrivals  accepted  acc-rate  revenue  value  util%");
    for batch in &trace {
        let report = engine.submit_batch(batch);
        println!(
            "{:>5}  {:>8}  {:>8}  {:>7.1}%  {:>7.2}  {:>5.1}  {:>5.2}",
            report.epoch,
            report.arrivals,
            report.accepted,
            100.0 * report.accepted as f64 / report.arrivals.max(1) as f64,
            report.revenue,
            report.value_admitted,
            100.0 * report.total_utilization,
        );
    }

    let metrics = engine.metrics();
    println!(
        "\ntotal: {}/{} admitted ({:.1}%), revenue {:.2} on value {:.2}",
        metrics.accepted,
        metrics.arrivals,
        100.0 * metrics.acceptance_rate(),
        metrics.revenue,
        metrics.value_admitted,
    );

    // The whole online run is one offline-checkable allocation.
    let feasible = engine
        .cumulative_solution()
        .check_feasible(&engine.instance(), false)
        .is_ok();
    println!("cumulative allocation feasible: {feasible}");
    assert!(feasible);
}
