//! ISP admission control: the paper's motivating network-routing
//! scenario on a grid backbone.
//!
//! An ISP sells bandwidth-reserved connections across its backbone.
//! Customers declare (bandwidth, willingness-to-pay); the operator wants
//! near-maximal revenue **and** robustness to strategic bidding. This is
//! precisely the Ω(ln m)-bounded UFP in its mechanism-design setting.
//!
//! ```text
//! cargo run --release --example isp_routing
//! ```

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_core::baselines::{greedy, GreedyOrder};
use truthful_ufp::ufp_workloads::{random_grid_ufp, ValueModel};

fn main() {
    // A 6x8 grid backbone; link capacities set to satisfy B >= ln(m)/eps^2
    // for eps = 0.25. 400 customer requests with heavy-tailed values.
    let eps = 0.25;
    let instance = random_grid_ufp(6, 8, 400, eps, 2024);
    let _ = ValueModel::Uniform(0.0, 0.0); // (models available for custom workloads)
    println!(
        "backbone: {} routers, {} links, link capacity ≥ {:.0}",
        instance.graph().num_nodes(),
        instance.graph().num_edges(),
        instance.graph().min_capacity()
    );
    println!(
        "demand book: {} requests, total declared value {:.1}",
        instance.num_requests(),
        instance.total_value()
    );

    // Admission control via Algorithm 1, parallel shortest-path fan-out.
    let config = BoundedUfpConfig::with_epsilon(eps).parallel(Pool::auto());
    let run = bounded_ufp(&instance, &config);
    run.solution
        .check_feasible(&instance, false)
        .expect("admission plan must respect link capacities");
    let value = run.solution.value(&instance);
    println!(
        "\nBounded-UFP admitted {} connections, booked value {value:.1}",
        run.solution.len()
    );
    if let Some(bound) = run.tight_upper_bound(&instance) {
        println!(
            "certified: no clairvoyant plan exceeds {bound:.1} (ratio ≤ {:.3})",
            bound / value
        );
    }

    // Link utilization profile.
    let util = run.solution.edge_utilization(&instance);
    let mean = util.iter().sum::<f64>() / util.len() as f64;
    let peak = util.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "link utilization: mean {:.1}%, peak {:.1}%",
        mean * 100.0,
        peak * 100.0
    );

    // Compare against a non-truthful greedy the ISP might have used.
    let g = greedy(&instance, GreedyOrder::ByDensity);
    println!(
        "\ngreedy-by-density books {:.1} — but offers no strategy-proofness:",
        g.value(&instance)
    );
    println!("customers can game it by shading bids; Bounded-UFP + critical-value");
    println!("payments make truthful bidding a dominant strategy (see E8).");

    // Longest admitted route, for flavor.
    if let Some((rid, path)) = run.solution.routed.iter().max_by_key(|(_, p)| p.len()) {
        println!(
            "\nlongest admitted route: request {rid} over {} hops",
            path.len()
        );
    }
}
