//! Multi-unit combinatorial auction: selling spectrum licenses with
//! multiplicities (Algorithm 2 + critical-value payments).
//!
//! Each region sells `c_u` identical licenses; single-minded carriers bid
//! on bundles of regions. With `c_u = Ω(ln m)` the paper's Bounded-MUCA
//! gives a truthful e/(e−1)-approximate auction — this example runs it
//! end-to-end and shows the incentive properties live.
//!
//! ```text
//! cargo run --release --example spectrum_auction
//! ```

use truthful_ufp::prelude::*;
use truthful_ufp::ufp_auction::{auction_lp, greedy_auction, AuctionGreedyOrder};
use truthful_ufp::ufp_workloads::{
    random_auction, required_multiplicity, Popularity, RandomAuctionConfig,
};

fn main() {
    let eps = 0.35;
    // Enough carriers that licenses are actually scarce: bids scale with
    // the multiplicities (≈ 12·B), so the market clears with real prices.
    let bids = (12.0 * required_multiplicity(16, eps)).ceil() as usize;
    let auction = random_auction(&RandomAuctionConfig {
        items: 16,           // regions
        bids,                // carriers
        bundle_size: (1, 4), // coverage footprints
        epsilon_target: eps,
        value_per_item: (1.0, 4.0),
        popularity: Popularity::Zipf { s: 1.1 }, // metro regions are hot
        seed: 7,
    });
    println!(
        "auction: {} regions (multiplicities ≥ {:.0}), {} single-minded bids",
        auction.num_items(),
        auction.bound_b(),
        auction.num_bids()
    );

    // --- allocation ---------------------------------------------------------
    let config = BoundedMucaConfig::with_epsilon(eps);
    let run = bounded_muca(&auction, &config);
    run.solution
        .check_feasible(&auction)
        .expect("no region oversold");
    let value = run.solution.value(&auction);
    println!(
        "\nBounded-MUCA: {} winners, welfare {value:.1}",
        run.solution.len()
    );
    let (lp_opt, _) = auction_lp(&auction);
    println!(
        "LP upper bound on any allocation: {lp_opt:.1}  → realized ratio ≤ {:.3}",
        lp_opt / value
    );
    for order in [
        AuctionGreedyOrder::ByValue,
        AuctionGreedyOrder::BySqrtDensity,
    ] {
        let g = greedy_auction(&auction, order);
        println!("  {:?} greedy: {:.1}", order, g.value(&auction));
    }

    // --- payments + incentives ----------------------------------------------
    let mechanism = CriticalValueMechanism::new(MucaAllocator { config });
    let outcome = mechanism.run(&auction);
    println!(
        "\nmechanism: revenue {:.1} from {} winners",
        outcome.revenue(),
        outcome.num_winners()
    );
    let mut shown = 0;
    for agent in 0..auction.num_bids() {
        if outcome.selected[agent] && shown < 10 {
            shown += 1;
            let bid = auction.bid(BidId(agent as u32));
            println!(
                "  carrier {agent:3}: bundle of {} regions, bid {:.1}, pays {:.2}",
                bid.size(),
                bid.value,
                outcome.payments[agent]
            );
        }
    }

    // Demonstrate that shading a winning bid below its payment loses it.
    if let Some(agent) = (0..auction.num_bids()).find(|&a| outcome.selected[a]) {
        let pay = outcome.payments[agent];
        if pay > 1e-6 {
            let shaded = auction.with_declared_value(BidId(agent as u32), pay * 0.9);
            let rerun = bounded_muca(&shaded, &config);
            println!(
                "\ncarrier {agent} shading below its critical value {pay:.2} → selected: {}",
                rerun.solution.contains(BidId(agent as u32))
            );
            println!("(the critical value is exactly the market-clearing threshold)");
        }
    }
}
