//! # ufp-par
//!
//! A minimal data-parallel `map` over a **persistent** worker pool.
//!
//! The paper's Algorithm 1 runs, in every iteration, one shortest-path
//! computation per remaining request ("for all r ∈ L … let p_r be the
//! shortest path"). Those computations are independent, so the natural
//! parallelization is a fan-out over requests with a deterministic
//! reduction — but the fan-out happens *thousands of times per run*, so
//! spawning scoped threads per call (the obvious `crossbeam::scope`
//! pattern) pays thread-creation latency every iteration and can easily
//! cost more than the work itself. This crate instead keeps one global
//! set of workers alive (created lazily, sized to the hardware) and
//! dispatches borrowed closures to them with a completion latch, the
//! same architecture as rayon-core / scoped_threadpool:
//!
//! * [`Pool::map_with`] — parallel indexed map with a **per-thread
//!   workspace** (each worker owns one reusable Dijkstra scratch space),
//!   dynamic chunked work distribution via an atomic cursor, and results
//!   returned in input order regardless of scheduling.
//! * [`Pool::map`] — the workspace-free convenience wrapper.
//! * [`Pool::map_mut`] — parallel map over `&mut` items (one engine per
//!   shard, each mutated by exactly one worker).
//! * [`Pool::argmin_by_key`] — deterministic parallel argmin.
//!
//! Determinism: output is ordered by input index, so parallel and
//! sequential execution produce identical results.
//!
//! **Nested dispatch is deadlock-free.** A job may itself call
//! [`Pool::map`] (or any other combinator): every latch wait is
//! *help-first* — a thread blocked on outstanding jobs keeps pulling
//! queued jobs (its own sub-jobs included) and running them on its own
//! stack, so the pool can never park all of its workers on latches whose
//! jobs nobody is left to execute. This is the standard work-stealing
//! discipline (rayon's `join` does the same), restricted to the one
//! global FIFO this crate already has.
//!
//! ## Safety
//!
//! Jobs sent to the long-lived workers are boxed closures whose borrows
//! are *not* `'static`; the lifetime is erased with one `transmute`
//! (see `dispatch`). This is sound because `map_with` blocks on a latch
//! until every job has finished (or recorded a panic) before returning,
//! so no borrow outlives the call — exactly the guarantee scoped threads
//! provide, amortized over one thread spawn per process instead of one
//! per call.

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use ufp_obs::{Phase, Recorder};

/// Jobs currently enqueued (or started but not yet decremented) on the
/// global pool — the `par.queue_depth` gauge source. Maintained
/// unconditionally (one relaxed atomic per *chunk job*, not per item,
/// which is noise next to the dispatch itself).
static QUEUE_DEPTH: AtomicIsize = AtomicIsize::new(0);

/// Fast gate for the observer: `false` means [`obs_recorder`] returns
/// the no-op recorder without touching the slot's lock.
static OBS_ENABLED: AtomicBool = AtomicBool::new(false);

fn obs_slot() -> &'static Mutex<Recorder> {
    static OBS: OnceLock<Mutex<Recorder>> = OnceLock::new();
    OBS.get_or_init(|| Mutex::new(Recorder::off()))
}

/// Install an observability recorder for pool internals (`par.dispatch`
/// spans per fan-out, `par.steal` spans per helped job, the
/// `par.queue_depth` gauge). The pool is a `Copy` handle over global
/// workers, so the observer is process-global too; installing
/// `Recorder::off()` (the initial state) silences it again. Purely
/// observational — scheduling and results are unaffected.
pub fn set_recorder(recorder: Recorder) {
    let on = recorder.is_enabled();
    *obs_slot().lock() = recorder;
    OBS_ENABLED.store(on, Ordering::Release);
}

fn obs_recorder() -> Recorder {
    if !OBS_ENABLED.load(Ordering::Acquire) {
        return Recorder::off();
    }
    obs_slot().lock().clone()
}

/// A type-erased unit of work with its lifetime erased to `'static`
/// (see module-level safety note).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct GlobalPool {
    tx: Sender<Job>,
    /// A receiving handle kept for **help-first waiting**: any thread
    /// blocked on a latch pulls queued jobs and runs them itself (see
    /// [`Latch::wait_helping`]).
    rx: Receiver<Job>,
    workers: usize,
}

fn global_pool() -> &'static GlobalPool {
    static POOL: OnceLock<GlobalPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (tx, rx) = unbounded::<Job>();
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("ufp-par-{i}"))
                .spawn(move || {
                    for job in rx.iter() {
                        job();
                    }
                })
                .expect("failed to spawn worker thread");
        }
        GlobalPool { tx, rx, workers }
    })
}

/// Completion latch: counts outstanding jobs and records panics.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
    panicked: AtomicUsize,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
            panicked: AtomicUsize::new(0),
        }
    }

    fn job_done(&self) {
        let mut left = self.remaining.lock();
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    /// Wait for every job counted by this latch, **helping** while
    /// blocked: instead of parking unconditionally, the waiter drains
    /// queued jobs from the global pool and executes them on its own
    /// stack. This is what makes *nested* dispatch deadlock-free — a
    /// worker that fans out a sub-map mid-job and waits on the inner
    /// latch keeps executing queued jobs (its own sub-jobs included), so
    /// the pool can never reach a state where every worker is parked on
    /// a latch whose jobs nobody is left to run. (PR 2 worked around the
    /// deadlock by forcing nested pools sequential; this lifts that.)
    ///
    /// The short timed wait covers the benign race where a job is
    /// enqueued between `try_recv` and parking: the waiter re-polls the
    /// queue instead of sleeping until a wakeup that may already have
    /// been consumed by a sibling helper.
    fn wait_helping(&self, rx: &Receiver<Job>, obs: &Recorder) {
        loop {
            match rx.try_recv() {
                Ok(job) => {
                    // Jobs are dispatch bodies that catch their own
                    // panics (see `map_with`), so helping cannot unwind
                    // into the waiter.
                    let _steal = obs.span(Phase::ParSteal);
                    job();
                }
                Err(_) => {
                    let mut left = self.remaining.lock();
                    if *left == 0 {
                        return;
                    }
                    self.cv
                        .wait_for(&mut left, std::time::Duration::from_millis(1));
                    if *left == 0 {
                        return;
                    }
                }
            }
            let left = self.remaining.lock();
            if *left == 0 {
                return;
            }
        }
    }
}

/// A lightweight handle describing how much parallelism to use. Cheap to
/// copy; all pools share the single global worker set — `threads` only
/// caps how many workers a call fans out to.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Use at most `threads` workers (values 0 and 1 both mean
    /// sequential).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Use all available hardware parallelism.
    pub fn auto() -> Self {
        let t = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Pool { threads: t }
    }

    /// Strictly sequential execution (useful for debugging and as the
    /// baseline in the parallel-speedup experiment).
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// Number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel indexed map with per-thread workspaces.
    ///
    /// `init()` runs once per participating worker to build its private
    /// workspace `W` (e.g. a Dijkstra scratch space);
    /// `f(&mut w, i, &items[i])` computes the result for item `i`. Work
    /// is distributed dynamically in chunks, so uneven per-item cost
    /// balances automatically. Results come back in input order.
    pub fn map_with<T, U, W, I, F>(&self, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, usize, &T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n.max(1)).min(global_pool().workers);
        if workers <= 1 {
            let mut w = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut w, i, t))
                .collect();
        }

        let obs = obs_recorder();
        let _dispatch = obs.span(Phase::ParDispatch);
        if obs.is_enabled() {
            // Depth *before* this call's own jobs land: how backed up
            // the pool already was when we fanned out.
            obs.gauge_set(
                "par.queue_depth",
                QUEUE_DEPTH.load(Ordering::Relaxed) as f64,
            );
        }

        // Dynamic scheduling through an atomic cursor; 4x chunk
        // oversubscription balances uneven costs.
        let chunk = (n / (workers * 4)).max(1);
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
        let latch = Arc::new(Latch::new(workers));

        {
            let cursor = &cursor;
            let collected = &collected;
            let init = &init;
            let f = &f;
            for _ in 0..workers {
                let latch = Arc::clone(&latch);
                let body = move || {
                    // Catch panics so the latch always resolves; the
                    // panic is surfaced to the caller below.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut workspace = init();
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (off, item) in items[start..end].iter().enumerate() {
                                let i = start + off;
                                local.push((i, f(&mut workspace, i, item)));
                            }
                        }
                        if !local.is_empty() {
                            collected.lock().append(&mut local);
                        }
                    }));
                    if result.is_err() {
                        latch.panicked.fetch_add(1, Ordering::SeqCst);
                    }
                    latch.job_done();
                };
                dispatch(body);
            }
        }
        latch.wait_helping(&global_pool().rx, &obs);
        if latch.panicked.load(Ordering::SeqCst) > 0 {
            panic!("worker thread panicked during Pool::map_with");
        }

        let mut pairs = collected.into_inner();
        debug_assert_eq!(pairs.len(), n);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, u)| u).collect()
    }

    /// [`Pool::map_with`] that stays on the calling thread when `items`
    /// is shorter than `floor`.
    ///
    /// The incremental selection loop's dirty-set refresh calls this
    /// thousands of times per epoch with wildly varying batch sizes: a
    /// winner whose path crosses a quiet edge dirties two or three
    /// requests (dispatching those to workers costs more in latch
    /// traffic than the Dijkstra work itself), while a winner on a
    /// hotspot edge dirties hundreds (worth fanning out). Results are
    /// identical either way — `map_with` already reduces in input order
    /// — so the floor is purely a cost model, never a semantics switch.
    pub fn map_with_floor<T, U, W, I, F>(&self, items: &[T], floor: usize, init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, usize, &T) -> U + Sync,
    {
        if items.len() < floor {
            let mut w = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut w, i, t))
                .collect();
        }
        self.map_with(items, init, f)
    }

    /// Parallel indexed map over **mutable** items: each item is handed
    /// to exactly one invocation of `f` as `&mut T`, results return in
    /// input order. This is the per-shard dispatch primitive — a sharded
    /// engine runs one epoch per shard concurrently, each shard mutating
    /// its own engine — and it composes with nested dispatch: `f` may
    /// itself fan out on any [`Pool`] (see [`Latch::wait_helping`]).
    pub fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        // Hand the base pointer to the workers; disjoint indices mean
        // disjoint `&mut` borrows, and `map` completes before this frame
        // returns, so no borrow outlives `items`.
        struct BasePtr<T>(*mut T);
        unsafe impl<T: Send> Sync for BasePtr<T> {}
        let base = BasePtr(items.as_mut_ptr());
        // Borrow the wrapper, not its field: closures capture disjoint
        // fields in edition 2021, and the bare `*mut T` is not `Sync`.
        let base = &base;
        let indices: Vec<usize> = (0..items.len()).collect();
        self.map(&indices, |_, &i| {
            // SAFETY: every index appears exactly once in `indices`, so
            // each `&mut` is unique; the latch in `map` keeps `items`
            // borrowed until all jobs finish.
            let item = unsafe { &mut *base.0.add(i) };
            f(i, item)
        })
    }

    /// Parallel indexed map without a per-thread workspace.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_with(items, || (), |_, i, t| f(i, t))
    }

    /// Parallel argmin: the index and key minimizing `key(i, &items[i])`,
    /// ties broken toward the smaller index (the deterministic tie-break
    /// every solver in this workspace relies on). `None` on empty input.
    pub fn argmin_by_key<T, K, F>(&self, items: &[T], key: F) -> Option<(usize, K)>
    where
        T: Sync,
        K: PartialOrd + Send,
        F: Fn(usize, &T) -> K + Sync,
    {
        let keys = self.map(items, &key);
        let mut best: Option<(usize, K)> = None;
        for (i, k) in keys.into_iter().enumerate() {
            let better = match &best {
                None => true,
                Some((_, bk)) => k < *bk,
            };
            if better {
                best = Some((i, k));
            }
        }
        best
    }
}

/// Send a borrowed closure to the global workers, erasing its lifetime.
///
/// # Safety
/// Callers must not return until the job has run to completion (enforced
/// in `map_with` by `Latch::wait`), so the erased borrows stay valid for
/// the job's whole execution.
fn dispatch<'a, F: FnOnce() + Send + 'a>(job: F) {
    QUEUE_DEPTH.fetch_add(1, Ordering::Relaxed);
    let job = move || {
        QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
        job();
    };
    let boxed: Box<dyn FnOnce() + Send + 'a> = Box::new(job);
    // SAFETY: see function docs — completion is awaited before any
    // borrow captured by `job` can expire.
    let boxed: Job = unsafe { std::mem::transmute(boxed) };
    global_pool()
        .tx
        .send(boxed)
        .expect("global worker pool disconnected");
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let par = pool.map(&items, |_, &x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn map_with_reuses_workspace() {
        // Count workspace initializations: at most `threads` per call.
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let pool = Pool::new(4);
        let out = pool.map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u32>::new()
            },
            |w, _, &x| {
                w.push(x);
                x + 1
            },
        );
        assert_eq!(out, (1..257).collect::<Vec<_>>());
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn map_with_floor_matches_map_with() {
        let items: Vec<u64> = (0..100).collect();
        let pool = Pool::new(4);
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for floor in [0, 1, 50, 100, 101, usize::MAX] {
            let got = pool.map_with_floor(&items, floor, || (), |_, _, &x| x * 3);
            assert_eq!(got, expect, "floor={floor}");
        }
    }

    #[test]
    fn empty_input() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        assert!(pool.argmin_by_key(&[] as &[u32], |_, &x| x).is_none());
    }

    #[test]
    fn single_item() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[5u32], |_, &x| x * 2), vec![10]);
    }

    #[test]
    fn argmin_breaks_ties_toward_lower_index() {
        let items = vec![3.0f64, 1.0, 2.0, 1.0, 5.0];
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let (i, k) = pool.argmin_by_key(&items, |_, &x| x).unwrap();
            assert_eq!(i, 1);
            assert_eq!(k, 1.0);
        }
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<u64> = (0..64).collect();
        let pool = Pool::new(4);
        let out = pool.map(&items, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[1u8, 2, 3], |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(&items, |_, &x| {
                if x == 50 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
        // The global pool must still function after a job panicked.
        let ok = pool.map(&items, |_, &x| x + 1);
        assert_eq!(ok[0], 1);
        assert_eq!(ok[99], 100);
    }

    #[test]
    fn many_repeated_calls_amortize() {
        // Regression guard for the per-call spawn problem: thousands of
        // tiny maps must complete quickly (no thread creation per call).
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..2000 {
            acc += pool.map(&items, |_, &x| x as u64).iter().sum::<u64>();
        }
        assert_eq!(acc, 2000 * (63 * 64 / 2));
        // Generous bound: scoped-spawn versions took seconds here.
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "repeated dispatch too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn map_mut_mutates_each_item_once() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let mut items: Vec<u64> = (0..257).collect();
            let out = pool.map_mut(&mut items, |i, x| {
                *x += 1;
                *x * i as u64
            });
            for (i, x) in items.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "threads={threads}");
            }
            let expect: Vec<u64> = (0..257u64).map(|i| (i + 1) * i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    /// Regression test for the PR 2 nested-dispatch deadlock: a parallel
    /// map whose jobs themselves fan out on parallel pools must complete.
    /// Before help-first waiting, this configuration (outer jobs ≥
    /// workers, every outer job blocking on an inner latch) wedged the
    /// pool permanently.
    #[test]
    fn nested_dispatch_completes() {
        let outer = Pool::auto();
        let inner = Pool::auto();
        let items: Vec<u64> = (0..64).collect();
        let done = std::sync::mpsc::channel();
        let tx = done.0;
        let handle = std::thread::spawn(move || {
            let sums = outer.map(&items, |_, &x| {
                let sub: Vec<u64> = (0..50).map(|j| x * 100 + j).collect();
                inner.map(&sub, |_, &y| y * 2).iter().sum::<u64>()
            });
            tx.send(sums).unwrap();
        });
        // Deadlock manifests as a hang; bound the wait explicitly so the
        // regression fails fast instead of timing out the whole suite.
        let sums = done
            .1
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("nested dispatch deadlocked");
        handle.join().unwrap();
        for (x, s) in (0..64u64).zip(&sums) {
            let expect: u64 = (0..50).map(|j| (x * 100 + j) * 2).sum();
            assert_eq!(*s, expect);
        }
    }

    /// Three levels of nesting with mutation at the leaves — the shape a
    /// sharded engine produces (shards in parallel, each shard's epoch
    /// fanning out shortest-path queries, payments fanning out below
    /// that).
    #[test]
    fn deeply_nested_map_mut_completes() {
        let pool = Pool::auto();
        let mut shards: Vec<Vec<u64>> = (0..8).map(|s| vec![s; 32]).collect();
        let totals = pool.map_mut(&mut shards, |_, shard| {
            let doubled = pool.map(shard, |_, &x| {
                pool.map(&[x, x + 1], |_, &y| y).iter().sum::<u64>()
            });
            shard.copy_from_slice(&doubled);
            shard.iter().sum::<u64>()
        });
        for (s, t) in totals.iter().enumerate() {
            assert_eq!(*t, (2 * s as u64 + 1) * 32);
        }
    }

    /// The installed recorder observes fan-outs without changing
    /// results, and uninstalling silences it again. Single test for
    /// the whole observer lifecycle because the slot is process-global
    /// and tests run concurrently.
    #[test]
    fn recorder_observes_dispatch_without_perturbing() {
        let items: Vec<u64> = (0..512).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7).collect();
        let pool = Pool::new(4);
        let r = ufp_obs::Recorder::enabled();
        set_recorder(r.clone());
        let got = pool.map(&items, |_, &x| x * 7);
        set_recorder(ufp_obs::Recorder::off());
        assert_eq!(got, expect);
        let snap = r.snapshot().unwrap();
        if global_pool().workers > 1 {
            assert!(snap.phase_hits[Phase::ParDispatch.index()] >= 1);
            assert!(snap.gauges.iter().any(|(n, _)| n == "par.queue_depth"));
        }
        // Silenced: a later fan-out adds nothing to the old recorder.
        let before = r.snapshot().unwrap().phase_hits[Phase::ParDispatch.index()];
        let _ = pool.map(&items, |_, &x| x + 1);
        assert_eq!(
            r.snapshot().unwrap().phase_hits[Phase::ParDispatch.index()],
            before
        );
    }

    #[test]
    fn nested_borrows_stay_valid() {
        // Borrowed captures (the unsafe lifetime erasure) under stress.
        let data: Vec<Vec<u64>> = (0..32).map(|i| vec![i as u64; 100]).collect();
        let pool = Pool::new(4);
        for _ in 0..50 {
            let sums = pool.map(&data, |_, row| row.iter().sum::<u64>());
            for (i, s) in sums.iter().enumerate() {
                assert_eq!(*s, (i as u64) * 100);
            }
        }
    }
}
