//! Property coverage for the sharded engine's core contracts:
//!
//! * **Zero-cross equivalence** — over random disconnected community
//!   networks with component-aligned partitions and purely shard-local
//!   (randomly churned, critically-priced) traffic, `ShardedEngine` is
//!   bit-identical to a single `Engine` fed the same stream: records
//!   (admissions with routes and epochs), payments, events, residual
//!   loads.
//! * **Paid guard-pressure + cross equivalence** — the same
//!   bit-identity holds with tight capacities that trip the per-epoch
//!   guard (so payment probes guard-stop) and with unroutable
//!   cross-shard arrivals in the stream: the merged-trace payment pass
//!   replays the exact probe schedule a single engine would run.
//! * **Snapshot lockstep** — snapshots of sharded runs (with cross
//!   traffic, leases, and the deferred global-payment pass in play)
//!   restore and continue bit-identically per shard and globally, from
//!   any epoch boundary.
//! * **Dynamic topology** — the same contracts survive link failures,
//!   capacity resizes, outages, and drains: zero-cross runs stay
//!   bit-identical to a single engine through arbitrary mutation
//!   sequences; lowering a boundary edge's capacity mid-run never
//!   oversubscribes it (the next epoch's leases are cut from the
//!   repaired residual); and snapshots taken mid-mutation round-trip
//!   and continue in lockstep.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::sync::Arc;

use ufp_engine::{Arrival, Engine, EngineConfig, EventLevel, PaymentPolicy, TopologyEvent};
use ufp_netgraph::generators;
use ufp_netgraph::graph::Graph;
use ufp_shard::{NodeBlocks, Partitioner, ShardConfig, ShardedEngine};
use ufp_workloads::arrivals::ArrivalProcess;
use ufp_workloads::failures::{failure_trace, FailureTraceConfig};
use ufp_workloads::sharded::{block_shard_map, sharded_arrival_trace, ShardedTraceConfig};

/// Random sharded scenario: a community digraph (`inter_edges` zero or
/// small per the caller, capacities from `caps`), its block partition,
/// and a churned trace with `mean` arrivals per epoch. When
/// `unroutable_cross` is set, cross endpoints skip the connectivity
/// filter — the disconnected-communities flavor of cross traffic that
/// stays inside the bit-equivalence regime.
fn arb_scenario(
    inter_edges: std::ops::Range<usize>,
    cross: bool,
    unroutable_cross: bool,
    caps: (f64, f64),
    mean: f64,
) -> impl Strategy<Value = (Arc<Graph>, usize, Vec<Vec<Arrival>>, f64)> {
    (
        2usize..5,    // shards
        6usize..12,   // nodes per community
        any::<u64>(), // seed
        2usize..8,    // epochs
        4usize..10,   // epsilon decile
        inter_edges,
    )
        .prop_map(
            move |(shards, nodes_per, seed, epochs, eps_decile, inter)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let graph = generators::community_digraph(
                    shards,
                    nodes_per,
                    (nodes_per * 4).min(nodes_per * (nodes_per - 1)),
                    inter,
                    caps,
                    caps,
                    &mut rng,
                );
                let map = block_shard_map(graph.num_nodes(), shards);
                let trace = sharded_arrival_trace(
                    &graph,
                    &map,
                    &ShardedTraceConfig {
                        epochs,
                        process: ArrivalProcess::Poisson { mean },
                        cross_fraction: if cross { 0.25 } else { 0.0 },
                        hotspot_pairs: Some(3),
                        ttl_range: Some((1, 3)),
                        allow_unroutable_cross: unroutable_cross,
                        seed: seed ^ 0xABCD,
                        ..Default::default()
                    },
                );
                (Arc::new(graph), shards, trace, 0.1 * eps_decile as f64)
            },
        )
}

fn engine_config(epsilon: f64) -> EngineConfig {
    EngineConfig {
        events: EventLevel::Request,
        payments: PaymentPolicy::critical_value(),
        ..EngineConfig::with_epsilon(epsilon)
    }
}

/// Drive a sharded run and a single-engine run over the same stream and
/// assert bit-identity on every deterministic observable: per-epoch
/// reports, admissions (routes, epochs, payments), events, residual
/// loads.
fn run_pair_and_assert_identical(
    graph: &Arc<Graph>,
    shards: usize,
    trace: &[Vec<Arrival>],
    epsilon: f64,
) -> Result<(), TestCaseError> {
    let cfg = engine_config(epsilon);
    let plan = NodeBlocks.partition(graph, shards);
    let mut sharded = ShardedEngine::new(
        Arc::clone(graph),
        plan,
        ShardConfig {
            engine: cfg.clone(),
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut single = Engine::from_shared(Arc::clone(graph), cfg);
    for batch in trace {
        let rs = sharded.submit_batch(batch);
        let ro = single.submit_batch(batch);
        prop_assert_eq!(rs.accepted, ro.accepted, "epoch {} accepted", rs.epoch);
        prop_assert_eq!(rs.released, ro.released, "epoch {} released", rs.epoch);
        prop_assert_eq!(rs.stop, ro.stop, "epoch {} stop", rs.epoch);
        prop_assert_eq!(
            rs.revenue.to_bits(),
            ro.revenue.to_bits(),
            "epoch {} revenue {} vs {}",
            rs.epoch,
            rs.revenue,
            ro.revenue
        );
    }
    // Records: every admission, in order, with route/payment bits.
    let (sh, si) = (sharded.admissions(), single.admissions());
    prop_assert_eq!(sh.len(), si.len());
    for (a, b) in sh.iter().zip(si) {
        prop_assert_eq!(a.request, b.request);
        prop_assert_eq!(a.path.nodes(), b.path.nodes());
        prop_assert_eq!(a.epoch, b.epoch);
        prop_assert_eq!(a.expires_at, b.expires_at);
        prop_assert_eq!(a.released, b.released);
        prop_assert_eq!(
            a.payment.to_bits(),
            b.payment.to_bits(),
            "payment {} vs {}",
            a.payment,
            b.payment
        );
    }
    // Events and loads.
    prop_assert_eq!(sharded.events(), single.events());
    for (a, b) in sharded
        .residual()
        .loads()
        .iter()
        .zip(single.residual().loads())
    {
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero cross-shard traffic ⇒ bit-identical to a single engine.
    #[test]
    fn zero_cross_is_bit_identical_to_single_engine(
        (graph, shards, trace, epsilon) in arb_scenario(0..1, false, false, (50.0, 90.0), 14.0)
    ) {
        run_pair_and_assert_identical(&graph, shards, &trace, epsilon)?;
    }

    /// Tight capacities (guard-stopping epochs and payment probes) plus
    /// unroutable cross-shard arrivals ⇒ still bit-identical, payments
    /// included: the full contract PR 8 upgraded the zero-cross one to.
    #[test]
    fn paid_guard_pressure_and_cross_traffic_are_bit_identical(
        (graph, shards, trace, epsilon) in arb_scenario(0..1, true, true, (6.0, 12.0), 30.0)
    ) {
        run_pair_and_assert_identical(&graph, shards, &trace, epsilon)?;
    }

    /// Snapshots of sharded runs (cross traffic + leases + the deferred
    /// global-payment pass in play) restore and continue in lockstep
    /// from any epoch boundary.
    #[test]
    fn snapshots_restore_and_continue_in_lockstep(
        (graph, shards, trace, epsilon) in arb_scenario(8..20, true, false, (50.0, 90.0), 14.0),
        split_frac in 0.0f64..1.0
    ) {
        let cfg = engine_config(epsilon);
        let shard_config = ShardConfig {
            engine: cfg,
            lease_fraction: 0.5,
            ..Default::default()
        };
        let plan = NodeBlocks.partition(&graph, shards);
        let mut unbroken =
            ShardedEngine::new(Arc::clone(&graph), plan.clone(), shard_config.clone());
        let split = ((trace.len() as f64 * split_frac) as usize).min(trace.len() - 1);
        for batch in &trace[..split] {
            unbroken.submit_batch(batch);
        }
        let bytes = unbroken.snapshot_bytes();
        let mut restored = ShardedEngine::restore_from_bytes(
            &bytes,
            Arc::clone(&graph),
            plan,
            shard_config,
        ).expect("snapshot must restore");
        // Identity at the restore point.
        prop_assert_eq!(restored.epoch(), unbroken.epoch());
        prop_assert_eq!(restored.requests(), unbroken.requests());
        // Lockstep continuation.
        for batch in &trace[split..] {
            let ru = unbroken.submit_batch(batch);
            let rr = restored.submit_batch(batch);
            prop_assert_eq!(ru.accepted, rr.accepted, "epoch {}", ru.epoch);
            prop_assert_eq!(ru.released, rr.released);
            prop_assert_eq!(ru.stop, rr.stop);
            prop_assert_eq!(ru.revenue.to_bits(), rr.revenue.to_bits());
            prop_assert_eq!(ru.min_residual.to_bits(), rr.min_residual.to_bits());
        }
        let (au, ar) = (unbroken.admissions(), restored.admissions());
        prop_assert_eq!(au.len(), ar.len());
        for (x, y) in au.iter().zip(&ar) {
            prop_assert_eq!(x.request, y.request);
            prop_assert_eq!(x.path.nodes(), y.path.nodes());
            prop_assert_eq!(x.payment.to_bits(), y.payment.to_bits());
            prop_assert_eq!(x.released, y.released);
        }
        for (x, y) in unbroken.residual().loads().iter().zip(restored.residual().loads()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(unbroken.events(), restored.events());
        prop_assert_eq!(unbroken.ledger(), restored.ledger());
    }

    /// Zero-cross runs stay bit-identical to a single engine through
    /// arbitrary mutation sequences: every repair pass (eviction set,
    /// refund bits, re-admission queue) and every subsequent epoch.
    #[test]
    fn mutated_runs_stay_bit_identical_to_single_engine(
        (graph, shards, trace, epsilon) in arb_scenario(0..1, false, false, (12.0, 24.0), 14.0),
        fail_seed in proptest::prelude::any::<u64>(),
    ) {
        let cfg = engine_config(epsilon);
        let plan = NodeBlocks.partition(&graph, shards);
        let mut sharded = ShardedEngine::new(
            Arc::clone(&graph),
            plan,
            ShardConfig {
                engine: cfg.clone(),
                lease_fraction: 0.5,
                ..Default::default()
            },
        );
        let mut single = Engine::from_shared(Arc::clone(&graph), cfg);
        let mutations = failure_trace(
            &graph,
            &FailureTraceConfig {
                epochs: trace.len() as u32,
                seed: fail_seed,
                flap_rate: 0.6,
                resize_rate: 0.6,
                resize_range: (0.3, 1.2),
                outage_rate: 0.15,
                ..FailureTraceConfig::default()
            },
        );
        for (events, batch) in mutations.iter().zip(&trace) {
            if !events.is_empty() {
                let rs = sharded.apply_topology(events).expect("trace applies");
                let ro = single.apply_topology(events).expect("trace applies");
                prop_assert_eq!(rs.evicted, ro.evicted, "eviction counts diverged");
                prop_assert_eq!(
                    rs.refunded.to_bits(), ro.refunded.to_bits(),
                    "refunds diverged: {} vs {}", rs.refunded, ro.refunded
                );
                prop_assert_eq!(rs.readmissions, ro.readmissions);
                prop_assert_eq!(rs.links_down, ro.links_down);
            }
            let ra = sharded.drain_readmissions();
            let rb = single.drain_readmissions();
            prop_assert_eq!(ra.len(), rb.len(), "re-admission queues diverged");
            let mut merged = ra;
            merged.extend(batch.iter().cloned());
            let rs = sharded.submit_batch(&merged);
            let ro = single.submit_batch(&merged);
            prop_assert_eq!(rs.accepted, ro.accepted, "epoch {} accepted", rs.epoch);
            prop_assert_eq!(rs.released, ro.released, "epoch {} released", rs.epoch);
            prop_assert_eq!(rs.stop, ro.stop, "epoch {} stop", rs.epoch);
            prop_assert_eq!(rs.revenue.to_bits(), ro.revenue.to_bits());
            prop_assert_eq!(rs.min_residual.to_bits(), ro.min_residual.to_bits());
        }
        // Records, events, loads, and the eviction/refund counters.
        let (sh, si) = (sharded.admissions(), single.admissions());
        prop_assert_eq!(sh.len(), si.len());
        for (a, b) in sh.iter().zip(si) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.path.nodes(), b.path.nodes());
            prop_assert_eq!(a.released, b.released);
            prop_assert_eq!(a.evicted, b.evicted);
            prop_assert_eq!(a.payment.to_bits(), b.payment.to_bits());
        }
        prop_assert_eq!(sharded.events(), single.events());
        for (a, b) in sharded
            .residual()
            .loads()
            .iter()
            .zip(single.residual().loads())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let (ms, mo) = (sharded.metrics(), single.metrics());
        prop_assert_eq!(ms.evicted, mo.evicted);
        prop_assert_eq!(ms.refunded.to_bits(), mo.refunded.to_bits());
        prop_assert_eq!(sharded.topology().fingerprint(), single.topology().fingerprint());
    }

    /// Lowering a boundary edge's capacity mid-run never oversubscribes
    /// it: the repair pass trims the committed load under the new
    /// effective capacity, and every later epoch's leases are cut from
    /// the repaired residual — the load never creeps back over.
    #[test]
    fn boundary_capacity_lower_never_oversubscribes(
        (graph, shards, trace, epsilon) in arb_scenario(8..20, true, false, (20.0, 40.0), 20.0),
        cut_frac in 0.05f64..0.6,
    ) {
        let cfg = engine_config(epsilon);
        let plan = NodeBlocks.partition(&graph, shards);
        if plan.boundary_edges().is_empty() {
            return Ok(());
        }
        let edge = plan.boundary_edges()[0];
        let mut sharded = ShardedEngine::new(
            Arc::clone(&graph),
            plan,
            ShardConfig {
                engine: cfg,
                lease_fraction: 0.5,
                ..Default::default()
            },
        );
        let split = (trace.len() / 2).max(1);
        for batch in &trace[..split] {
            sharded.submit_batch(batch);
        }
        // Lower the boundary edge under its committed load (or to a
        // token capacity when it is idle): the repair pass must evict
        // enough flows to fit.
        let new_cap = (sharded.residual().load(edge) * cut_frac).max(0.25);
        sharded
            .apply_topology(&[TopologyEvent::SetCapacity {
                edge,
                capacity: new_cap,
            }])
            .expect("capacity lower applies");
        let fits = |s: &ShardedEngine| {
            s.residual().load(edge) <= new_cap * (1.0 + 1e-9) + 1e-9
        };
        prop_assert!(fits(&sharded), "repair left the edge oversubscribed");
        prop_assert!(sharded.verify_active_feasibility().is_ok());
        for batch in &trace[split..] {
            let mut merged = sharded.drain_readmissions();
            merged.extend(batch.iter().cloned());
            sharded.submit_batch(&merged);
            prop_assert!(
                fits(&sharded),
                "epoch {} re-oversubscribed the lowered edge: load {} > cap {}",
                sharded.epoch(), sharded.residual().load(edge), new_cap
            );
            prop_assert!(sharded.verify_active_feasibility().is_ok());
        }
    }

    /// Snapshots taken mid-mutation (non-pristine topology, re-admission
    /// candidates still queued) round-trip exactly and continue in
    /// lockstep with the unbroken run.
    #[test]
    fn mutated_snapshots_round_trip_and_continue(
        (graph, shards, trace, epsilon) in arb_scenario(8..20, true, false, (12.0, 24.0), 14.0),
        fail_seed in proptest::prelude::any::<u64>(),
    ) {
        let cfg = engine_config(epsilon);
        let shard_config = ShardConfig {
            engine: cfg,
            lease_fraction: 0.5,
            ..Default::default()
        };
        let plan = NodeBlocks.partition(&graph, shards);
        let mut unbroken =
            ShardedEngine::new(Arc::clone(&graph), plan.clone(), shard_config.clone());
        let split = (trace.len() / 2).max(1);
        for batch in &trace[..split] {
            unbroken.submit_batch(batch);
        }
        let burst: Vec<TopologyEvent> = failure_trace(
            &graph,
            &FailureTraceConfig {
                epochs: 3,
                seed: fail_seed,
                flap_rate: 0.8,
                resize_rate: 0.8,
                resize_range: (0.3, 1.2),
                outage_rate: 0.2,
                ..FailureTraceConfig::default()
            },
        )
        .into_iter()
        .flatten()
        .collect();
        if !burst.is_empty() {
            unbroken.apply_topology(&burst).expect("trace applies");
        }
        // Snapshot right after the repair pass: the topology section is
        // non-pristine and the re-admission queue may be non-empty.
        let bytes = unbroken.snapshot_bytes();
        let mut restored = ShardedEngine::restore_from_bytes(
            &bytes,
            Arc::clone(&graph),
            plan,
            shard_config,
        ).expect("mutated snapshot must restore");
        prop_assert_eq!(restored.snapshot_bytes(), bytes.clone());
        prop_assert_eq!(
            restored.topology().fingerprint(),
            unbroken.topology().fingerprint()
        );
        for batch in &trace[split..] {
            let mut mu = unbroken.drain_readmissions();
            let mr = restored.drain_readmissions();
            prop_assert_eq!(mu.len(), mr.len(), "restored re-admission queue diverged");
            mu.extend(batch.iter().cloned());
            let ru = unbroken.submit_batch(&mu);
            let rr = restored.submit_batch(&mu);
            prop_assert_eq!(ru.accepted, rr.accepted, "epoch {}", ru.epoch);
            prop_assert_eq!(ru.released, rr.released);
            prop_assert_eq!(ru.revenue.to_bits(), rr.revenue.to_bits());
            prop_assert_eq!(ru.min_residual.to_bits(), rr.min_residual.to_bits());
        }
        prop_assert_eq!(unbroken.events(), restored.events());
        let (mu, mr) = (unbroken.metrics(), restored.metrics());
        prop_assert_eq!(mu.evicted, mr.evicted);
        prop_assert_eq!(mu.refunded.to_bits(), mr.refunded.to_bits());
        for (x, y) in unbroken.residual().loads().iter().zip(restored.residual().loads()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
