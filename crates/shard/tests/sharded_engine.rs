//! Integration coverage for the sharded engine:
//!
//! * zero-cross-shard traffic over a component-aligned partition is
//!   **bit-identical** to a single engine — admissions, payments,
//!   events, residual loads — including under TTL churn and
//!   critical-value payments;
//! * one shard over a *general* (connected) topology is bit-identical
//!   to a single engine (the degenerate partition);
//! * guard pressure: the merge truncates shard over-admissions exactly
//!   where a single engine's guard would stop, and the global payment
//!   pass prices the survivors identically — guard-stopping probes
//!   included;
//! * unroutable cross-shard arrivals (disconnected communities) leave
//!   the paid equivalence intact: both engines reject them identically;
//! * general cross-shard traffic stays feasible, deterministic, and
//!   respects the lease ledger;
//! * snapshots restore and continue in lockstep, and refuse a changed
//!   shard layout.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ufp_engine::{Arrival, Engine, EngineConfig, EngineEvent, EventLevel, PaymentPolicy};
use ufp_netgraph::generators;
use ufp_netgraph::graph::Graph;
use ufp_shard::{NodeBlocks, Partitioner, ShardConfig, ShardedEngine};
use ufp_workloads::arrivals::ArrivalProcess;
use ufp_workloads::sharded::{block_shard_map, sharded_arrival_trace, ShardedTraceConfig};

/// Disconnected 4-community graph, block shard map, and a shard-local
/// (or mixed) arrival trace. With `inter_edges == 0` any cross traffic
/// must be sampled in the unroutable mode (there is nothing to route it
/// over), which is exactly the bit-equivalence regime's cross flavor.
fn community_scenario(
    inter_edges: usize,
    cross_fraction: f64,
    epochs: usize,
    seed: u64,
) -> (Arc<Graph>, Vec<u32>, Vec<Vec<Arrival>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph =
        generators::community_digraph(4, 12, 60, inter_edges, (60.0, 90.0), (60.0, 90.0), &mut rng);
    let map = block_shard_map(graph.num_nodes(), 4);
    let cfg = ShardedTraceConfig {
        epochs,
        process: ArrivalProcess::Poisson { mean: 30.0 },
        cross_fraction,
        hotspot_pairs: Some(3),
        ttl_range: Some((1, 3)),
        allow_unroutable_cross: inter_edges == 0 && cross_fraction > 0.0,
        seed: seed ^ 0x5eed,
        ..Default::default()
    };
    let trace = sharded_arrival_trace(&graph, &map, &cfg);
    (Arc::new(graph), map, trace)
}

fn engine_config(payments: PaymentPolicy) -> EngineConfig {
    EngineConfig {
        events: EventLevel::Request,
        payments,
        ..EngineConfig::with_epsilon(0.5)
    }
}

/// Assert a sharded run and a single-engine run over the same stream
/// agree on every deterministic observable, bit for bit.
fn assert_bit_identical(sharded: &ShardedEngine, single: &Engine) {
    // Residual loads and carry bits.
    let (gl, sl) = (sharded.residual().loads(), single.residual().loads());
    assert_eq!(gl.len(), sl.len());
    for (e, (a, b)) in gl.iter().zip(sl).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "edge {e} load diverged: {a} vs {b}"
        );
    }
    // Requests registry.
    assert_eq!(sharded.requests(), single.requests());
    // Admissions: same order, same routes, same payments, same TTL state.
    let sh = sharded.admissions();
    let si = single.admissions();
    assert_eq!(sh.len(), si.len(), "admission counts diverged");
    for (i, (a, b)) in sh.iter().zip(si).enumerate() {
        assert_eq!(a.request, b.request, "admission {i} request id");
        assert_eq!(a.path.nodes(), b.path.nodes(), "admission {i} path");
        assert_eq!(a.epoch, b.epoch, "admission {i} epoch");
        assert_eq!(a.expires_at, b.expires_at, "admission {i} expiry");
        assert_eq!(a.released, b.released, "admission {i} released flag");
        assert_eq!(
            a.payment.to_bits(),
            b.payment.to_bits(),
            "admission {i} payment: {} vs {}",
            a.payment,
            b.payment
        );
    }
    // Events (the sharded engine's merged log vs the single log).
    assert_eq!(sharded.events(), single.events(), "event logs diverged");
    // Deterministic metrics counters.
    let (ms, mo) = (sharded.metrics(), single.metrics());
    assert_eq!(ms.epochs, mo.epochs);
    assert_eq!(ms.accepted, mo.accepted);
    assert_eq!(ms.rejected, mo.rejected);
    assert_eq!(ms.released, mo.released);
    assert_eq!(ms.revenue.to_bits(), mo.revenue.to_bits());
    assert_eq!(ms.value_admitted.to_bits(), mo.value_admitted.to_bits());
}

#[test]
fn zero_cross_traffic_matches_single_engine_with_payments_and_churn() {
    let (graph, _, trace) = community_scenario(0, 0.0, 8, 11);
    let cfg = engine_config(PaymentPolicy::critical_value());
    let plan = NodeBlocks.partition(&graph, 4);
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        plan,
        ShardConfig {
            engine: cfg.clone(),
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut single = Engine::from_shared(Arc::clone(&graph), cfg);
    for batch in &trace {
        let rs = sharded.submit_batch(batch);
        let ro = single.submit_batch(batch);
        assert_eq!(rs.accepted, ro.accepted, "epoch {}", rs.epoch);
        assert_eq!(rs.released, ro.released, "epoch {}", rs.epoch);
        assert_eq!(rs.stop, ro.stop, "epoch {}", rs.epoch);
        assert_eq!(
            rs.revenue.to_bits(),
            ro.revenue.to_bits(),
            "epoch {} revenue",
            rs.epoch
        );
        assert_eq!(rs.min_residual.to_bits(), ro.min_residual.to_bits());
    }
    assert_bit_identical(&sharded, &single);
    assert!(sharded
        .active_solution()
        .check_feasible(&sharded.instance(), false)
        .is_ok());
    // All traffic was shard-local: the reconciler saw no requests, and
    // disconnected components have no boundary edges to lease.
    let stats = sharded.shard_stats();
    assert_eq!(stats[4].requests, 0, "reconciler must be idle");
    assert_eq!(sharded.ledger().granted(0), 0.0);
}

#[test]
fn single_shard_on_connected_graph_matches_single_engine() {
    // The degenerate partition: one shard owning everything, over a
    // connected G(n, m) network — exercises the merge/commit plumbing
    // on a general topology.
    let mut rng = StdRng::seed_from_u64(5);
    let graph = Arc::new(generators::gnm_digraph(40, 220, (50.0, 90.0), &mut rng));
    let map = block_shard_map(graph.num_nodes(), 1);
    let trace = sharded_arrival_trace(
        &graph,
        &map,
        &ShardedTraceConfig {
            epochs: 6,
            process: ArrivalProcess::Poisson { mean: 25.0 },
            cross_fraction: 0.0,
            ttl_range: Some((1, 2)),
            seed: 99,
            ..Default::default()
        },
    );
    let cfg = engine_config(PaymentPolicy::critical_value());
    let plan = NodeBlocks.partition(&graph, 1);
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        plan,
        ShardConfig {
            engine: cfg.clone(),
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut single = Engine::from_shared(Arc::clone(&graph), cfg);
    for batch in &trace {
        sharded.submit_batch(batch);
        single.submit_batch(batch);
    }
    assert_bit_identical(&sharded, &single);
}

#[test]
fn guard_pressure_truncates_exactly_like_a_single_engine() {
    // Tight capacities: the per-epoch guard trips. The merge's
    // global-guard truncation must reproduce the single engine's stop
    // point bit for bit — and with critical-value payments ON, the
    // global payment pass must price every survivor identically even
    // though many of its bisection probes themselves stop on the guard
    // (the regime the old per-shard pass documented as divergent).
    // Capacities sized so e^{ε(B−1)} sits a little above the initial
    // dual mass (= edge count): epochs admit a handful of requests and
    // then guard-stop mid-epoch rather than at iteration zero.
    let mut rng = StdRng::seed_from_u64(21);
    let graph = Arc::new(generators::community_digraph(
        3,
        8,
        30,
        0,
        (10.0, 14.0),
        (10.0, 14.0),
        &mut rng,
    ));
    let map = block_shard_map(graph.num_nodes(), 3);
    let trace = sharded_arrival_trace(
        &graph,
        &map,
        &ShardedTraceConfig {
            epochs: 6,
            process: ArrivalProcess::Poisson { mean: 40.0 },
            cross_fraction: 0.0,
            // One hotspot pair per shard: every request in a shard
            // competes for the same path, so critical values are real
            // (losing bidders displace winners at lower declarations).
            hotspot_pairs: Some(1),
            seed: 7,
            ..Default::default()
        },
    );
    let cfg = engine_config(PaymentPolicy::critical_value());
    let plan = NodeBlocks.partition(&graph, 3);
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        plan,
        ShardConfig {
            engine: cfg.clone(),
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut single = Engine::from_shared(Arc::clone(&graph), cfg);
    let mut guard_seen = false;
    for batch in &trace {
        let rs = sharded.submit_batch(batch);
        let ro = single.submit_batch(batch);
        assert_eq!(rs.stop, ro.stop, "epoch {} stop reason", rs.epoch);
        assert_eq!(rs.accepted, ro.accepted, "epoch {} accepted", rs.epoch);
        assert_eq!(
            rs.revenue.to_bits(),
            ro.revenue.to_bits(),
            "epoch {} revenue",
            rs.epoch
        );
        guard_seen |= rs.stop == ufp_core::StopReason::Guard;
    }
    assert!(guard_seen, "fixture must actually trip the guard");
    assert!(
        !sharded.admissions().is_empty(),
        "fixture must actually admit someone before the guard trips"
    );
    assert!(
        sharded.admissions().iter().any(|a| a.payment > 0.0),
        "fixture must actually charge someone"
    );
    assert_bit_identical(&sharded, &single);
}

#[test]
fn unroutable_cross_paid_traffic_matches_single_engine() {
    // Disconnected communities with a 30% cross fraction sampled in the
    // unroutable mode: both engines must reject every cross arrival and
    // stay bit-identical — admissions AND critical-value payments —
    // because the merged-trace payment pass replays the same global
    // probe schedule either way.
    let (graph, map, trace) = community_scenario(0, 0.3, 8, 17);
    let cross = trace
        .iter()
        .flatten()
        .filter(|a| ufp_workloads::sharded::shard_label(&map, a).is_none())
        .count();
    assert!(cross > 0, "scenario must contain cross-shard arrivals");
    let cfg = engine_config(PaymentPolicy::critical_value());
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        NodeBlocks.partition(&graph, 4),
        ShardConfig {
            engine: cfg.clone(),
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut single = Engine::from_shared(Arc::clone(&graph), cfg);
    for batch in &trace {
        let rs = sharded.submit_batch(batch);
        let ro = single.submit_batch(batch);
        assert_eq!(rs.accepted, ro.accepted, "epoch {} accepted", rs.epoch);
        assert_eq!(rs.stop, ro.stop, "epoch {} stop", rs.epoch);
        assert_eq!(
            rs.revenue.to_bits(),
            ro.revenue.to_bits(),
            "epoch {} revenue",
            rs.epoch
        );
    }
    assert_bit_identical(&sharded, &single);
    // The cross arrivals reached the reconciler and were all rejected
    // (nothing can route between disconnected components).
    let stats = sharded.shard_stats();
    assert_eq!(stats[4].requests, cross, "reconciler saw the cross load");
    assert_eq!(stats[4].admissions, 0, "unroutable traffic must not land");
}

#[test]
fn cross_traffic_is_feasible_deterministic_and_leased() {
    let (graph, _, trace) = community_scenario(30, 0.3, 8, 42);
    let cfg = engine_config(PaymentPolicy::critical_value());
    let build = || {
        ShardedEngine::new(
            Arc::clone(&graph),
            NodeBlocks.partition(&graph, 4),
            ShardConfig {
                engine: cfg.clone(),
                lease_fraction: 0.6,
                ..Default::default()
            },
        )
    };
    let mut a = build();
    let mut b = build();
    let mut cross_admitted = 0usize;
    for batch in &trace {
        let ra = a.submit_batch(batch);
        let rb = b.submit_batch(batch);
        assert_eq!(ra.accepted, rb.accepted, "determinism: accepted");
        assert_eq!(
            ra.revenue.to_bits(),
            rb.revenue.to_bits(),
            "determinism: revenue"
        );
        // Always feasible against base capacities.
        assert!(
            a.active_solution()
                .check_feasible(&a.instance(), false)
                .is_ok(),
            "epoch {}: infeasible active solution",
            ra.epoch
        );
        cross_admitted = a.shard_stats()[4].admissions;
    }
    for (x, y) in a.events().iter().zip(b.events()) {
        assert_eq!(x, y, "determinism: events");
    }
    assert!(
        cross_admitted > 0,
        "scenario must route some cross-shard traffic through the reconciler"
    );
    // Lease accounting: grants happened (boundary edges exist) and use
    // never exceeds grant.
    let ledger = a.ledger();
    for s in 0..4 {
        assert!(ledger.granted(s) > 0.0, "shard {s} never granted a lease");
        assert!(
            ledger.used(s) <= ledger.granted(s) + 1e-9,
            "shard {s} over-used its lease"
        );
    }
}

#[test]
fn zero_lease_fraction_starves_shards_of_boundary_edges() {
    let (graph, map, trace) = community_scenario(30, 0.2, 5, 77);
    let cfg = engine_config(PaymentPolicy::None);
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        NodeBlocks.partition(&graph, 4),
        ShardConfig {
            engine: cfg,
            lease_fraction: 0.0,
            ..Default::default()
        },
    );
    for batch in &trace {
        sharded.submit_batch(batch);
    }
    // No lease capacity was ever granted, so no shard-local admission
    // may cross a boundary edge; the reconciler still serves cross
    // traffic over those edges.
    assert_eq!(sharded.ledger().granted(0), 0.0);
    for s in 0..4u32 {
        assert_eq!(
            sharded.ledger().used(s as usize),
            0.0,
            "shard {s} routed over an unleased boundary edge"
        );
    }
    let _ = map;
    assert!(sharded
        .active_solution()
        .check_feasible(&sharded.instance(), false)
        .is_ok());
}

#[test]
fn snapshot_restores_and_continues_in_lockstep() {
    let (graph, _, trace) = community_scenario(24, 0.25, 8, 1234);
    let cfg = engine_config(PaymentPolicy::critical_value());
    let shard_config = ShardConfig {
        engine: cfg,
        lease_fraction: 0.5,
        ..Default::default()
    };
    let plan = NodeBlocks.partition(&graph, 4);
    let mut unbroken = ShardedEngine::new(Arc::clone(&graph), plan.clone(), shard_config.clone());
    let split = 4usize;
    for batch in &trace[..split] {
        unbroken.submit_batch(batch);
    }
    let bytes = unbroken.snapshot_bytes();
    let mut restored = ShardedEngine::restore_from_bytes(
        &bytes,
        Arc::clone(&graph),
        plan.clone(),
        shard_config.clone(),
    )
    .expect("restore");
    assert_eq!(restored.epoch(), unbroken.epoch());
    for batch in &trace[split..] {
        let ru = unbroken.submit_batch(batch);
        let rr = restored.submit_batch(batch);
        assert_eq!(ru.accepted, rr.accepted);
        assert_eq!(ru.revenue.to_bits(), rr.revenue.to_bits());
        assert_eq!(ru.stop, rr.stop);
    }
    // Full-state agreement after continuation.
    assert_eq!(unbroken.requests(), restored.requests());
    let (au, ar) = (unbroken.admissions(), restored.admissions());
    assert_eq!(au.len(), ar.len());
    for (x, y) in au.iter().zip(&ar) {
        assert_eq!(x.request, y.request);
        assert_eq!(x.path.nodes(), y.path.nodes());
        assert_eq!(x.payment.to_bits(), y.payment.to_bits());
        assert_eq!(x.released, y.released);
    }
    for (x, y) in unbroken
        .residual()
        .loads()
        .iter()
        .zip(restored.residual().loads())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(unbroken.ledger(), restored.ledger());
    // Event logs agree from the snapshot point on (and before: the log
    // was serialized whole).
    assert_eq!(unbroken.events(), restored.events());
}

#[test]
fn snapshot_refuses_changed_layout_or_lease() {
    let (graph, _, trace) = community_scenario(0, 0.0, 3, 3);
    let cfg = engine_config(PaymentPolicy::None);
    let shard_config = ShardConfig {
        engine: cfg,
        lease_fraction: 0.5,
        ..Default::default()
    };
    let plan = NodeBlocks.partition(&graph, 4);
    let mut engine = ShardedEngine::new(Arc::clone(&graph), plan.clone(), shard_config.clone());
    for batch in &trace {
        engine.submit_batch(batch);
    }
    let bytes = engine.snapshot_bytes();
    // Different shard count → refused.
    let other_plan = NodeBlocks.partition(&graph, 2);
    assert!(ShardedEngine::restore_from_bytes(
        &bytes,
        Arc::clone(&graph),
        other_plan,
        shard_config.clone(),
    )
    .is_err());
    // Different lease fraction → refused.
    let mut other_cfg = shard_config.clone();
    other_cfg.lease_fraction = 0.25;
    assert!(
        ShardedEngine::restore_from_bytes(&bytes, Arc::clone(&graph), plan.clone(), other_cfg,)
            .is_err()
    );
    // Corrupt checksum → refused.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x40;
    assert!(
        ShardedEngine::restore_from_bytes(&bad, Arc::clone(&graph), plan, shard_config).is_err()
    );
}

#[test]
fn block_shard_map_agrees_with_node_blocks_partitioner() {
    // The workload labeller and the partitioner must share one block
    // convention, or "shard-local" traces silently cross the partition
    // on non-divisible node counts.
    let mut rng = StdRng::seed_from_u64(12);
    for (nodes, shards) in [(10usize, 3usize), (48, 4), (23, 5), (7, 7)] {
        let graph = generators::gnm_digraph(nodes, nodes * 2, (10.0, 20.0), &mut rng);
        let plan = NodeBlocks.partition(&graph, shards);
        assert_eq!(
            plan.node_shard(),
            block_shard_map(nodes, shards).as_slice(),
            "{nodes} nodes / {shards} shards"
        );
    }
}

#[test]
fn event_log_shape_matches_engine_contract() {
    let (graph, _, trace) = community_scenario(0, 0.0, 3, 8);
    let cfg = engine_config(PaymentPolicy::None);
    let mut sharded = ShardedEngine::new(
        Arc::clone(&graph),
        NodeBlocks.partition(&graph, 4),
        ShardConfig {
            engine: cfg,
            lease_fraction: 0.5,
            ..Default::default()
        },
    );
    for batch in &trace {
        sharded.submit_batch(batch);
    }
    let events = sharded.drain_events();
    assert!(matches!(
        events[0],
        EngineEvent::EpochStarted { epoch: 1, .. }
    ));
    let completed = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::EpochCompleted { .. }))
        .count();
    assert_eq!(completed, trace.len());
    assert!(sharded.events().is_empty(), "drain empties the log");
}
