//! The sharded engine: partitioned parallel epochs + deterministic
//! reconciliation.
//!
//! See the crate docs for the model; this module holds the
//! orchestration. The per-epoch pipeline is:
//!
//! 1. **Classify** the batch against the [`ShardPlan`]: shard-local
//!    arrivals go to their shard, cross-shard arrivals to the
//!    reconciler.
//! 2. **Open** every engine's epoch (TTL releases happen across all
//!    shards before any residual view is computed) and mirror the
//!    releases into the global residual tracker in deterministic order.
//! 3. **Lease**: compute the global residual/usable view, decay the
//!    global carry, and cut each boundary edge's lease for its two
//!    adjacent shards.
//! 4. **Plan** every shard's epoch in parallel on the `ufp_par` pool
//!    (nested dispatch is deadlock-free), each against the *global*
//!    capacities/usable/carry plus its own `routable` territory — so
//!    `B`, the guard threshold, and the weight arithmetic match a
//!    single global engine bit for bit.
//! 5. **Merge-replay** (reconciliation, part 1): consume the shards'
//!    recorded selection steps in global score order, re-applying each
//!    step's dual-weight bumps through one global [`DualWeights`] and
//!    enforcing the *global* guard — truncating any shard's
//!    over-admission the moment the merged dual mass crosses the
//!    threshold. Pure arithmetic replay; no shortest-path work. When
//!    payments are on, the pass also assembles the merged steps into a
//!    global [`EpochResumeTrace`] over the epoch's full batch.
//! 6. **Price + commit**: price every surviving winner by
//!    critical-value bisection against the *merged* trace under the
//!    epoch-start frozen context (read-only probe replays, fanned out
//!    on the `ufp_par` pool with `payment.probe` spans — the exact
//!    probe schedule a single global engine would run), then commit
//!    each shard's surviving prefix in parallel with its payment slice
//!    supplied, mirror the admissions into the global state in merged
//!    order, and settle the lease ledger.
//! 7. **Reconcile** (part 2): route the cross-shard batch with the
//!    reconciler engine against the post-epoch global residuals and
//!    carry — a deterministic sequential pass.

use std::sync::Arc;
use std::time::Instant;

use ufp_core::{
    DualWeights, EpochContext, EpochResumeTrace, Request, RequestId, StopReason, UfpInstance,
};
use ufp_engine::health::{run_regret_oracle, HealthState, RegretContext};
use ufp_engine::{
    Admission, Arrival, Engine, EngineConfig, EngineEvent, EngineMetrics, EpochOverride, EpochPlan,
    EpochReport, EventLevel, PaymentPolicy, TopologyReport,
};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::EdgeId;
use ufp_netgraph::path::Path;
use ufp_netgraph::residual::ResidualCaps;
use ufp_netgraph::topology::{Topology, TopologyError, TopologyEvent};
use ufp_obs::Phase;

use crate::ledger::LeaseLedger;
use crate::partition::{EdgeOwner, ShardPlan};

/// Where a sharded deployment prices its critical-value payments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PaymentScope {
    /// Price winners against the **merged** replay trace, under the
    /// epoch-start frozen context — the exact probe schedule a single
    /// global engine would run, so payments are covered by the
    /// bit-identity contract unconditionally (guard-stopping probes
    /// included). This is the correct, default mode.
    #[default]
    GlobalTrace,
    /// Legacy per-shard pass: each shard prices its winners against its
    /// own local trace. A probe that guard-stops sees the shard's
    /// (smaller) dual mass instead of the global one and can misprice —
    /// kept only as the baseline `scripts/bench_pr8.sh` measures the
    /// global pass against.
    ShardLocal,
}

/// Configuration of a [`ShardedEngine`].
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// The per-engine configuration every shard (and the reconciler)
    /// runs with. `engine.pool` doubles as the shard-dispatch pool.
    pub engine: EngineConfig,
    /// Fraction of a boundary edge's global residual leased out per
    /// epoch, split evenly between its two adjacent shards, in `[0, 1]`.
    /// `0.0` routes all boundary traffic through the reconciliation
    /// pass; `1.0` hands the full residual to the shards (starving the
    /// reconciler on boundary edges for that epoch).
    pub lease_fraction: f64,
    /// Whether winners are priced against the merged global trace
    /// (default) or the legacy shard-local one.
    pub payment_scope: PaymentScope,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            engine: EngineConfig::default(),
            lease_fraction: 0.5,
            payment_scope: PaymentScope::default(),
        }
    }
}

impl ShardConfig {
    /// Validate field ranges.
    pub fn validate(&self) {
        self.engine.validate();
        assert!(
            (0.0..=1.0).contains(&self.lease_fraction),
            "lease_fraction must lie in [0, 1], got {}",
            self.lease_fraction
        );
    }
}

/// One admission in the global ledger: where it lives and which global
/// request it belongs to. The owning engine holds the authoritative
/// record (path, payment, released flag); [`ShardedEngine::admission`]
/// materializes the global view.
#[derive(Clone, Copy, Debug)]
pub struct ShardAdmission {
    /// Owning engine: shard index, or `shards` for the reconciler.
    pub owner: u32,
    /// Index into the owner's [`Engine::admissions`].
    pub local_index: u32,
    /// Global request id (index into [`ShardedEngine::requests`]).
    pub request: RequestId,
}

/// Per-shard observability snapshot (see
/// [`ShardedEngine::shard_stats`]); the last row is the reconciler.
#[derive(Clone, Copy, Debug)]
pub struct ShardStats {
    /// Shard index (`shards` = the reconciler row).
    pub shard: usize,
    /// Requests routed to this engine so far.
    pub requests: usize,
    /// Admissions held by this engine (including released).
    pub admissions: usize,
    /// Cumulative wall-clock spent in this engine's *own* plan + commit
    /// phases (µs), measured by the orchestrator around the per-engine
    /// calls — it excludes time waiting on sibling shards or on the
    /// sequential merge, so on a multi-core host the per-shard values
    /// sum to more than the sharded wall-clock (that surplus *is* the
    /// parallelism).
    pub epoch_time_us: u64,
    /// Cumulative boundary-lease capacity granted (0 for the
    /// reconciler, which runs on full residuals).
    pub lease_granted: f64,
    /// Cumulative leased capacity committed.
    pub lease_used: f64,
    /// Lifetime lease utilization (0 when never granted).
    pub lease_utilization: f64,
}

/// Result of the merge-replay pass.
struct MergeOutcome {
    /// `(shard, step index)` in merged (global selection) order; every
    /// entry survived the global guard.
    merged: Vec<(usize, usize)>,
    /// Steps each shard keeps (prefix length).
    keep: Vec<usize>,
    /// The global guard tripped mid-merge.
    guard_tripped: bool,
    /// The post-merge dual mass exceeds the guard (used to classify
    /// leftover-rejection as `Guard` rather than `NoPath`, matching
    /// the single engine's check-before-discover order).
    final_over_guard: bool,
    /// The merged steps assembled as one global [`EpochResumeTrace`]
    /// over the epoch's full batch instance (requests id'd by batch
    /// position), built only when the global payment pass needs it.
    /// Step `k`'s `selected` is winner `k` in merged order.
    global_trace: Option<EpochResumeTrace>,
}

/// The sharded admission-control engine. Drop-in analogue of
/// [`Engine`] for partitioned deployments: same `submit_batch` /
/// read-out surface, same event and metrics shapes, with per-shard
/// epochs running in parallel under capacity leases and a global-guard
/// reconciliation.
#[derive(Debug)]
pub struct ShardedEngine {
    pub(crate) graph: Arc<Graph>,
    pub(crate) config: ShardConfig,
    pub(crate) plan: ShardPlan,
    /// One engine per shard; the reconciler is separate.
    pub(crate) engines: Vec<Engine>,
    pub(crate) reconciler: Engine,
    /// Resolved residual floor (identical resolution to the engines').
    pub(crate) floor: f64,
    /// Global committed-load tracker — the authority every epoch's
    /// residual view and lease grants are cut from.
    pub(crate) residual: ResidualCaps,
    /// Global carried dual exponents (decayed once per epoch; bumps
    /// merged in deterministic order).
    pub(crate) carry: Vec<f64>,
    /// Global request registry: ids match what a single engine fed the
    /// same stream would assign.
    pub(crate) requests: Vec<Request>,
    /// Global request id → (owner engine, owner-local request id).
    pub(crate) request_map: Vec<(u32, u32)>,
    /// Global admission order.
    pub(crate) admissions: Vec<ShardAdmission>,
    /// (owner, local admission index) → global admission index.
    pub(crate) admission_lookup: std::collections::HashMap<(u32, u32), u32>,
    pub(crate) epoch: u64,
    pub(crate) events: Vec<EngineEvent>,
    pub(crate) events_dropped: u64,
    pub(crate) metrics: EngineMetrics,
    pub(crate) ledger: LeaseLedger,
    /// Dynamic-topology overlay, the orchestrator's authority. Every
    /// owned engine mirrors the identical overlay (events are applied
    /// to all of them in [`ShardedEngine::apply_topology`]), but the
    /// *eviction decision* is made here, against the global loads —
    /// several shards share a boundary edge, so a per-shard scan would
    /// under-account.
    pub(crate) topology: Topology,
    /// Flows evicted by a topology repair, queued for re-admission in
    /// the next batch (drained by the driver).
    pub(crate) readmit_queue: Vec<Arrival>,
    /// Auction-health bookkeeping for the deployment as a whole (the
    /// global readmission queue, global eviction counter, global
    /// regret samples). Pure telemetry — see `ufp_engine::health`.
    pub(crate) health: HealthState,
    /// Wall-clock spent in each engine's *own* plan + commit phases
    /// (µs; index `shards` = the reconciler). Accumulated around the
    /// per-engine calls, so unlike the engines' internal latency
    /// metrics it excludes time spent waiting on the other shards or on
    /// the sequential merge.
    pub(crate) shard_epoch_us: Vec<u64>,
    /// Pre-interned per-shard gauge names (`shard.lease_utilization.s{s}`),
    /// built once at construction so the per-epoch gauge pass allocates
    /// nothing. Derived from the shard count — never snapshotted.
    pub(crate) lease_gauge_names: Vec<String>,
}

impl ShardedEngine {
    /// Create a sharded engine over `graph` with the given partition.
    pub fn new(graph: Arc<Graph>, plan: ShardPlan, config: ShardConfig) -> Self {
        config.validate();
        let shards = plan.shards();
        let floor = config
            .engine
            .residual_floor
            .resolve(graph.num_edges(), config.engine.epsilon);
        let engines = (0..shards)
            .map(|_| Engine::from_shared(Arc::clone(&graph), config.engine.clone()))
            .collect();
        let reconciler = Engine::from_shared(Arc::clone(&graph), config.engine.clone());
        let residual = ResidualCaps::new(&graph);
        let carry = vec![0.0; graph.num_edges()];
        let topology = Topology::new(&graph);
        ShardedEngine {
            config,
            plan,
            engines,
            reconciler,
            floor,
            residual,
            carry,
            requests: Vec::new(),
            request_map: Vec::new(),
            admissions: Vec::new(),
            admission_lookup: Default::default(),
            epoch: 0,
            events: Vec::new(),
            events_dropped: 0,
            metrics: EngineMetrics::default(),
            ledger: LeaseLedger::new(shards),
            topology,
            readmit_queue: Vec::new(),
            health: HealthState::default(),
            shard_epoch_us: vec![0; shards + 1],
            lease_gauge_names: lease_gauge_names(shards),
            graph,
        }
    }

    /// Number of shards (the reconciler not counted).
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// The partition in force.
    pub fn partition(&self) -> &ShardPlan {
        &self.plan
    }

    /// Engine configuration (per shard) and lease policy.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    fn push_event(&mut self, event: EngineEvent) {
        if self.events.len() >= self.config.engine.event_capacity {
            let drop = self.config.engine.event_capacity / 2;
            self.events.drain(..drop);
            self.events_dropped += drop as u64;
        }
        self.events.push(event);
    }

    /// Engine behind `owner` (`shards` = the reconciler).
    fn engine(&self, owner: u32) -> &Engine {
        if owner as usize == self.engines.len() {
            &self.reconciler
        } else {
            &self.engines[owner as usize]
        }
    }

    /// The global usable mask: the single engine's rule exactly —
    /// `ResidualCaps::usable_mask` over the global residuals, ANDed
    /// with topology availability (down links and drained endpoints
    /// accept no new admissions; the mask's empty-edge clause would
    /// otherwise re-open an unloaded down link).
    fn global_usable(&self) -> Vec<bool> {
        let mut usable = self.residual.usable_mask(self.floor);
        if !self.topology.is_pristine() {
            for (e, u) in usable.iter_mut().enumerate() {
                *u = *u && self.topology.available(EdgeId(e as u32));
            }
        }
        usable
    }

    /// Process one batch of arrivals as a new epoch (see the module
    /// docs for the pipeline). Deterministic: identical streams produce
    /// identical admissions, payments, events, loads, and carry,
    /// regardless of pool parallelism.
    pub fn submit_batch(&mut self, arrivals: &[Arrival]) -> EpochReport {
        let started = Instant::now();
        let shards = self.shards();
        let reconciler_id = shards as u32;
        self.epoch += 1;
        let epoch = self.epoch;
        // Every shard engine shares this recorder handle (cloned
        // configs share one core), so the orchestrator owns the epoch
        // bracket and the per-engine open/plan/commit spans nest inside.
        let obs = self.config.engine.obs.clone();
        obs.epoch_begin(epoch);
        self.push_event(EngineEvent::EpochStarted {
            epoch,
            arrivals: arrivals.len(),
        });

        // 1. Classify the batch; register every arrival globally.
        let base = self.requests.len() as u32;
        let mut batches: Vec<Vec<Arrival>> = vec![Vec::new(); shards + 1];
        // Per owner: global request id of each sub-batch position.
        let mut local_to_global: Vec<Vec<u32>> = vec![Vec::new(); shards + 1];
        let mut owner_req_base: Vec<u32> = (0..shards)
            .map(|s| self.engines[s].num_requests() as u32)
            .collect();
        owner_req_base.push(self.reconciler.num_requests() as u32);
        for (i, a) in arrivals.iter().enumerate() {
            let owner = self.plan.request_shard(&a.request).unwrap_or(reconciler_id);
            let global = base + i as u32;
            self.requests.push(a.request);
            self.request_map.push((
                owner,
                owner_req_base[owner as usize] + batches[owner as usize].len() as u32,
            ));
            local_to_global[owner as usize].push(global);
            batches[owner as usize].push(*a);
        }
        let cross_batch = batches.pop().expect("reconciler batch");

        // 2. Open every epoch (shards first, then the reconciler) so TTL
        //    releases across the whole deployment precede the residual
        //    view; mirror them globally in deterministic order.
        let mut released_local: Vec<Vec<usize>> = Vec::with_capacity(shards + 1);
        for (s, batch) in batches.iter().enumerate() {
            released_local.push(self.engines[s].open_epoch(batch.len()));
        }
        let cross_released = self.reconciler.open_epoch(cross_batch.len());
        released_local.push(cross_released.clone());
        let released = self.mirror_releases(epoch, &released_local);

        // 3. Global residual view, decayed carry, and boundary leases.
        let lease_span = obs.span(Phase::ShardLease);
        for k in &mut self.carry {
            *k *= self.config.engine.carry_decay;
        }
        let capacities = self.residual.residuals();
        // The identical usable rule as the single engine's — centralized
        // in ResidualCaps::usable_mask (plus the same topology
        // availability AND), which the bit-identity contract depends on.
        let usable = self.global_usable();
        let carry_in = self.carry.clone();
        // Freeze the regret-oracle inputs from the same global residual
        // view every shard plans against (the oracle itself runs after
        // the epoch bracket closes, on clones only).
        let regret_ctx = RegretContext::capture(
            &self.config.engine.health,
            &obs,
            epoch,
            &capacities,
            &usable,
            arrivals,
        );
        let mut lease_granted = vec![0.0f64; shards];
        let contexts: Vec<(Vec<f64>, Vec<bool>, Vec<bool>)> = (0..shards)
            .map(|s| {
                let mut caps_s = capacities.clone();
                let mut usable_s = usable.clone();
                let mut routable_s = vec![false; capacities.len()];
                for e in 0..capacities.len() {
                    match self.plan.edge_owner(EdgeId(e as u32)) {
                        EdgeOwner::Interior(x) if x as usize == s => routable_s[e] = true,
                        EdgeOwner::Boundary(a, b) if a as usize == s || b as usize == s => {
                            let lease = self.config.lease_fraction * capacities[e] / 2.0;
                            lease_granted[s] += lease;
                            caps_s[e] = lease;
                            usable_s[e] = usable[e] && lease >= self.floor;
                            routable_s[e] = usable_s[e];
                        }
                        _ => {}
                    }
                }
                (caps_s, usable_s, routable_s)
            })
            .collect();
        drop(lease_span);

        // 4. Plan every shard's epoch in parallel. Override mode always
        //    traces, so the merge below can replay each step verbatim.
        let pool = self.config.engine.pool;
        let shard_work: Vec<(Vec<Arrival>, Vec<usize>)> = batches
            .into_iter()
            .zip(released_local[..shards].iter().cloned())
            .collect();
        let (plans, plan_us): (Vec<EpochPlan>, Vec<u64>) = {
            let contexts = &contexts;
            let shard_work = &shard_work;
            let carry_in = &carry_in;
            pool.map_mut(&mut self.engines, |s, engine| {
                let begun = Instant::now();
                let (caps_s, usable_s, routable_s) = &contexts[s];
                let ov = EpochOverride {
                    capacities: caps_s,
                    usable: usable_s,
                    routable: Some(routable_s),
                    carry: carry_in,
                };
                let plan =
                    engine.plan_epoch_in(&shard_work[s].0, shard_work[s].1.clone(), Some(&ov));
                (plan, begun.elapsed().as_micros() as u64)
            })
            .into_iter()
            .unzip()
        };
        let shard_stops: Vec<StopReason> = plans
            .iter()
            .map(|p| p.outcome().run.trace.stop_reason)
            .collect();

        // 5. Merge-replay with the global guard; bumps land in the
        //    global carry in merged order (the order a single engine
        //    would have applied them). When the global payment pass is
        //    on, the merge also assembles the merged steps into one
        //    global resume trace over the epoch's batch.
        let global_payments = self.config.payment_scope == PaymentScope::GlobalTrace
            && !matches!(self.config.engine.payments, PaymentPolicy::None);
        let merge = {
            let _span = obs.span_attr(
                Phase::ShardMergeReplay,
                "steps",
                plans.iter().map(|p| p.num_steps() as u64).sum(),
            );
            merge_replay(
                &capacities,
                &usable,
                &carry_in,
                &mut self.carry,
                self.config.engine.epsilon,
                &plans,
                &local_to_global,
                &self.requests,
                base,
                global_payments,
            )
        };

        // 6a. Global payment pass: price every surviving winner by
        //     critical-value bisection against the *merged* trace,
        //     under the epoch-start frozen context (capacities / usable
        //     / carry captured in step 3) — the exact probe schedule a
        //     single global engine would run, guard stops included.
        //     Probes are read-only replays; the entry point fans them
        //     out on the pool under `payment.probe` spans. The results
        //     are scattered back into per-shard, batch-local payment
        //     slices for the deferred commits below.
        let shard_payments: Option<Vec<Vec<f64>>> = merge.global_trace.as_ref().map(|gtrace| {
            let winners: Vec<(RequestId, usize)> = (0..gtrace.num_steps())
                .map(|k| (gtrace.step(k).selected, k))
                .collect();
            let epoch_requests: Vec<Request> = arrivals.iter().map(|a| a.request).collect();
            let instance = UfpInstance::from_shared(Arc::clone(&self.graph), epoch_requests);
            let ctx = EpochContext {
                capacities: &capacities,
                usable: &usable,
                carry: &carry_in,
                routable: None,
            };
            let priced = self
                .reconciler
                .price_winners_against_trace(&instance, &ctx, gtrace, &winners);
            let mut per_shard: Vec<Vec<f64>> =
                shard_work.iter().map(|(b, _)| vec![0.0; b.len()]).collect();
            for (k, &(s, j)) in merge.merged.iter().enumerate() {
                let trace = plans[s].trace().expect("override plans are traced");
                per_shard[s][trace.step(j).selected.index()] = priced[k];
            }
            per_shard
        });

        // 6b. Commit surviving prefixes in parallel (each with its
        //     globally-priced payment slice when the pass ran, or the
        //     legacy shard-local pricing otherwise), then mirror into
        //     the global state in merged order.
        let adm_base: Vec<u32> = (0..shards)
            .map(|s| self.engines[s].admissions().len() as u32)
            .collect();
        let mut shard_payments = shard_payments;
        type CommitSlot = (EpochPlan, usize, Option<Vec<f64>>);
        let plan_slots: Vec<std::sync::Mutex<Option<CommitSlot>>> = plans
            .into_iter()
            .zip(merge.keep.iter())
            .enumerate()
            .map(|(s, (p, &k))| {
                let pay = shard_payments.as_mut().map(|ps| std::mem::take(&mut ps[s]));
                std::sync::Mutex::new(Some((p, k, pay)))
            })
            .collect();
        let commit_us: Vec<u64> = {
            let slots = &plan_slots;
            pool.map_mut(&mut self.engines, |s, engine| {
                let begun = Instant::now();
                let (plan, keep, pay) = slots[s]
                    .lock()
                    .expect("plan slot")
                    .take()
                    .expect("each plan committed exactly once");
                match pay {
                    Some(p) => {
                        engine.commit_epoch_with_payments(plan, Some(keep), p);
                    }
                    None => {
                        engine.commit_epoch(plan, Some(keep));
                    }
                }
                begun.elapsed().as_micros() as u64
            })
        };
        for s in 0..shards {
            self.shard_epoch_us[s] += plan_us[s] + commit_us[s];
        }

        // Mirror the merged admissions into the global state.
        let mut accepted = 0usize;
        let mut value_admitted = 0.0f64;
        let mut revenue = 0.0f64;
        let mut admitted_global = vec![false; arrivals.len()];
        let mut lease_used = vec![0.0f64; shards];
        let record = self.config.engine.events == EventLevel::Request;
        for &(s, j) in &merge.merged {
            let local_index = adm_base[s] + j as u32;
            let adm = &self.engines[s].admissions()[local_index as usize];
            let batch_pos = (adm.request.0 - owner_req_base[s]) as usize;
            let global = local_to_global[s][batch_pos];
            let demand = self.requests[global as usize].demand;
            for &e in adm.path.edges() {
                if matches!(self.plan.edge_owner(e), EdgeOwner::Boundary(..)) {
                    lease_used[s] += demand;
                }
            }
            let (path, payment, hops, expires_at) = (
                adm.path.clone(),
                adm.payment,
                adm.path.edges().len(),
                adm.expires_at,
            );
            debug_assert_eq!(
                expires_at,
                arrivals[(global - base) as usize]
                    .ttl
                    .map(|t| epoch + t as u64)
            );
            self.residual.commit(&path, demand);
            self.admission_lookup
                .insert((s as u32, local_index), self.admissions.len() as u32);
            self.admissions.push(ShardAdmission {
                owner: s as u32,
                local_index,
                request: RequestId(global),
            });
            admitted_global[(global - base) as usize] = true;
            accepted += 1;
            value_admitted += self.requests[global as usize].value;
            revenue += payment;
            if record {
                self.push_event(EngineEvent::Admitted {
                    epoch,
                    request: RequestId(global),
                    hops,
                    payment,
                });
            }
        }
        self.ledger.settle_epoch(&lease_granted, &lease_used);
        if obs.is_enabled() {
            self.record_lease_gauges(&obs);
        }

        // 7. Reconciliation part 2: route cross-shard requests against
        //    the post-epoch global residuals and carry.
        let reconcile_begun = Instant::now();
        let cross_span = obs.span_attr(Phase::ShardCrossRoute, "batch", cross_batch.len() as u64);
        let cross_stop = if cross_batch.is_empty() {
            // The reconciler's epoch was opened in step 2; close it
            // (handing back its own release list so its report and
            // metrics stay truthful) to keep its epoch counter in
            // lockstep.
            let plan = self.reconciler.plan_epoch_in(&[], cross_released, None);
            self.reconciler.commit_epoch(plan, None);
            None
        } else {
            Some(self.reconcile_cross(
                epoch,
                base,
                reconciler_id,
                &cross_batch,
                cross_released,
                &local_to_global[shards],
                owner_req_base[shards],
                &mut accepted,
                &mut value_admitted,
                &mut revenue,
                &mut admitted_global,
            ))
        };
        drop(cross_span);
        self.shard_epoch_us[shards] += reconcile_begun.elapsed().as_micros() as u64;

        // Rejections, stop reason, report.
        if record {
            for (i, &admitted) in admitted_global.iter().enumerate() {
                if !admitted {
                    self.push_event(EngineEvent::Rejected {
                        epoch,
                        request: RequestId(base + i as u32),
                    });
                }
            }
        }
        let stop = derive_stop(arrivals.len(), accepted, &merge, &shard_stops, cross_stop);
        let rejected = arrivals.len() - accepted;
        self.push_event(EngineEvent::EpochCompleted {
            epoch,
            accepted,
            rejected,
            released,
            value: value_admitted,
            revenue,
            stop,
        });
        let elapsed = started.elapsed();
        self.metrics.record_batch(
            arrivals.len(),
            accepted,
            released,
            value_admitted,
            revenue,
            elapsed,
        );
        obs.epoch_end(epoch);
        // Auction health, strictly after the epoch bracket: the sampled
        // regret oracle over the frozen step-3 context, then the
        // SLO / starvation / storm tick against deployment-wide totals.
        if let Some(ctx) = regret_ctx {
            run_regret_oracle(
                &self.graph,
                &pool,
                &obs,
                &self.config.engine.health,
                ctx,
                value_admitted,
            );
        }
        self.health.epoch_tick(
            &self.config.engine.health,
            &obs,
            epoch,
            elapsed.as_micros() as u64,
            self.metrics.evicted,
        );
        EpochReport {
            epoch,
            arrivals: arrivals.len(),
            accepted,
            rejected,
            released,
            value_admitted,
            revenue,
            stop,
            min_residual: self.residual.min_residual(),
            total_utilization: self.residual.total_utilization(),
            elapsed,
        }
    }

    /// Record per-shard lease-ledger gauges (grant/use ratios) plus the
    /// deployment-wide aggregate. Only called when the recorder is
    /// enabled; strictly out-of-band (reads the settled ledger, mutates
    /// nothing the deterministic pipeline sees).
    fn record_lease_gauges(&self, obs: &ufp_obs::Recorder) {
        let shards = self.shards();
        let (mut granted, mut used) = (0.0f64, 0.0f64);
        for s in 0..shards {
            granted += self.ledger.granted(s);
            used += self.ledger.used(s);
            obs.gauge_set(&self.lease_gauge_names[s], self.ledger.utilization(s));
        }
        obs.gauge_set("shard.lease_granted_total", granted);
        obs.gauge_set("shard.lease_used_total", used);
        obs.gauge_set(
            "shard.lease_utilization",
            if granted > 0.0 { used / granted } else { 0.0 },
        );
    }

    /// Convenience: submit permanent (no-TTL) requests.
    pub fn submit_requests(&mut self, requests: &[Request]) -> EpochReport {
        let arrivals: Vec<Arrival> = requests.iter().copied().map(Arrival::permanent).collect();
        self.submit_batch(&arrivals)
    }

    // ------------------------------------------------------------------
    // Dynamic topology: mutation + deterministic repair.
    // ------------------------------------------------------------------

    /// Apply a batch of topology mutations between epochs across the
    /// whole deployment — the sharded analogue of
    /// [`Engine::apply_topology`], bit-identical to it on the same
    /// stream (the zero-cross contract extends through mutations).
    ///
    /// The orchestrator owns the decision: it applies the events to its
    /// own overlay, scans the **global** admissions for violated edges
    /// (several shards share a boundary edge, so a per-shard scan would
    /// under-account the load), selects evictions in (admission-epoch,
    /// global-id) order, then *directs* every owned engine — which
    /// mirrors the identical overlay — to evict exactly its share
    /// ([`Engine::apply_topology_directed`]). Refunds, `Evicted` events
    /// (global ids, every event level), re-admission queueing, and the
    /// global residual rebuild over the effective capacities all happen
    /// here, in the same order a single engine would produce them.
    ///
    /// Boundary leases need no explicit invalidation: they are cut
    /// fresh each epoch from the global residual tracker, which this
    /// pass rebuilds over the post-mutation effective capacities — so
    /// the next epoch's grants are automatically regrants against the
    /// new residuals (Σ leases ≤ `lease_fraction` × residual per edge).
    pub fn apply_topology(
        &mut self,
        events: &[TopologyEvent],
    ) -> Result<TopologyReport, TopologyError> {
        let obs = self.config.engine.obs.clone();
        let _span = obs.span(Phase::TopologyApply);
        let from_version = self.topology.version();
        for &ev in events {
            self.topology.validate(ev)?;
        }
        if events.is_empty() {
            return Ok(TopologyReport {
                from_version,
                to_version: from_version,
                evicted: 0,
                refunded: 0.0,
                readmissions: 0,
                links_down: self.topology.links_down(),
            });
        }
        for &ev in events {
            self.topology
                .apply(ev)
                .expect("pre-validated event must apply");
        }

        // Global eviction decision against the post-mutation overlay.
        let evict = self.select_evictions();
        // Authoritative per-eviction details, captured before the owner
        // engines mutate their ledgers.
        let details: Vec<(RequestId, f64, Option<u64>)> = evict
            .iter()
            .map(|&g| {
                let sa = self.admissions[g];
                let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
                (sa.request, adm.payment, adm.expires_at)
            })
            .collect();

        // Direct every engine: same events everywhere (the overlays stay
        // mirrored), plus its own slice of the global eviction list
        // (order within a slice follows the global order). Re-admission
        // queueing stays up here — the owner engines' local queues would
        // re-submit through the wrong entry point.
        let shards = self.shards();
        let mut per_owner: Vec<Vec<usize>> = vec![Vec::new(); shards + 1];
        for &g in &evict {
            let sa = self.admissions[g];
            per_owner[sa.owner as usize].push(sa.local_index as usize);
        }
        for (owner, local) in per_owner.iter().enumerate() {
            let engine = if owner == shards {
                &mut self.reconciler
            } else {
                &mut self.engines[owner]
            };
            engine
                .apply_topology_directed(events, local, false)
                .expect("orchestrator-validated events apply to every mirrored engine");
        }

        // Refunds + global Evicted events, in global eviction order —
        // the order (and float accumulation) a single engine produces.
        let epoch = self.epoch;
        let mut refunded = 0.0f64;
        {
            let _span = obs.span_attr(Phase::RepairEvict, "evictions", evict.len() as u64);
            for &(request, refund, _) in &details {
                refunded += refund;
                self.metrics.evicted += 1;
                self.metrics.refunded += refund;
                // Always logged (not gated on EventLevel::Request): the
                // refund audit must hold at every verbosity.
                self.push_event(EngineEvent::Evicted {
                    epoch,
                    request,
                    refund,
                });
            }
            obs.counter_add("engine.evictions_total", evict.len() as u64);
        }

        // Re-admission queue (original absolute expiry preserved; flows
        // whose TTL lapses by the next epoch are not re-queued).
        let mut readmissions = 0usize;
        {
            let _span = obs.span(Phase::RepairReadmit);
            let next_epoch = epoch + 1;
            for &(request, _, expires_at) in &details {
                let request = self.requests[request.index()];
                let arrival = match expires_at {
                    None => Some(Arrival::permanent(request)),
                    Some(exp) if exp > next_epoch => {
                        Some(Arrival::with_ttl(request, (exp - next_epoch) as u32))
                    }
                    Some(_) => None,
                };
                if let Some(a) = arrival {
                    self.readmit_queue.push(a);
                    readmissions += 1;
                }
            }
            self.health.note_readmissions(readmissions, epoch);
        }

        // Rebuild the global residual tracker from scratch over the
        // effective capacities, committing every surviving admission in
        // global admission order — the identical summation a single
        // engine's rebuild performs.
        let mut residual = ResidualCaps::with_caps(self.topology.effective_capacities())
            .expect("validated topology capacities are finite and non-negative");
        for sa in &self.admissions {
            let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
            if !adm.released {
                residual.commit(&adm.path, self.requests[sa.request.index()].demand);
            }
        }
        self.residual = residual;

        obs.gauge_set("engine.links_down", self.topology.links_down() as f64);
        Ok(TopologyReport {
            from_version,
            to_version: self.topology.version(),
            evicted: evict.len(),
            refunded,
            readmissions,
            links_down: self.topology.links_down(),
        })
    }

    /// Deterministic global eviction scan — the sharded mirror of the
    /// single engine's: loads summed over the global admissions in
    /// admission order, candidates visited in (admission-epoch,
    /// global-id) order, evicted while touching a still-violating edge.
    fn select_evictions(&self) -> Vec<usize> {
        let m = self.graph.num_edges();
        let mut loads = vec![0.0f64; m];
        for sa in &self.admissions {
            let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
            if adm.released {
                continue;
            }
            let d = self.requests[sa.request.index()].demand;
            for &e in adm.path.edges() {
                loads[e.index()] += d;
            }
        }
        let over = |load: f64, cap: f64| load > cap * (1.0 + 1e-9) + 1e-9;
        let mut violating: Vec<bool> = (0..m)
            .map(|e| over(loads[e], self.topology.effective_capacity(EdgeId(e as u32))))
            .collect();
        let mut remaining = violating.iter().filter(|&&v| v).count();
        if remaining == 0 {
            return Vec::new();
        }
        let active = |i: usize| {
            let sa = self.admissions[i];
            !self.engine(sa.owner).admissions()[sa.local_index as usize].released
        };
        let mut order: Vec<usize> = (0..self.admissions.len()).filter(|&i| active(i)).collect();
        order.sort_by_key(|&i| {
            let sa = self.admissions[i];
            let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
            (adm.epoch, sa.request.0)
        });
        let mut evict = Vec::new();
        for i in order {
            if remaining == 0 {
                break;
            }
            let sa = self.admissions[i];
            let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
            if !adm.path.edges().iter().any(|e| violating[e.index()]) {
                continue;
            }
            let d = self.requests[sa.request.index()].demand;
            for &e in adm.path.edges() {
                loads[e.index()] -= d;
                let was = violating[e.index()];
                let now = over(loads[e.index()], self.topology.effective_capacity(e));
                violating[e.index()] = now;
                if was && !now {
                    remaining -= 1;
                }
            }
            evict.push(i);
        }
        evict
    }

    /// Drain the re-admission queue (see [`Engine::drain_readmissions`]).
    pub fn drain_readmissions(&mut self) -> Vec<Arrival> {
        self.health.note_drain();
        std::mem::take(&mut self.readmit_queue)
    }

    /// The dynamic-topology overlay (orchestrator authority; every
    /// owned engine mirrors it).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Audit the global active admissions against the **effective**
    /// (topology-aware) capacities (see
    /// [`Engine::verify_active_feasibility`]).
    pub fn verify_active_feasibility(&self) -> Result<(), String> {
        let m = self.graph.num_edges();
        let mut loads = vec![0.0f64; m];
        for sa in &self.admissions {
            let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
            if adm.released {
                continue;
            }
            let d = self.requests[sa.request.index()].demand;
            for &e in adm.path.edges() {
                loads[e.index()] += d;
            }
        }
        for (e, &load) in loads.iter().enumerate() {
            let cap = self.topology.effective_capacity(EdgeId(e as u32));
            if load > cap * (1.0 + 1e-9) + 1e-9 {
                return Err(format!(
                    "edge {e} overloaded: load {load} > effective capacity {cap}"
                ));
            }
        }
        Ok(())
    }

    /// Mirror this epoch's per-engine TTL releases into the global
    /// residual tracker, in the deterministic order a single engine
    /// would release them (ascending expiry epoch, then global
    /// admission order), emitting `Released` events along the way.
    fn mirror_releases(&mut self, epoch: u64, released_local: &[Vec<usize>]) -> usize {
        let mut rel: Vec<(u64, u32)> = Vec::new();
        for (owner, idxs) in released_local.iter().enumerate() {
            let engine = self.engine(owner as u32);
            for &idx in idxs {
                let global = self.admission_lookup[&(owner as u32, idx as u32)];
                let expires = engine.admissions()[idx]
                    .expires_at
                    .expect("released admissions carry an expiry epoch");
                rel.push((expires, global));
            }
        }
        rel.sort_unstable();
        let record = self.config.engine.events == EventLevel::Request;
        let details: Vec<(Path, f64, RequestId)> = rel
            .iter()
            .map(|&(_, g)| {
                let sa = self.admissions[g as usize];
                let engine = self.engine(sa.owner);
                let adm = &engine.admissions()[sa.local_index as usize];
                let demand = engine.requests()[adm.request.index()].demand;
                (adm.path.clone(), demand, sa.request)
            })
            .collect();
        for (path, demand, request) in details {
            self.residual.release(&path, demand);
            if record {
                self.push_event(EngineEvent::Released { epoch, request });
            }
        }
        rel.len()
    }

    /// Plan + commit the reconciler's epoch over the cross-shard batch
    /// and mirror its admissions into the global state.
    #[allow(clippy::too_many_arguments)]
    fn reconcile_cross(
        &mut self,
        epoch: u64,
        base: u32,
        reconciler_id: u32,
        cross_batch: &[Arrival],
        cross_released: Vec<usize>,
        cross_local_to_global: &[u32],
        cross_req_base: u32,
        accepted: &mut usize,
        value_admitted: &mut f64,
        revenue: &mut f64,
        admitted_global: &mut [bool],
    ) -> StopReason {
        let capacities = self.residual.residuals();
        let usable = self.global_usable();
        let carry_in = self.carry.clone();
        let ov = EpochOverride {
            capacities: &capacities,
            usable: &usable,
            routable: None,
            carry: &carry_in,
        };
        let plan = self
            .reconciler
            .plan_epoch_in(cross_batch, cross_released, Some(&ov));
        let stop = plan.outcome().run.trace.stop_reason;
        // Fold the reconciler's bumps into the global carry, in its
        // (deterministic, sequential) selection order.
        let trace = plan.trace().expect("override plans are traced");
        for i in 0..trace.num_steps() {
            let step = trace.step(i);
            for (&e, &bump) in step.path.edges().iter().zip(step.bumps) {
                self.carry[e.index()] += bump;
            }
        }
        let kept = plan.num_steps();
        let adm_base = self.reconciler.admissions().len() as u32;
        self.reconciler.commit_epoch(plan, None);
        let record = self.config.engine.events == EventLevel::Request;
        for j in 0..kept {
            let local_index = adm_base + j as u32;
            let adm = &self.reconciler.admissions()[local_index as usize];
            let batch_pos = (adm.request.0 - cross_req_base) as usize;
            let global = cross_local_to_global[batch_pos];
            let demand = self.requests[global as usize].demand;
            let (path, payment, hops) = (adm.path.clone(), adm.payment, adm.path.edges().len());
            self.residual.commit(&path, demand);
            self.admission_lookup
                .insert((reconciler_id, local_index), self.admissions.len() as u32);
            self.admissions.push(ShardAdmission {
                owner: reconciler_id,
                local_index,
                request: RequestId(global),
            });
            admitted_global[(global - base) as usize] = true;
            *accepted += 1;
            *value_admitted += self.requests[global as usize].value;
            *revenue += payment;
            if record {
                self.push_event(EngineEvent::Admitted {
                    epoch,
                    request: RequestId(global),
                    hops,
                    payment,
                });
            }
        }
        stop
    }

    // ------------------------------------------------------------------
    // Read-out (mirrors the single engine's surface).
    // ------------------------------------------------------------------

    /// The base network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the base network.
    pub fn shared_graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Running aggregate metrics (same shape as a single engine's).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The merged event log accumulated so far.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Drain the merged event log (see [`Engine::drain_events`]).
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events discarded by the retention cap.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The global residual-capacity tracker.
    pub fn residual(&self) -> &ResidualCaps {
        &self.residual
    }

    /// The lease ledger.
    pub fn ledger(&self) -> &LeaseLedger {
        &self.ledger
    }

    /// The global request registry (ids match a single engine fed the
    /// same stream).
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of global admissions ever made.
    pub fn num_admissions(&self) -> usize {
        self.admissions.len()
    }

    /// The global admission ledger (owner + local index per entry).
    pub fn shard_admissions(&self) -> &[ShardAdmission] {
        &self.admissions
    }

    /// Materialize global admission `i` in the single engine's
    /// [`Admission`] shape (global request id; live released flag).
    pub fn admission(&self, i: usize) -> Admission {
        let sa = self.admissions[i];
        let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
        Admission {
            request: sa.request,
            path: adm.path.clone(),
            epoch: adm.epoch,
            expires_at: adm.expires_at,
            payment: adm.payment,
            released: adm.released,
            evicted: adm.evicted,
        }
    }

    /// All global admissions, materialized (see
    /// [`ShardedEngine::admission`]).
    pub fn admissions(&self) -> Vec<Admission> {
        (0..self.admissions.len())
            .map(|i| self.admission(i))
            .collect()
    }

    /// The whole submitted history as one instance over the base graph.
    pub fn instance(&self) -> ufp_core::UfpInstance {
        ufp_core::UfpInstance::from_shared(Arc::clone(&self.graph), self.requests.clone())
    }

    /// Every admission ever made, as a solution over
    /// [`ShardedEngine::instance`].
    pub fn cumulative_solution(&self) -> ufp_core::UfpSolution {
        ufp_core::UfpSolution {
            routed: self
                .admissions
                .iter()
                .map(|sa| {
                    let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
                    (sa.request, adm.path.clone())
                })
                .collect(),
        }
    }

    /// Currently-held admissions, as a solution over
    /// [`ShardedEngine::instance`]. Always feasible against the
    /// effective (topology-aware) capacities — and against the base
    /// capacities whenever the overlay is pristine.
    pub fn active_solution(&self) -> ufp_core::UfpSolution {
        ufp_core::UfpSolution {
            routed: self
                .admissions
                .iter()
                .filter_map(|sa| {
                    let adm = &self.engine(sa.owner).admissions()[sa.local_index as usize];
                    (!adm.released).then(|| (sa.request, adm.path.clone()))
                })
                .collect(),
        }
    }

    /// Per-edge utilization histogram over the global loads.
    pub fn utilization_histogram(&self, buckets: usize) -> Vec<usize> {
        self.residual.utilization_histogram(buckets)
    }

    /// Per-shard observability: request/admission counts, cumulative
    /// epoch wall-clock, and lease accounting. The last row is the
    /// reconciler.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let shards = self.shards();
        (0..=shards)
            .map(|s| {
                let engine = self.engine(s as u32);
                let (granted, used) = if s < shards {
                    (self.ledger.granted(s), self.ledger.used(s))
                } else {
                    (0.0, 0.0)
                };
                ShardStats {
                    shard: s,
                    requests: engine.num_requests(),
                    admissions: engine.admissions().len(),
                    epoch_time_us: self.shard_epoch_us[s],
                    lease_granted: granted,
                    lease_used: used,
                    lease_utilization: if s < shards {
                        self.ledger.utilization(s)
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

/// Per-shard lease-utilization gauge names, interned once per
/// [`ShardedEngine`] (construction and snapshot restore) so the
/// per-epoch gauge pass never allocates.
pub(crate) fn lease_gauge_names(shards: usize) -> Vec<String> {
    (0..shards)
        .map(|s| format!("shard.lease_utilization.s{s}"))
        .collect()
}

/// The merge-replay pass: consume shard selection steps in global score
/// order through one global [`DualWeights`], enforcing the global
/// guard. Applies every consumed step's bumps to `carry` (already
/// decayed) in merged order.
///
/// With `build_trace` set, the consumed steps are simultaneously
/// assembled into a global [`EpochResumeTrace`] over the epoch's batch
/// instance (requests id'd by batch position, i.e. `global - base`):
/// each pushed step carries the shard-recorded `ln α` / raw score /
/// path / bumps verbatim, plus the *global* `ln D₁` (the dual sum this
/// merge checks against the guard) and the global running routed value
/// — exactly the record a single engine's traced run would have
/// produced, so payment probes can checkpoint and resume against it.
#[allow(clippy::too_many_arguments)] // one call site, mirrors the epoch context
fn merge_replay(
    capacities: &[f64],
    usable: &[bool],
    carry_in: &[f64],
    carry: &mut [f64],
    epsilon: f64,
    plans: &[EpochPlan],
    local_to_global: &[Vec<u32>],
    requests: &[Request],
    base: u32,
    build_trace: bool,
) -> MergeOutcome {
    let shards = plans.len();
    let b = capacities
        .iter()
        .zip(usable)
        .filter(|&(_, &u)| u)
        .map(|(&c, _)| c)
        .fold(f64::INFINITY, f64::min);
    let ln_guard = epsilon * (b - 1.0);
    let mut weights = DualWeights::with_context(capacities, usable, carry_in);
    let mut cursors = vec![0usize; shards];
    let mut merged = Vec::new();
    let mut guard_tripped = false;
    let mut global_trace = build_trace.then(EpochResumeTrace::default);
    let mut routed_value = 0.0f64;
    loop {
        // The next candidate per shard is its first unconsumed step;
        // global order is (ln α, raw score, global request id). The raw
        // score is the selection loop's own full-precision argmin key —
        // ln α, its shift-invariant ln round-trip, can collapse two
        // scores one ulp apart onto the same bits, so ties break on the
        // raw key first and only then on the single engine's id rule.
        let mut best: Option<(f64, f64, u32, usize)> = None;
        for s in 0..shards {
            if cursors[s] >= plans[s].num_steps() {
                continue;
            }
            let trace = plans[s].trace().expect("override plans are traced");
            let step = trace.step(cursors[s]);
            let g = local_to_global[s][step.selected.index()];
            let better = match best {
                None => true,
                Some((la, rs, gid, _)) => {
                    step.ln_alpha < la
                        || (step.ln_alpha == la
                            && (step.raw_score < rs || (step.raw_score == rs && g < gid)))
                }
            };
            if better {
                best = Some((step.ln_alpha, step.raw_score, g, s));
            }
        }
        let Some((_, _, g, s)) = best else { break };
        // The single engine checks the guard at the top of every
        // iteration, before selecting; reproduce that exactly. The dual
        // sum it checks is the ln D₁ its record would carry.
        let ln_d1 = weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            guard_tripped = true;
            break;
        }
        let trace = plans[s].trace().expect("override plans are traced");
        let step = trace.step(cursors[s]);
        for (&e, &bump) in step.path.edges().iter().zip(step.bumps) {
            weights.bump(e, bump);
            carry[e.index()] += bump;
        }
        if let Some(gt) = global_trace.as_mut() {
            gt.push_step(
                RequestId(g - base),
                step.ln_alpha,
                step.raw_score,
                ln_d1,
                routed_value,
                step.path.clone(),
                step.bumps.to_vec(),
            );
            routed_value += requests[g as usize].value;
        }
        merged.push((s, cursors[s]));
        cursors[s] += 1;
    }
    let final_over_guard = guard_tripped || weights.ln_dual_sum() > ln_guard;
    MergeOutcome {
        merged,
        keep: cursors,
        guard_tripped,
        final_over_guard,
        global_trace,
    }
}

/// Derive the epoch's stop reason, reproducing the single engine's
/// check order (guard before path discovery) on the merged state.
fn derive_stop(
    arrivals: usize,
    accepted: usize,
    merge: &MergeOutcome,
    shard_stops: &[StopReason],
    cross_stop: Option<StopReason>,
) -> StopReason {
    if merge.guard_tripped {
        return StopReason::Guard;
    }
    if cross_stop == Some(StopReason::Guard) {
        return StopReason::Guard;
    }
    if accepted == arrivals {
        return StopReason::Exhausted;
    }
    // Leftovers exist. A single engine would have checked the guard one
    // more time before discovering it cannot route them; shards that
    // stopped on their own (smaller) guard view imply the same.
    if merge.final_over_guard || shard_stops.contains(&StopReason::Guard) {
        return StopReason::Guard;
    }
    StopReason::NoPath
}
