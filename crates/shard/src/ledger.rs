//! The capacity-lease ledger.
//!
//! Boundary edges are shared between two shards. Each epoch, the
//! sharded engine grants every adjacent shard a **lease** — a fraction
//! of the edge's current global residual — and each shard's epoch runs
//! against its lease as that edge's capacity, so parallel shard epochs
//! can never jointly oversubscribe a boundary edge:
//!
//! ```text
//! Σ_shards lease_s(e)  =  lease_fraction · residual(e)  ≤  residual(e)
//! ```
//!
//! After the epoch, actual boundary use settles back into the ledger:
//! per shard, how much leased capacity was granted and how much was
//! committed. Under-use needs no explicit return — the next epoch's
//! leases are cut from the *actual* global residuals, so unspent lease
//! capacity is automatically back in the pool (and visible to the
//! cross-shard reconciliation pass, which runs against full residuals).
//! Over-use is structurally impossible (the lease *is* the capacity the
//! shard's allocator sees) and is asserted against.

/// Cumulative lease accounting, per shard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LeaseLedger {
    /// Lease capacity granted to each shard, summed over epochs and
    /// boundary edges.
    granted: Vec<f64>,
    /// Leased capacity actually committed by each shard, same units.
    used: Vec<f64>,
    /// Last epoch's grants per shard.
    last_granted: Vec<f64>,
    /// Last epoch's committed use per shard.
    last_used: Vec<f64>,
    /// Epochs settled.
    epochs: u64,
}

impl LeaseLedger {
    /// A fresh ledger for `shards` shards.
    pub fn new(shards: usize) -> Self {
        LeaseLedger {
            granted: vec![0.0; shards],
            used: vec![0.0; shards],
            last_granted: vec![0.0; shards],
            last_used: vec![0.0; shards],
            epochs: 0,
        }
    }

    /// Settle one epoch: per-shard grant totals and committed use.
    pub fn settle_epoch(&mut self, granted: &[f64], used: &[f64]) {
        assert_eq!(granted.len(), self.granted.len());
        assert_eq!(used.len(), self.used.len());
        for s in 0..granted.len() {
            debug_assert!(
                used[s] <= granted[s] * (1.0 + 1e-9) + 1e-9,
                "shard {s} over-used its lease: {} > {}",
                used[s],
                granted[s]
            );
            self.granted[s] += granted[s];
            self.used[s] += used[s];
            self.last_granted[s] = granted[s];
            self.last_used[s] = used[s];
        }
        self.epochs += 1;
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.granted.len()
    }

    /// Epochs settled so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Cumulative lease capacity granted to shard `s`.
    pub fn granted(&self, s: usize) -> f64 {
        self.granted[s]
    }

    /// Cumulative leased capacity committed by shard `s`.
    pub fn used(&self, s: usize) -> f64 {
        self.used[s]
    }

    /// Lifetime lease utilization of shard `s` (`used / granted`, 0 when
    /// nothing was ever granted — e.g. no boundary edges touch `s`).
    pub fn utilization(&self, s: usize) -> f64 {
        if self.granted[s] <= 0.0 {
            0.0
        } else {
            self.used[s] / self.granted[s]
        }
    }

    /// Last epoch's `(granted, used)` for shard `s`.
    pub fn last_epoch(&self, s: usize) -> (f64, f64) {
        (self.last_granted[s], self.last_used[s])
    }

    /// Serializable state, flattened in a fixed field order (granted,
    /// used, last_granted, last_used per shard, then the epoch count).
    pub fn export(&self) -> (Vec<f64>, u64) {
        let mut flat = Vec::with_capacity(self.granted.len() * 4);
        flat.extend_from_slice(&self.granted);
        flat.extend_from_slice(&self.used);
        flat.extend_from_slice(&self.last_granted);
        flat.extend_from_slice(&self.last_used);
        (flat, self.epochs)
    }

    /// Rebuild from [`LeaseLedger::export`] output. `None` when the
    /// flattened length does not match `shards` or holds non-finite
    /// entries.
    pub fn import(shards: usize, flat: Vec<f64>, epochs: u64) -> Option<Self> {
        if flat.len() != shards * 4 || flat.iter().any(|x| !x.is_finite()) {
            return None;
        }
        Some(LeaseLedger {
            granted: flat[..shards].to_vec(),
            used: flat[shards..2 * shards].to_vec(),
            last_granted: flat[2 * shards..3 * shards].to_vec(),
            last_used: flat[3 * shards..].to_vec(),
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settlement_accumulates() {
        let mut l = LeaseLedger::new(2);
        l.settle_epoch(&[10.0, 4.0], &[2.5, 4.0]);
        l.settle_epoch(&[8.0, 0.0], &[8.0, 0.0]);
        assert_eq!(l.epochs(), 2);
        assert_eq!(l.granted(0), 18.0);
        assert_eq!(l.used(0), 10.5);
        assert_eq!(l.last_epoch(0), (8.0, 8.0));
        assert!((l.utilization(0) - 10.5 / 18.0).abs() < 1e-12);
        assert_eq!(l.utilization(1), 1.0);
    }

    #[test]
    fn zero_grant_utilization_is_zero() {
        let l = LeaseLedger::new(1);
        assert_eq!(l.utilization(0), 0.0);
    }

    #[test]
    fn export_import_round_trips() {
        let mut l = LeaseLedger::new(3);
        l.settle_epoch(&[1.0, 2.0, 3.0], &[0.5, 2.0, 0.0]);
        let (flat, epochs) = l.export();
        let back = LeaseLedger::import(3, flat, epochs).expect("valid export");
        assert_eq!(back, l);
        assert!(LeaseLedger::import(2, l.export().0, 1).is_none());
    }
}
