//! Sharded snapshot composition.
//!
//! A sharded snapshot is one checksummed container holding the
//! orchestrator's own state (global carry, loads, request map,
//! admission ledger, events, metrics, lease ledger) followed by each
//! engine's ordinary [`ufp_engine`] snapshot as an opaque blob — the
//! per-shard snapshots restore through the engine codec with all of its
//! validation, and the orchestrator section pins the **shard layout**
//! (shard count + partition digest + lease fraction + payment scope)
//! so a snapshot can never restore under a different partition or
//! pricing mode: every epoch after such a mismatch would misroute (or
//! misprice) silently. Payments themselves need no extra state here —
//! the global pass settles within `submit_batch`, so each winner's
//! globally-priced payment already lives in its owning engine's
//! admission blob.
//!
//! Restore = rebuild each engine, then the global view; continuation is
//! bit-identical per shard (proptested in `tests/proptests.rs`).

use std::sync::Arc;

use ufp_core::{Request, RequestId};
use ufp_engine::codec::{fnv64, CodecError, Reader, Writer};
use ufp_engine::snapshot::{
    decode_event, decode_topology_event, encode_event, encode_topology_event,
};
use ufp_engine::{Arrival, Engine, EngineMetrics};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::residual::ResidualCaps;
use ufp_netgraph::topology::Topology;

use crate::engine::{lease_gauge_names, PaymentScope, ShardAdmission, ShardConfig, ShardedEngine};
use crate::ledger::LeaseLedger;
use crate::partition::ShardPlan;

/// Container magic for sharded snapshots (distinct from the engine's).
const MAGIC: &[u8; 8] = b"UFPSHRD\0";
/// Bump on any change to the orchestrator section layout.
/// v2: the payment scope joined the pinned shard layout.
/// v3: the dynamic-topology overlay (version + fingerprint + event
/// log) and the re-admission queue joined the orchestrator section;
/// global loads now validate against the *effective* capacities, and
/// restoring onto a mutated topology is a typed refusal.
const FORMAT_VERSION: u32 = 3;

/// Wire tag for [`PaymentScope`] (pinned like the lease fraction: a
/// snapshot restored under a different pricing mode would silently
/// change every later epoch's payments).
fn payment_scope_tag(scope: PaymentScope) -> u8 {
    match scope {
        PaymentScope::GlobalTrace => 0,
        PaymentScope::ShardLocal => 1,
    }
}

/// Serialize the full sharded engine state.
pub fn encode_sharded(engine: &ShardedEngine) -> Vec<u8> {
    let shards = engine.plan.shards();
    let mut w = Writer::new();
    w.put_u32(FORMAT_VERSION);
    w.put_u64(shards as u64);
    w.put_u64(engine.plan.digest());
    w.put_f64(engine.config.lease_fraction);
    w.put_u8(payment_scope_tag(engine.config.payment_scope));
    // Dynamic-topology overlay: full event log plus the (version,
    // fingerprint) pair restore replays to and cross-checks — same
    // scheme as the engine snapshot's topology section.
    w.put_u64(engine.topology.version());
    w.put_u64(engine.topology.fingerprint());
    w.put_u64(engine.topology.log().len() as u64);
    for e in engine.topology.log() {
        encode_topology_event(&mut w, e);
    }
    // Orchestrator re-admission queue.
    w.put_u64(engine.readmit_queue.len() as u64);
    for a in &engine.readmit_queue {
        w.put_u32(a.request.src.0);
        w.put_u32(a.request.dst.0);
        w.put_f64(a.request.demand);
        w.put_f64(a.request.value);
        match a.ttl {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                w.put_u32(t);
            }
        }
    }
    w.put_u64(engine.epoch);
    w.put_f64_slice(&engine.carry);
    w.put_f64_slice(engine.residual.loads());
    w.put_u64(engine.request_map.len() as u64);
    for &(owner, local) in &engine.request_map {
        w.put_u32(owner);
        w.put_u32(local);
    }
    w.put_u64(engine.admissions.len() as u64);
    for sa in &engine.admissions {
        w.put_u32(sa.owner);
        w.put_u32(sa.local_index);
        w.put_u32(sa.request.0);
    }
    w.put_u64(engine.events_dropped);
    w.put_u64(engine.events.len() as u64);
    for e in &engine.events {
        encode_event(&mut w, e);
    }
    let m = &engine.metrics;
    w.put_u64(m.epochs);
    w.put_u64(m.arrivals);
    w.put_u64(m.accepted);
    w.put_u64(m.rejected);
    w.put_u64(m.released);
    w.put_u64(m.evicted);
    w.put_f64(m.value_admitted);
    w.put_f64(m.revenue);
    w.put_f64(m.refunded);
    w.put_u64(m.total_latency_us());
    let (ring, cursor) = m.latency_ring();
    w.put_u64(cursor as u64);
    w.put_u64_slice(ring);
    let (ledger_flat, ledger_epochs) = engine.ledger.export();
    w.put_f64_slice(&ledger_flat);
    w.put_u64(ledger_epochs);
    w.put_u64_slice(&engine.shard_epoch_us);
    for s in 0..shards {
        w.put_bytes(&engine.engines[s].snapshot_bytes());
    }
    w.put_bytes(&engine.reconciler.snapshot_bytes());

    let body = w.into_bytes();
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Deserialize a sharded snapshot over the given graph, partition, and
/// configuration. Fails with a typed [`CodecError`] — never a panic,
/// never a partially-restored engine — on corruption, version skew, or
/// a layout/config that does not match the snapshot's fingerprints.
pub fn decode_sharded(
    bytes: &[u8],
    graph: Arc<Graph>,
    plan: ShardPlan,
    config: ShardConfig,
) -> Result<ShardedEngine, CodecError> {
    config.validate();
    let malformed = |context: &'static str| CodecError::Malformed { context };
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        let n = bytes.len().min(8);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(CodecError::BadMagic { found });
    }
    if bytes.len() < 24 {
        return Err(CodecError::Truncated {
            context: "sharded snapshot header",
            need: 24,
            have: bytes.len(),
        });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let body = &bytes[24..];
    if body.len() != len {
        return Err(CodecError::Truncated {
            context: "sharded snapshot body",
            need: len,
            have: body.len(),
        });
    }
    let computed = fnv64(body);
    if computed != checksum {
        return Err(CodecError::ChecksumMismatch {
            stored: checksum,
            computed,
        });
    }
    let mut r = Reader::new(body);
    let version = r.get_u32("sharded format version")?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let shards = r.get_u64("shard count")? as usize;
    if shards != plan.shards() {
        return Err(CodecError::ConfigMismatch {
            context: "shard count",
        });
    }
    if r.get_u64("partition digest")? != plan.digest() {
        return Err(CodecError::ConfigMismatch {
            context: "partition digest",
        });
    }
    if r.get_f64("lease fraction")?.to_bits() != config.lease_fraction.to_bits() {
        return Err(CodecError::ConfigMismatch {
            context: "lease fraction",
        });
    }
    if r.get_u8("payment scope")? != payment_scope_tag(config.payment_scope) {
        return Err(CodecError::ConfigMismatch {
            context: "payment scope",
        });
    }
    // Dynamic-topology overlay: replay the stored log over the base
    // graph and cross-check the pinned (version, fingerprint) pair —
    // same validation as the engine snapshot's topology section.
    let topo_version = r.get_u64("topology version")?;
    let topo_fingerprint = r.get_u64("topology fingerprint")?;
    let n = r.get_len("topology event count", 5)?;
    let mut topo_events = Vec::with_capacity(n);
    for _ in 0..n {
        topo_events.push(decode_topology_event(&mut r)?);
    }
    let topology = Topology::replay(&graph, &topo_events)
        .map_err(|_| malformed("topology event log does not apply to the graph"))?;
    if topology.version() != topo_version {
        return Err(malformed("topology version disagrees with its event log"));
    }
    if topology.fingerprint() != topo_fingerprint {
        return Err(malformed(
            "topology fingerprint disagrees with its event log",
        ));
    }
    let n = r.get_len("readmit count", 25)?;
    let mut readmit_queue = Vec::with_capacity(n);
    for _ in 0..n {
        let src = r.get_u32("readmit src")?;
        let dst = r.get_u32("readmit dst")?;
        let demand = r.get_f64("readmit demand")?;
        let value = r.get_f64("readmit value")?;
        if src as usize >= graph.num_nodes() || dst as usize >= graph.num_nodes() || src == dst {
            return Err(malformed("readmit endpoints"));
        }
        if !(demand.is_finite() && demand > 0.0 && value.is_finite() && value > 0.0) {
            return Err(malformed("readmit request (demand/value range)"));
        }
        let request = Request {
            src: NodeId(src),
            dst: NodeId(dst),
            demand,
            value,
        };
        let ttl = if r.get_bool("readmit ttl flag")? {
            let t = r.get_u32("readmit ttl")?;
            if t == 0 {
                return Err(malformed("readmit ttl must be at least one epoch"));
            }
            Some(t)
        } else {
            None
        };
        readmit_queue.push(Arrival { request, ttl });
    }
    let epoch = r.get_u64("epoch counter")?;
    let carry = r.get_f64_vec("global carry")?;
    if carry.len() != graph.num_edges() || carry.iter().any(|k| !k.is_finite() || *k < 0.0) {
        return Err(malformed("global carry (length or range)"));
    }
    let loads = r.get_f64_vec("global loads")?;
    // Loads validate against the *effective* (overlay) capacities, not
    // the base graph's — a resized or failed link carries different
    // headroom than the base capacity suggests.
    let residual = ResidualCaps::import_with_caps(topology.effective_capacities(), loads)
        .ok_or(malformed("global loads (length or range)"))?;
    let n = r.get_len("request map length", 8)?;
    let mut request_map = Vec::with_capacity(n);
    for _ in 0..n {
        let owner = r.get_u32("request owner")?;
        if owner as usize > shards {
            return Err(malformed("request owner out of range"));
        }
        request_map.push((owner, r.get_u32("request local id")?));
    }
    let n = r.get_len("admission count", 12)?;
    let mut admissions = Vec::with_capacity(n);
    for _ in 0..n {
        let owner = r.get_u32("admission owner")?;
        if owner as usize > shards {
            return Err(malformed("admission owner out of range"));
        }
        admissions.push(ShardAdmission {
            owner,
            local_index: r.get_u32("admission local index")?,
            request: RequestId(r.get_u32("admission request")?),
        });
    }
    let events_dropped = r.get_u64("dropped event count")?;
    let n = r.get_len("event count", 1)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(decode_event(&mut r)?);
    }
    let m_epochs = r.get_u64("metrics epochs")?;
    let m_arrivals = r.get_u64("metrics arrivals")?;
    let m_accepted = r.get_u64("metrics accepted")?;
    let m_rejected = r.get_u64("metrics rejected")?;
    let m_released = r.get_u64("metrics released")?;
    let m_evicted = r.get_u64("metrics evicted")?;
    let m_value = r.get_f64("metrics value")?;
    let m_revenue = r.get_f64("metrics revenue")?;
    let m_refunded = r.get_f64("metrics refunded")?;
    let m_total_latency = r.get_u64("metrics total latency")?;
    let m_cursor = r.get_u64("metrics latency cursor")? as usize;
    let m_window = r.get_u64_vec("metrics latency window")?;
    let metrics = EngineMetrics::from_snapshot(
        m_epochs,
        m_arrivals,
        m_accepted,
        m_rejected,
        m_released,
        m_evicted,
        m_value,
        m_revenue,
        m_refunded,
        m_total_latency,
        m_cursor,
        m_window,
    )
    .ok_or(malformed("metrics invariants"))?;
    let ledger_flat = r.get_f64_vec("lease ledger")?;
    let ledger_epochs = r.get_u64("lease ledger epochs")?;
    let ledger = LeaseLedger::import(shards, ledger_flat, ledger_epochs)
        .ok_or(malformed("lease ledger (length or range)"))?;
    let shard_epoch_us = r.get_u64_vec("shard epoch timings")?;
    if shard_epoch_us.len() != shards + 1 {
        return Err(malformed("shard epoch timings length"));
    }
    let mut engines = Vec::with_capacity(shards);
    for _ in 0..shards {
        let blob = r.get_bytes("shard engine snapshot")?;
        engines.push(Engine::restore_from_bytes(
            blob,
            Arc::clone(&graph),
            config.engine.clone(),
        )?);
    }
    let blob = r.get_bytes("reconciler snapshot")?;
    let reconciler = Engine::restore_from_bytes(blob, Arc::clone(&graph), config.engine.clone())?;
    r.expect_exhausted()?;

    // Every owned engine's mirrored overlay must agree with the
    // orchestrator's — a spliced snapshot mixing engines from different
    // topology histories would desynchronize the eviction authority.
    for e in engines.iter().chain(std::iter::once(&reconciler)) {
        if e.topology().fingerprint() != topology.fingerprint() {
            return Err(malformed(
                "engine topology diverges from the orchestrator's",
            ));
        }
    }

    // Cross-validate the global view against the restored engines: every
    // map entry must point at a real request / admission.
    let mut requests = Vec::with_capacity(request_map.len());
    let pick = |owner: u32| -> &Engine {
        if owner as usize == shards {
            &reconciler
        } else {
            &engines[owner as usize]
        }
    };
    for &(owner, local) in &request_map {
        let reg = pick(owner).requests();
        let req = reg
            .get(local as usize)
            .ok_or(malformed("request map points past owner registry"))?;
        requests.push(*req);
    }
    let mut admission_lookup = std::collections::HashMap::new();
    for (i, sa) in admissions.iter().enumerate() {
        if pick(sa.owner)
            .admissions()
            .get(sa.local_index as usize)
            .is_none()
        {
            return Err(malformed("admission ledger points past owner admissions"));
        }
        if sa.request.index() >= requests.len() {
            return Err(malformed("admission ledger request out of range"));
        }
        admission_lookup.insert((sa.owner, sa.local_index), i as u32);
    }

    let floor = config
        .engine
        .residual_floor
        .resolve(graph.num_edges(), config.engine.epsilon);
    Ok(ShardedEngine {
        graph,
        config,
        plan,
        engines,
        reconciler,
        floor,
        residual,
        carry,
        requests,
        request_map,
        admissions,
        admission_lookup,
        epoch,
        events,
        events_dropped,
        metrics,
        ledger,
        topology,
        // Health watermarks are per-process telemetry, not snapshotted:
        // readmission ages restart at the restore epoch.
        health: ufp_engine::health::HealthState::restored(readmit_queue.len(), epoch),
        readmit_queue,
        shard_epoch_us,
        lease_gauge_names: lease_gauge_names(shards),
    })
}

impl ShardedEngine {
    /// Serialize the full sharded state (orchestrator section + one
    /// engine snapshot per shard + the reconciler's).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_sharded(self)
    }

    /// Restore from [`ShardedEngine::snapshot_bytes`] output.
    /// Continuation is bit-identical per shard and globally: submitting
    /// the same post-snapshot batches reproduces the uninterrupted
    /// run's admissions, payments, events, and metrics exactly.
    pub fn restore_from_bytes(
        bytes: &[u8],
        graph: Arc<Graph>,
        plan: ShardPlan,
        config: ShardConfig,
    ) -> Result<ShardedEngine, CodecError> {
        decode_sharded(bytes, graph, plan, config)
    }

    /// Write a snapshot to `path` atomically (temp file + rename).
    pub fn snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), CodecError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.snapshot_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Restore from a snapshot file written by
    /// [`ShardedEngine::snapshot_to`].
    pub fn restore_from(
        path: impl AsRef<std::path::Path>,
        graph: Arc<Graph>,
        plan: ShardPlan,
        config: ShardConfig,
    ) -> Result<ShardedEngine, CodecError> {
        let bytes = std::fs::read(path)?;
        Self::restore_from_bytes(&bytes, graph, plan, config)
    }
}
