//! # ufp-shard
//!
//! A **sharded** admission-control engine: the network is partitioned
//! into shard territories, each shard runs its own
//! [`ufp_engine::Engine`] epoch **in parallel** over the shared
//! [`Graph`](ufp_netgraph::graph::Graph), and a deterministic
//! **reconciliation pass** stitches the shard epochs back into one
//! globally feasible, replayable run. The construction leans directly
//! on the source paper's structure: Algorithm 1 prices each request
//! against the current dual weights independently, so shard-local
//! selection with a bounded global reconciliation preserves both
//! feasibility and (per shard) the monotonicity that truthful
//! critical-value payments need.
//!
//! ## The three mechanisms
//!
//! **Partition** ([`partition`]): a [`Partitioner`] assigns nodes to
//! shards ([`NodeBlocks`], [`EdgeCut`], [`HotspotPairs`]); edges are
//! *interior* to a shard or *boundary* between two. Requests local to a
//! shard are its traffic; spanning requests go to the reconciler.
//!
//! **Leases** ([`ledger`]): each epoch, every boundary edge's global
//! residual is fractionally leased to its two adjacent shards
//! ([`ShardConfig::lease_fraction`]), and each shard's allocator sees
//! its lease as that edge's capacity — so parallel epochs cannot
//! jointly oversubscribe a shared edge, by construction. Actual use
//! settles into the [`LeaseLedger`]; unspent lease capacity returns to
//! the pool automatically because next epoch's leases are cut from the
//! actual residuals.
//!
//! **Reconciliation** ([`engine`]): shard plans are merged by recorded
//! score through one global dual-weight replay that enforces the
//! *global* guard (truncating shard over-admissions the moment the
//! merged dual mass crosses `e^{ε(B−1)}`), every surviving winner is
//! priced by critical-value bisection **against that merged trace**
//! under the epoch-start context (the probe schedule a single global
//! engine would run — [`PaymentScope::GlobalTrace`]), then cross-shard
//! requests route sequentially against the post-epoch global
//! residuals. Everything after the parallel plans is arithmetic replay
//! plus read-only probe replays — no new shortest-path state — so the
//! whole epoch is deterministic and byte-replayable regardless of
//! thread scheduling.
//!
//! ## The equivalence contract
//!
//! On instances whose requests never route outside their shard's
//! territory — component-aligned partitions of disconnected community
//! graphs, with or without unroutable cross-shard arrivals in the
//! stream — the sharded engine is **bit-identical** to a single
//! [`ufp_engine::Engine`] fed the same stream: same admissions (ids,
//! paths, order), same critical-value payments — *including* epochs
//! and payment probes that stop on the guard — same events, same
//! residual loads and carry bits (proptested in `tests/proptests.rs`).
//! See `README.md` for the contract's one residual caveat (divergent
//! dual-weight re-centering, which perturbs the recorded score bits
//! themselves).
//!
//! On general instances the contract is weaker but still strong:
//! feasibility always holds (leases + per-epoch Lemma 3.3), payments
//! are still priced against the globally merged trace, and the whole
//! run is deterministic and replayable.

pub mod engine;
pub mod ledger;
pub mod partition;
pub mod snapshot;

pub use engine::{PaymentScope, ShardAdmission, ShardConfig, ShardStats, ShardedEngine};
pub use ledger::LeaseLedger;
pub use partition::{EdgeCut, EdgeOwner, HotspotPairs, NodeBlocks, Partitioner, ShardPlan};
