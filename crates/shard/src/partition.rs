//! Graph partitioning for the sharded engine.
//!
//! A [`ShardPlan`] assigns every **node** to a shard; edges inherit
//! their classification from their endpoints: *interior* to shard `s`
//! (both endpoints in `s`) or *boundary* between two shards. Requests
//! whose endpoints lie in one shard are that shard's local traffic;
//! requests spanning shards go to the reconciliation pass.
//!
//! Partitioners are deterministic functions of `(graph, shards)` — the
//! same inputs always yield the same plan, which the sharded snapshot
//! fingerprint relies on.

use ufp_core::Request;
use ufp_engine::codec::Fnv64;
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::{EdgeId, NodeId};

/// Which shard(s) an edge belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOwner {
    /// Both endpoints in one shard: only that shard routes over it.
    Interior(u32),
    /// Endpoints in different shards `(tail, head)`: capacity is
    /// arbitrated between the two by the lease ledger.
    Boundary(u32, u32),
}

/// A finalized node→shard assignment with derived edge classification.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    node_shard: Vec<u32>,
    edge_owner: Vec<EdgeOwner>,
    boundary_edges: Vec<EdgeId>,
}

impl ShardPlan {
    /// Build a plan from an explicit node→shard map (validating that
    /// every shard id is in range and every shard is non-empty).
    pub fn from_node_shard(graph: &Graph, node_shard: Vec<u32>, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "need at least one shard");
        assert!(shards <= u8::MAX as usize, "at most 255 shards");
        assert_eq!(node_shard.len(), graph.num_nodes(), "shard map length");
        let mut seen = vec![false; shards];
        for &s in &node_shard {
            assert!((s as usize) < shards, "shard id {s} out of range");
            seen[s as usize] = true;
        }
        assert!(
            seen.iter().all(|&x| x),
            "every shard must own at least one node"
        );
        let mut edge_owner = Vec::with_capacity(graph.num_edges());
        let mut boundary_edges = Vec::new();
        for (i, e) in graph.edges().iter().enumerate() {
            let (a, b) = (node_shard[e.src.index()], node_shard[e.dst.index()]);
            if a == b {
                edge_owner.push(EdgeOwner::Interior(a));
            } else {
                edge_owner.push(EdgeOwner::Boundary(a, b));
                boundary_edges.push(EdgeId(i as u32));
            }
        }
        ShardPlan {
            shards,
            node_shard,
            edge_owner,
            boundary_edges,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The node→shard map.
    pub fn node_shard(&self) -> &[u32] {
        &self.node_shard
    }

    /// Shard of node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> u32 {
        self.node_shard[v.index()]
    }

    /// Classification of edge `e`.
    #[inline]
    pub fn edge_owner(&self, e: EdgeId) -> EdgeOwner {
        self.edge_owner[e.index()]
    }

    /// All boundary edges, ascending by edge id.
    pub fn boundary_edges(&self) -> &[EdgeId] {
        &self.boundary_edges
    }

    /// `Some(shard)` when the request is local to one shard, `None`
    /// when it crosses shards (reconciliation traffic).
    pub fn request_shard(&self, r: &Request) -> Option<u32> {
        let (a, b) = (self.shard_of(r.src), self.shard_of(r.dst));
        (a == b).then_some(a)
    }

    /// Fingerprint of the plan (shard count + node map), pinned inside
    /// sharded snapshots: restoring under a different partition would
    /// silently misroute every subsequent epoch.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::default();
        h.write(&(self.shards as u64).to_le_bytes());
        for &s in &self.node_shard {
            h.write(&s.to_le_bytes());
        }
        h.finish()
    }
}

/// A deterministic node→shard assignment strategy.
pub trait Partitioner {
    /// Partition `graph` into `shards` shards.
    fn partition(&self, graph: &Graph, shards: usize) -> ShardPlan;

    /// Stable name (reported in logs and `engine_sim --json` output).
    fn name(&self) -> &'static str;
}

/// Contiguous node-id blocks: node `v` goes to shard
/// `min(v / ceil(n/shards), shards-1)`. The natural partitioner for
/// community-structured graphs whose communities are id blocks
/// ([`ufp_netgraph::generators::community_digraph`]), where it produces
/// **zero boundary edges** when the communities are disconnected.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeBlocks;

impl Partitioner for NodeBlocks {
    fn partition(&self, graph: &Graph, shards: usize) -> ShardPlan {
        let n = graph.num_nodes();
        assert!(n >= shards, "need at least one node per shard");
        let per = n.div_ceil(shards);
        let node_shard = (0..n)
            .map(|v| ((v / per) as u32).min(shards as u32 - 1))
            .collect();
        ShardPlan::from_node_shard(graph, node_shard, shards)
    }

    fn name(&self) -> &'static str {
        "blocks"
    }
}

/// Undirected adjacency (node → neighbor nodes) used by the BFS-growing
/// partitioners; direction is irrelevant for territory.
fn undirected_adjacency(graph: &Graph) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); graph.num_nodes()];
    for e in graph.edges() {
        adj[e.src.index()].push(e.dst.0);
        adj[e.dst.index()].push(e.src.0);
    }
    adj
}

/// Grow balanced regions from `seeds` by round-robin BFS: each round,
/// the shard with the smallest region expands one frontier node. Nodes
/// unreachable from every seed fall back to block assignment. Fully
/// deterministic (frontiers are FIFO, neighbor order is edge order).
fn grow_regions(graph: &Graph, seeds: &[(u32, u32)], shards: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let adj = undirected_adjacency(graph);
    let mut node_shard = vec![u32::MAX; n];
    let mut frontier: Vec<std::collections::VecDeque<u32>> = vec![Default::default(); shards];
    let mut size = vec![0usize; shards];
    for &(v, s) in seeds {
        if node_shard[v as usize] == u32::MAX {
            node_shard[v as usize] = s;
            frontier[s as usize].push_back(v);
            size[s as usize] += 1;
        }
    }
    loop {
        // Smallest non-exhausted region expands next (ties toward the
        // lower shard id) — keeps territories balanced.
        let mut pick: Option<usize> = None;
        for s in 0..shards {
            if frontier[s].is_empty() {
                continue;
            }
            if pick.is_none_or(|p| size[s] < size[p]) {
                pick = Some(s);
            }
        }
        let Some(s) = pick else { break };
        let v = frontier[s].pop_front().expect("picked non-empty frontier");
        for &w in &adj[v as usize] {
            if node_shard[w as usize] == u32::MAX {
                node_shard[w as usize] = s as u32;
                frontier[s].push_back(w);
                size[s] += 1;
            }
        }
    }
    // Disconnected leftovers: block fallback keeps every node assigned.
    let per = n.div_ceil(shards);
    for (v, s) in node_shard.iter_mut().enumerate() {
        if *s == u32::MAX {
            *s = ((v / per) as u32).min(shards as u32 - 1);
        }
    }
    node_shard
}

/// Edge-cut partitioner: balanced BFS region growing from evenly spread
/// seed nodes — a cheap deterministic stand-in for a min-cut partition
/// that keeps densely connected neighborhoods together and therefore
/// keeps the boundary (leased) edge set small.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeCut;

impl Partitioner for EdgeCut {
    fn partition(&self, graph: &Graph, shards: usize) -> ShardPlan {
        let n = graph.num_nodes();
        assert!(n >= shards, "need at least one node per shard");
        let seeds: Vec<(u32, u32)> = (0..shards)
            .map(|s| (((s * n) / shards) as u32, s as u32))
            .collect();
        let node_shard = grow_regions(graph, &seeds, shards);
        ShardPlan::from_node_shard(graph, node_shard, shards)
    }

    fn name(&self) -> &'static str {
        "edge-cut"
    }
}

/// Hotspot-pair partitioner: the workload's known hotspot pairs are
/// dealt round-robin to shards, their endpoints seed the territories,
/// and regions grow by balanced BFS — so each shard owns the
/// neighborhoods its own hotspot traffic actually routes through.
#[derive(Clone, Debug)]
pub struct HotspotPairs {
    /// The hotspot `(src, dst)` pairs, in workload order.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl Partitioner for HotspotPairs {
    fn partition(&self, graph: &Graph, shards: usize) -> ShardPlan {
        assert!(
            !self.pairs.is_empty(),
            "hotspot partitioner needs at least one pair"
        );
        let n = graph.num_nodes();
        assert!(n >= shards, "need at least one node per shard");
        let mut seeds = Vec::with_capacity(self.pairs.len() * 2);
        for (i, &(s, t)) in self.pairs.iter().enumerate() {
            let shard = (i % shards) as u32;
            seeds.push((s.0, shard));
            seeds.push((t.0, shard));
        }
        // Guarantee every shard at least one seed even with fewer pairs
        // than shards.
        for s in 0..shards as u32 {
            if !seeds.iter().any(|&(_, x)| x == s) {
                seeds.push((((s as usize * n) / shards) as u32, s));
            }
        }
        let node_shard = grow_regions(graph, &seeds, shards);
        ShardPlan::from_node_shard(graph, node_shard, shards)
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Two 3-node cliques joined by one bridge edge.
    fn two_cliques() -> Graph {
        let mut gb = GraphBuilder::directed(6);
        for base in [0u32, 3] {
            for i in 0..3 {
                for j in 0..3 {
                    if i != j {
                        gb.add_edge(n(base + i), n(base + j), 10.0);
                    }
                }
            }
        }
        gb.add_edge(n(2), n(3), 5.0); // bridge
        gb.build()
    }

    #[test]
    fn blocks_partitioner_splits_contiguously() {
        let g = two_cliques();
        let plan = NodeBlocks.partition(&g, 2);
        assert_eq!(plan.node_shard(), &[0, 0, 0, 1, 1, 1]);
        let boundary = plan.boundary_edges();
        assert_eq!(boundary.len(), 1, "only the bridge crosses");
        assert_eq!(plan.edge_owner(boundary[0]), EdgeOwner::Boundary(0, 1));
    }

    #[test]
    fn edge_cut_respects_clique_structure() {
        let g = two_cliques();
        let plan = EdgeCut.partition(&g, 2);
        // Both cliques must end up whole: exactly the bridge on the cut.
        assert_eq!(plan.boundary_edges().len(), 1);
        let s0 = plan.shard_of(n(0));
        assert_eq!(plan.shard_of(n(1)), s0);
        assert_eq!(plan.shard_of(n(2)), s0);
        assert_ne!(plan.shard_of(n(3)), s0);
    }

    #[test]
    fn hotspot_partitioner_seeds_territories() {
        let g = two_cliques();
        let plan = HotspotPairs {
            pairs: vec![(n(0), n(1)), (n(4), n(5))],
        }
        .partition(&g, 2);
        assert_eq!(plan.shard_of(n(0)), 0);
        assert_eq!(plan.shard_of(n(4)), 1);
        assert_eq!(plan.boundary_edges().len(), 1);
        assert_eq!(
            plan.request_shard(&Request::new(n(0), n(2), 0.5, 1.0)),
            Some(0)
        );
        assert_eq!(
            plan.request_shard(&Request::new(n(0), n(4), 0.5, 1.0)),
            None
        );
    }

    #[test]
    fn digest_tracks_the_assignment() {
        let g = two_cliques();
        let a = NodeBlocks.partition(&g, 2);
        let b = EdgeCut.partition(&g, 2);
        assert_eq!(a.digest(), NodeBlocks.partition(&g, 2).digest());
        // EdgeCut happens to find the same split here or not — compare
        // digest equality with map equality instead of assuming.
        assert_eq!(a.digest() == b.digest(), a.node_shard() == b.node_shard());
        let c = NodeBlocks.partition(&g, 3);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_shard_rejected() {
        let g = two_cliques();
        ShardPlan::from_node_shard(&g, vec![0; 6], 2);
    }
}
