//! The truthful mechanism of Theorem 2.3: monotone exact allocator +
//! critical-value payments.

use crate::allocator::SingleParamAllocator;
use crate::payment::{critical_value, PaymentConfig};

/// A truthful mechanism wrapping a monotone allocator.
#[derive(Clone, Debug)]
pub struct CriticalValueMechanism<A> {
    /// The underlying monotone, exact allocation algorithm.
    pub allocator: A,
    /// Payment computation controls.
    pub payment: PaymentConfig,
}

/// Outcome: selection plus payments (losers pay 0).
#[derive(Clone, Debug)]
pub struct MechanismOutcome {
    /// Per-agent selection.
    pub selected: Vec<bool>,
    /// Per-agent payment (0 for losers; ≤ declared value for winners).
    pub payments: Vec<f64>,
}

impl MechanismOutcome {
    /// Quasi-linear utility of `agent` whose *true* value is
    /// `true_value`: winners get `true_value − payment`, losers 0.
    pub fn utility(&self, agent: usize, true_value: f64) -> f64 {
        if self.selected[agent] {
            true_value - self.payments[agent]
        } else {
            0.0
        }
    }

    /// Total revenue collected.
    pub fn revenue(&self) -> f64 {
        self.payments.iter().sum()
    }

    /// Number of winners.
    pub fn num_winners(&self) -> usize {
        self.selected.iter().filter(|&&s| s).count()
    }
}

impl<A: SingleParamAllocator> CriticalValueMechanism<A> {
    /// Build a mechanism with default payment tolerances.
    pub fn new(allocator: A) -> Self {
        CriticalValueMechanism {
            allocator,
            payment: PaymentConfig::default(),
        }
    }

    /// Run the mechanism on a declaration profile: one allocation run plus
    /// `O(log(1/tol))` counterfactual runs per winner for payments.
    pub fn run(&self, inst: &A::Inst) -> MechanismOutcome {
        let selected = self.allocator.selected(inst);
        let payments = selected
            .iter()
            .enumerate()
            .map(|(agent, &sel)| {
                if sel {
                    critical_value(&self.allocator, inst, agent, &self.payment)
                } else {
                    0.0
                }
            })
            .collect();
        MechanismOutcome { selected, payments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{MucaAllocator, UfpAllocator};
    use ufp_auction::{AuctionInstance, Bid, BoundedMucaConfig, ItemId};
    use ufp_core::{BoundedUfpConfig, Request, UfpInstance};
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ufp_mechanism() -> CriticalValueMechanism<UfpAllocator> {
        CriticalValueMechanism::new(UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(0.5),
        })
    }

    #[test]
    fn winners_pay_at_most_their_bid() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 4.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..8)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + i as f64))
                .collect(),
        );
        let outcome = ufp_mechanism().run(&inst);
        for (agent, (&sel, &pay)) in outcome.selected.iter().zip(&outcome.payments).enumerate() {
            if sel {
                let declared = inst.request(ufp_core::RequestId(agent as u32)).value;
                assert!(
                    pay <= declared + 1e-6,
                    "agent {agent} pays {pay} > bid {declared}"
                );
                assert!(pay >= 0.0);
            } else {
                assert_eq!(pay, 0.0);
            }
        }
        assert!(outcome.num_winners() > 0);
        assert!(outcome.revenue() >= 0.0);
    }

    #[test]
    fn utility_is_quasilinear() {
        let outcome = MechanismOutcome {
            selected: vec![true, false],
            payments: vec![2.5, 0.0],
        };
        assert_eq!(outcome.utility(0, 4.0), 1.5);
        assert_eq!(outcome.utility(1, 10.0), 0.0);
    }

    #[test]
    fn muca_payments_reflect_competition() {
        // Multiplicity 2, three bids on the same item: the two highest
        // win; competitive pressure comes from the excluded bid.
        let a = AuctionInstance::new(
            vec![6.0],
            vec![
                Bid::new(vec![ItemId(0)], 5.0),
                Bid::new(vec![ItemId(0)], 4.0),
                Bid::new(vec![ItemId(0)], 3.0),
                Bid::new(vec![ItemId(0)], 2.0),
                Bid::new(vec![ItemId(0)], 1.5),
                Bid::new(vec![ItemId(0)], 1.2),
                Bid::new(vec![ItemId(0)], 1.1),
            ],
        );
        let mech = CriticalValueMechanism::new(MucaAllocator {
            config: BoundedMucaConfig::with_epsilon(0.5),
        });
        let outcome = mech.run(&a);
        // the guard limits the allocation below multiplicity, so some
        // bids lose and winners face positive thresholds
        assert!(outcome.num_winners() >= 1);
        for (agent, &sel) in outcome.selected.iter().enumerate() {
            if sel {
                assert!(
                    outcome.payments[agent] <= a.bid(ufp_auction::BidId(agent as u32)).value + 1e-6
                );
            }
        }
    }

    #[test]
    fn truth_dominates_sampled_lies_end_to_end() {
        // The headline property: for every agent and a grid of value
        // lies, utility(truth) >= utility(lie).
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 4.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..6)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + 0.7 * i as f64))
                .collect(),
        );
        let mech = ufp_mechanism();
        let honest = mech.run(&inst);
        for agent in 0..inst.num_requests() {
            let true_value = inst.request(ufp_core::RequestId(agent as u32)).value;
            let u_truth = honest.utility(agent, true_value);
            assert!(u_truth >= -1e-6, "IR violated for {agent}");
            for factor in [0.25, 0.5, 0.9, 1.1, 2.0, 8.0] {
                let lie = mech.allocator.with_value(&inst, agent, true_value * factor);
                let outcome = mech.run(&lie);
                let u_lie = outcome.utility(agent, true_value);
                assert!(
                    u_truth >= u_lie - 1e-5,
                    "agent {agent} gains by declaring {factor}x: {u_lie} > {u_truth}"
                );
            }
        }
    }
}
