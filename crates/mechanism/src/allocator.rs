//! The allocator abstraction the mechanism layer builds on.
//!
//! Theorem 2.3 (Lehmann et al. / Briest et al.): a *monotone* and *exact*
//! algorithm induces a truthful mechanism via critical-value payments.
//! [`SingleParamAllocator`] captures exactly the interface that theorem
//! needs: run the algorithm on a declaration profile, and counterfactually
//! replace one agent's declared value. Adapters wrap the paper's
//! algorithms (Bounded-UFP, Bounded-MUCA, and the BKV baseline).

use ufp_auction::{bounded_muca, AuctionInstance, BoundedMucaConfig};
use ufp_core::baselines::{bkv, BkvConfig};
use ufp_core::{bounded_ufp, BoundedUfpConfig, RequestId, UfpInstance};

/// A deterministic, value-monotone, exact allocation algorithm over a
/// profile of single-parameter agents (each agent's private information
/// is its value; everything else is public).
pub trait SingleParamAllocator: Sync {
    /// The declaration profile the algorithm runs on.
    type Inst: Clone;

    /// Number of agents in the profile.
    fn num_agents(&self, inst: &Self::Inst) -> usize;

    /// Run the algorithm; `result[i]` says whether agent `i` is selected.
    fn selected(&self, inst: &Self::Inst) -> Vec<bool>;

    /// Agent `i`'s declared value in this profile.
    fn declared_value(&self, inst: &Self::Inst, agent: usize) -> f64;

    /// The profile with agent `i` declaring `value` instead.
    fn with_value(&self, inst: &Self::Inst, agent: usize, value: f64) -> Self::Inst;
}

/// Bounded-UFP (Algorithm 1) as an allocator; the demand component of
/// each request's type is held fixed at its declared value, as in the
/// per-parameter monotonicity of Lemma 3.4.
#[derive(Clone, Debug)]
pub struct UfpAllocator {
    /// Algorithm configuration.
    pub config: BoundedUfpConfig,
}

impl SingleParamAllocator for UfpAllocator {
    type Inst = UfpInstance;

    fn num_agents(&self, inst: &UfpInstance) -> usize {
        inst.num_requests()
    }

    fn selected(&self, inst: &UfpInstance) -> Vec<bool> {
        let res = bounded_ufp(inst, &self.config);
        let mut sel = vec![false; inst.num_requests()];
        for (rid, _) in &res.solution.routed {
            sel[rid.index()] = true;
        }
        sel
    }

    fn declared_value(&self, inst: &UfpInstance, agent: usize) -> f64 {
        inst.request(RequestId(agent as u32)).value
    }

    fn with_value(&self, inst: &UfpInstance, agent: usize, value: f64) -> UfpInstance {
        let rid = RequestId(agent as u32);
        inst.with_declared_type(rid, inst.request(rid).demand, value)
    }
}

/// Bounded-MUCA (Algorithm 2) as an allocator.
#[derive(Clone, Debug)]
pub struct MucaAllocator {
    /// Algorithm configuration.
    pub config: BoundedMucaConfig,
}

impl SingleParamAllocator for MucaAllocator {
    type Inst = AuctionInstance;

    fn num_agents(&self, inst: &AuctionInstance) -> usize {
        inst.num_bids()
    }

    fn selected(&self, inst: &AuctionInstance) -> Vec<bool> {
        let res = bounded_muca(inst, &self.config);
        let mut sel = vec![false; inst.num_bids()];
        for w in &res.solution.winners {
            sel[w.index()] = true;
        }
        sel
    }

    fn declared_value(&self, inst: &AuctionInstance, agent: usize) -> f64 {
        inst.bid(ufp_auction::BidId(agent as u32)).value
    }

    fn with_value(&self, inst: &AuctionInstance, agent: usize, value: f64) -> AuctionInstance {
        inst.with_declared_value(ufp_auction::BidId(agent as u32), value)
    }
}

/// The BKV one-pass baseline as an allocator (also monotone, so it too
/// yields a truthful mechanism — with a worse allocation).
#[derive(Clone, Debug)]
pub struct BkvAllocator {
    /// Baseline configuration.
    pub config: BkvConfig,
}

impl SingleParamAllocator for BkvAllocator {
    type Inst = UfpInstance;

    fn num_agents(&self, inst: &UfpInstance) -> usize {
        inst.num_requests()
    }

    fn selected(&self, inst: &UfpInstance) -> Vec<bool> {
        let res = bkv(inst, &self.config);
        let mut sel = vec![false; inst.num_requests()];
        for (rid, _) in &res.solution.routed {
            sel[rid.index()] = true;
        }
        sel
    }

    fn declared_value(&self, inst: &UfpInstance, agent: usize) -> f64 {
        inst.request(RequestId(agent as u32)).value
    }

    fn with_value(&self, inst: &UfpInstance, agent: usize, value: f64) -> UfpInstance {
        let rid = RequestId(agent as u32);
        inst.with_declared_type(rid, inst.request(rid).demand, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_core::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    pub(crate) fn small_ufp() -> UfpInstance {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 6.0);
        UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 3.0),
                Request::new(n(0), n(1), 1.0, 1.0),
                Request::new(n(0), n(1), 1.0, 2.0),
            ],
        )
    }

    #[test]
    fn ufp_allocator_round_trip() {
        let alloc = UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(0.5),
        };
        let inst = small_ufp();
        assert_eq!(alloc.num_agents(&inst), 3);
        let sel = alloc.selected(&inst);
        assert_eq!(sel.len(), 3);
        assert!(sel.iter().any(|&s| s));
        assert_eq!(alloc.declared_value(&inst, 0), 3.0);
        let probe = alloc.with_value(&inst, 0, 9.0);
        assert_eq!(alloc.declared_value(&probe, 0), 9.0);
        assert_eq!(alloc.declared_value(&inst, 0), 3.0);
    }

    #[test]
    fn muca_allocator_round_trip() {
        use ufp_auction::{Bid, ItemId};
        let a = AuctionInstance::new(
            vec![8.0],
            vec![
                Bid::new(vec![ItemId(0)], 2.0),
                Bid::new(vec![ItemId(0)], 1.0),
            ],
        );
        let alloc = MucaAllocator {
            config: BoundedMucaConfig::with_epsilon(0.5),
        };
        assert_eq!(alloc.num_agents(&a), 2);
        let sel = alloc.selected(&a);
        assert!(sel[0]);
        let probe = alloc.with_value(&a, 1, 10.0);
        assert_eq!(alloc.declared_value(&probe, 1), 10.0);
    }
}
