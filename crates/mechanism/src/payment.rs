//! Critical-value payments.
//!
//! For a value-monotone allocator, each selected agent has a unique
//! threshold bid `v*`: declare above it and win, below it and lose.
//! Charging exactly `v*` makes truth-telling a dominant strategy
//! (Theorem 2.3). The allocator is a black box, so the threshold is
//! located by exponential bracketing + bisection; monotonicity guarantees
//! the probe predicate `selected(v)` is a step function, which is exactly
//! the setting where bisection is exact up to the final interval width.

use crate::allocator::SingleParamAllocator;

/// Bisection controls.
#[derive(Clone, Copy, Debug)]
pub struct PaymentConfig {
    /// Relative width of the final bracket; the payment is the bracket's
    /// upper end (an over-charge of at most this relative amount, keeping
    /// individual rationality on the winner side).
    pub relative_tolerance: f64,
    /// Values below this are treated as zero (the agent wins at any bid).
    pub value_floor: f64,
}

impl Default for PaymentConfig {
    fn default() -> Self {
        PaymentConfig {
            relative_tolerance: 1e-9,
            value_floor: 1e-12,
        }
    }
}

/// Critical value of `agent` in `inst`, assuming it is currently
/// selected. Returns 0 when the agent wins at arbitrarily small bids.
pub fn critical_value<A: SingleParamAllocator>(
    allocator: &A,
    inst: &A::Inst,
    agent: usize,
    config: &PaymentConfig,
) -> f64 {
    let declared = allocator.declared_value(inst, agent);
    debug_assert!(
        allocator.selected(inst)[agent],
        "critical_value probes must start from a winner"
    );

    // Exponential search downward for a losing bid.
    let mut hi = declared; // selected
    let mut lo = declared;
    loop {
        lo /= 2.0;
        if lo < config.value_floor {
            return 0.0; // wins at (effectively) zero: free allocation
        }
        let probe = allocator.with_value(inst, agent, lo);
        if !allocator.selected(&probe)[agent] {
            break;
        }
        hi = lo;
    }

    // Invariant: selected at hi, not selected at lo.
    while hi - lo > config.relative_tolerance * hi.max(1e-300) {
        let mid = 0.5 * (hi + lo);
        let probe = allocator.with_value(inst, agent, mid);
        if allocator.selected(&probe)[agent] {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy allocator: a single-item auction among `values`, highest bid
    /// wins (ties to the lowest index). The critical value of the winner
    /// is the second-highest bid — i.e. this mechanism must reproduce
    /// Vickrey pricing.
    #[derive(Clone)]
    struct HighestBid;

    impl SingleParamAllocator for HighestBid {
        type Inst = Vec<f64>;
        fn num_agents(&self, inst: &Vec<f64>) -> usize {
            inst.len()
        }
        fn selected(&self, inst: &Vec<f64>) -> Vec<bool> {
            let mut best = 0usize;
            for i in 1..inst.len() {
                if inst[i] > inst[best] {
                    best = i;
                }
            }
            (0..inst.len()).map(|i| i == best).collect()
        }
        fn declared_value(&self, inst: &Vec<f64>, agent: usize) -> f64 {
            inst[agent]
        }
        fn with_value(&self, inst: &Vec<f64>, agent: usize, value: f64) -> Vec<f64> {
            let mut v = inst.clone();
            v[agent] = value;
            v
        }
    }

    #[test]
    fn recovers_vickrey_price() {
        let inst = vec![10.0, 7.0, 3.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        assert!((p - 7.0).abs() < 1e-6, "payment {p}, expected 7");
    }

    #[test]
    fn sole_bidder_pays_zero() {
        let inst = vec![5.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        assert_eq!(p, 0.0);
    }

    #[test]
    fn threshold_is_sharp() {
        let inst = vec![10.0, 6.5, 1.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        // declare just above the payment: still a winner
        let above = HighestBid.with_value(&inst, 0, p * (1.0 + 1e-6) + 1e-9);
        assert!(HighestBid.selected(&above)[0]);
        // just below: a loser
        let below = HighestBid.with_value(&inst, 0, p * (1.0 - 1e-6));
        assert!(!HighestBid.selected(&below)[0]);
    }

    #[test]
    fn payment_never_exceeds_declaration() {
        for second in [0.1, 1.0, 5.0, 9.999] {
            let inst = vec![10.0, second];
            let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
            assert!(p <= 10.0 + 1e-9);
            assert!((p - second).abs() < 1e-6);
        }
    }
}
