//! Critical-value payments.
//!
//! For a value-monotone allocator, each selected agent has a unique
//! threshold bid `v*`: declare above it and win, below it and lose.
//! Charging exactly `v*` makes truth-telling a dominant strategy
//! (Theorem 2.3). The allocator is a black box, so the threshold is
//! located by exponential bracketing + bisection; monotonicity guarantees
//! the probe predicate `selected(v)` is a step function, which is exactly
//! the setting where bisection is exact up to the final interval width.

use crate::allocator::SingleParamAllocator;

/// Bisection controls.
#[derive(Clone, Copy, Debug)]
pub struct PaymentConfig {
    /// Relative width of the final bracket; the payment is the bracket's
    /// upper end (an over-charge of at most this relative amount, keeping
    /// individual rationality on the winner side).
    pub relative_tolerance: f64,
    /// Values below this are treated as zero (the agent wins at any bid).
    pub value_floor: f64,
}

impl Default for PaymentConfig {
    fn default() -> Self {
        PaymentConfig {
            relative_tolerance: 1e-9,
            value_floor: 1e-12,
        }
    }
}

/// Critical value of a winner whose declared value is `declared`, given
/// only the selection predicate `selected_at(v)` ("is the agent selected
/// when declaring `v`?"). This is the *entire* probe schedule —
/// exponential bracketing downward, then bisection — factored out so
/// every payment path (black-box allocator re-runs, prefix-resumed epoch
/// probes, parallel fan-outs) issues the exact same sequence of probe
/// values and therefore produces **bit-identical** payments whenever the
/// predicates agree.
///
/// Successive probe values are strictly decreasing below every value
/// that answered "selected" so far — the property the prefix-resume
/// optimization in `ufp-core` relies on to advance its checkpoint.
pub fn critical_value_from_probe(
    declared: f64,
    config: &PaymentConfig,
    mut selected_at: impl FnMut(f64) -> bool,
) -> f64 {
    // Exponential search downward for a losing bid.
    let mut hi = declared; // selected
    let mut lo = declared;
    loop {
        lo /= 2.0;
        if lo < config.value_floor {
            return 0.0; // wins at (effectively) zero: free allocation
        }
        if !selected_at(lo) {
            break;
        }
        hi = lo;
    }

    // Invariant: selected at hi, not selected at lo.
    while hi - lo > config.relative_tolerance * hi.max(1e-300) {
        let mid = 0.5 * (hi + lo);
        if selected_at(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Critical value of `agent` in `inst`, assuming it is currently
/// selected. Returns 0 when the agent wins at arbitrarily small bids.
pub fn critical_value<A: SingleParamAllocator>(
    allocator: &A,
    inst: &A::Inst,
    agent: usize,
    config: &PaymentConfig,
) -> f64 {
    let declared = allocator.declared_value(inst, agent);
    debug_assert!(
        allocator.selected(inst)[agent],
        "critical_value probes must start from a winner"
    );
    critical_value_from_probe(declared, config, |v| {
        let probe = allocator.with_value(inst, agent, v);
        allocator.selected(&probe)[agent]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy allocator: a single-item auction among `values`, highest bid
    /// wins (ties to the lowest index). The critical value of the winner
    /// is the second-highest bid — i.e. this mechanism must reproduce
    /// Vickrey pricing.
    #[derive(Clone)]
    struct HighestBid;

    impl SingleParamAllocator for HighestBid {
        type Inst = Vec<f64>;
        fn num_agents(&self, inst: &Vec<f64>) -> usize {
            inst.len()
        }
        fn selected(&self, inst: &Vec<f64>) -> Vec<bool> {
            let mut best = 0usize;
            for i in 1..inst.len() {
                if inst[i] > inst[best] {
                    best = i;
                }
            }
            (0..inst.len()).map(|i| i == best).collect()
        }
        fn declared_value(&self, inst: &Vec<f64>, agent: usize) -> f64 {
            inst[agent]
        }
        fn with_value(&self, inst: &Vec<f64>, agent: usize, value: f64) -> Vec<f64> {
            let mut v = inst.clone();
            v[agent] = value;
            v
        }
    }

    #[test]
    fn recovers_vickrey_price() {
        let inst = vec![10.0, 7.0, 3.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        assert!((p - 7.0).abs() < 1e-6, "payment {p}, expected 7");
    }

    #[test]
    fn sole_bidder_pays_zero() {
        let inst = vec![5.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        assert_eq!(p, 0.0);
    }

    #[test]
    fn threshold_is_sharp() {
        let inst = vec![10.0, 6.5, 1.0];
        let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        // declare just above the payment: still a winner
        let above = HighestBid.with_value(&inst, 0, p * (1.0 + 1e-6) + 1e-9);
        assert!(HighestBid.selected(&above)[0]);
        // just below: a loser
        let below = HighestBid.with_value(&inst, 0, p * (1.0 - 1e-6));
        assert!(!HighestBid.selected(&below)[0]);
    }

    #[test]
    fn probe_form_is_bit_identical_to_allocator_form() {
        // Both forms must issue the same probe schedule and land on the
        // same bits — the resumed payment path depends on it.
        let inst = vec![10.0, 6.5, 1.0];
        let mut probes = Vec::new();
        let p = critical_value_from_probe(10.0, &PaymentConfig::default(), |v| {
            probes.push(v);
            let probe = HighestBid.with_value(&inst, 0, v);
            HighestBid.selected(&probe)[0]
        });
        let p2 = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
        assert_eq!(p.to_bits(), p2.to_bits());
        // Every probe is strictly below the smallest "selected" answer so
        // far (starting from the declared value) — the invariant that
        // lets prefix-resume advance its checkpoint monotonically.
        let mut min_selected = 10.0f64;
        for &v in &probes {
            assert!(
                v < min_selected,
                "probe {v} not below bracket {min_selected}"
            );
            if v > 6.5 {
                // HighestBid selects agent 0 whenever it outbids 6.5.
                min_selected = v;
            }
        }
    }

    #[test]
    fn payment_never_exceeds_declaration() {
        for second in [0.1, 1.0, 5.0, 9.999] {
            let inst = vec![10.0, second];
            let p = critical_value(&HighestBid, &inst, 0, &PaymentConfig::default());
            assert!(p <= 10.0 + 1e-9);
            assert!((p - second).abs() < 1e-6);
        }
    }
}
