//! Empirical truthfulness and monotonicity verification.
//!
//! These verifiers treat an allocator as a black box and hammer it with
//! counterfactual declarations, checking the two properties the paper's
//! mechanism rests on:
//!
//! * **Monotonicity** (Definition 2.1): winning is preserved under
//!   raising one's value (and, for UFP, lowering one's demand).
//! * **Incentive compatibility** (Theorem 2.3): under critical-value
//!   payments, no sampled misreport beats truth-telling, and truthful
//!   utility is never negative (individual rationality).
//!
//! Experiment E8 reports these across random instances; tests use them on
//! fixed fixtures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{bounded_ufp, BoundedUfpConfig, RequestId, UfpInstance};

use crate::allocator::SingleParamAllocator;
use crate::mechanism::CriticalValueMechanism;

/// Outcome of a verification sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerificationReport {
    /// Number of (agent, counterfactual) probes executed.
    pub probes: usize,
    /// Number of property violations observed (0 for a correct
    /// implementation).
    pub violations: usize,
    /// The largest utility gain any lie achieved over truth (≤ ~1e-6 for
    /// a correct implementation; dominated by bisection tolerance).
    pub worst_gain: f64,
}

impl VerificationReport {
    /// True when no violation was observed.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Verify value-monotonicity of an allocator: every winner keeps winning
/// when scaling its declared value up by each factor.
pub fn verify_value_monotonicity<A: SingleParamAllocator>(
    allocator: &A,
    inst: &A::Inst,
    factors: &[f64],
) -> VerificationReport {
    let mut report = VerificationReport::default();
    let selected = allocator.selected(inst);
    for (agent, &sel) in selected.iter().enumerate() {
        if !sel {
            continue;
        }
        let v = allocator.declared_value(inst, agent);
        for &f in factors {
            debug_assert!(f >= 1.0, "monotonicity probes scale values up");
            report.probes += 1;
            let probe = allocator.with_value(inst, agent, v * f);
            if !allocator.selected(&probe)[agent] {
                report.violations += 1;
            }
        }
    }
    report
}

/// Verify incentive compatibility of the critical-value mechanism:
/// sampled multiplicative value lies never beat truth, and truth is
/// individually rational.
pub fn verify_value_truthfulness<A: SingleParamAllocator>(
    mechanism: &CriticalValueMechanism<A>,
    inst: &A::Inst,
    lie_factors: &[f64],
) -> VerificationReport {
    let mut report = VerificationReport::default();
    let selected = mechanism.allocator.selected(inst);
    for (agent, &is_winner) in selected.iter().enumerate() {
        let true_value = mechanism.allocator.declared_value(inst, agent);
        // Truthful utility: only this agent's payment is needed, so skip
        // the full mechanism run (payments for other winners are
        // irrelevant to this agent's incentive).
        let u_truth = if is_winner {
            true_value
                - crate::payment::critical_value(
                    &mechanism.allocator,
                    inst,
                    agent,
                    &mechanism.payment,
                )
        } else {
            0.0
        };
        if u_truth < -1e-6 {
            report.violations += 1; // IR failure
        }
        for &f in lie_factors {
            report.probes += 1;
            let lie = mechanism.allocator.with_value(inst, agent, true_value * f);
            let lie_selected = mechanism.allocator.selected(&lie)[agent];
            let u_lie = if lie_selected {
                true_value
                    - crate::payment::critical_value(
                        &mechanism.allocator,
                        &lie,
                        agent,
                        &mechanism.payment,
                    )
            } else {
                0.0
            };
            let gain = u_lie - u_truth;
            if gain > report.worst_gain {
                report.worst_gain = gain;
            }
            if gain > 1e-5 {
                report.violations += 1;
            }
        }
    }
    report
}

/// UFP-specific: verify truthfulness against joint (demand, value)
/// misreports, using the exactness semantics — an agent that understates
/// its demand receives an allocation too small to be useful (value 0),
/// while overstating can only hurt selection (Lemma 3.4).
pub fn verify_ufp_type_truthfulness(
    inst: &UfpInstance,
    config: &BoundedUfpConfig,
    samples_per_agent: usize,
    seed: u64,
) -> VerificationReport {
    let mech = CriticalValueMechanism::new(crate::allocator::UfpAllocator {
        config: config.clone(),
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = VerificationReport::default();
    let honest = mech.run(inst);

    for agent in 0..inst.num_requests() {
        let rid = RequestId(agent as u32);
        let true_req = *inst.request(rid);
        let u_truth = honest.utility(agent, true_req.value);
        if u_truth < -1e-6 {
            report.violations += 1;
        }
        for _ in 0..samples_per_agent {
            report.probes += 1;
            // Sample a joint lie: demand in (0, 1], value in a wide band.
            let lie_demand = (true_req.demand * rng.random_range(0.3..1.5)).clamp(1e-6, 1.0);
            let lie_value = true_req.value * rng.random_range(0.2..4.0);
            let lie_inst = inst.with_declared_type(rid, lie_demand, lie_value);
            let selected = {
                let res = bounded_ufp(&lie_inst, config);
                res.solution.contains(rid)
            };
            let u_lie = if selected {
                let pay = crate::payment::critical_value(
                    &mech.allocator,
                    &lie_inst,
                    agent,
                    &mech.payment,
                );
                // Exactness: the mechanism allocates the *declared*
                // demand; understating leaves the agent unserved.
                let usable = lie_demand >= true_req.demand - 1e-12;
                (if usable { true_req.value } else { 0.0 }) - pay
            } else {
                0.0
            };
            let gain = u_lie - u_truth;
            if gain > report.worst_gain {
                report.worst_gain = gain;
            }
            if gain > 1e-5 {
                report.violations += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::UfpAllocator;
    use ufp_core::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn fixture() -> UfpInstance {
        let mut gb = GraphBuilder::directed(3);
        gb.add_edge(n(0), n(1), 5.0);
        gb.add_edge(n(1), n(2), 5.0);
        UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(2), 1.0, 4.0),
                Request::new(n(0), n(2), 0.8, 2.0),
                Request::new(n(0), n(1), 0.5, 1.0),
                Request::new(n(1), n(2), 1.0, 3.0),
                Request::new(n(0), n(2), 0.6, 1.5),
            ],
        )
    }

    #[test]
    fn bounded_ufp_is_value_monotone() {
        let alloc = UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(0.4),
        };
        let report = verify_value_monotonicity(&alloc, &fixture(), &[1.0, 1.5, 2.0, 10.0, 100.0]);
        assert!(report.passed(), "{report:?}");
        assert!(report.probes > 0);
    }

    #[test]
    fn bounded_ufp_mechanism_is_truthful_on_value() {
        let mech = CriticalValueMechanism::new(UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(0.4),
        });
        let report =
            verify_value_truthfulness(&mech, &fixture(), &[0.1, 0.5, 0.9, 1.0, 1.1, 2.0, 10.0]);
        assert!(report.passed(), "{report:?}");
        assert!(report.worst_gain <= 1e-5);
    }

    #[test]
    fn bounded_ufp_mechanism_is_truthful_on_joint_type() {
        let report =
            verify_ufp_type_truthfulness(&fixture(), &BoundedUfpConfig::with_epsilon(0.4), 8, 7);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn a_nonmonotone_allocator_is_caught() {
        /// Deliberately broken: selects the agent with the *median* bid.
        #[derive(Clone)]
        struct Median;
        impl SingleParamAllocator for Median {
            type Inst = Vec<f64>;
            fn num_agents(&self, inst: &Vec<f64>) -> usize {
                inst.len()
            }
            fn selected(&self, inst: &Vec<f64>) -> Vec<bool> {
                let mut idx: Vec<usize> = (0..inst.len()).collect();
                idx.sort_by(|&a, &b| inst[a].partial_cmp(&inst[b]).unwrap());
                let median = idx[inst.len() / 2];
                (0..inst.len()).map(|i| i == median).collect()
            }
            fn declared_value(&self, inst: &Vec<f64>, agent: usize) -> f64 {
                inst[agent]
            }
            fn with_value(&self, inst: &Vec<f64>, agent: usize, value: f64) -> Vec<f64> {
                let mut v = inst.clone();
                v[agent] = value;
                v
            }
        }
        let inst = vec![1.0, 2.0, 3.0];
        let report = verify_value_monotonicity(&Median, &inst, &[10.0]);
        assert!(!report.passed(), "median allocator must fail monotonicity");
    }
}
