//! # ufp-mechanism
//!
//! The game-theoretic layer of the reproduction: Theorem 2.3 of the paper
//! ("monotone + exact ⇒ truthful") as executable code.
//!
//! * [`allocator`] — the [`allocator::SingleParamAllocator`] abstraction
//!   plus adapters for Bounded-UFP, Bounded-MUCA and the BKV baseline.
//! * [`payment`] — critical-value computation by monotone bisection.
//! * [`mechanism`] — [`mechanism::CriticalValueMechanism`]: allocation +
//!   payments + quasi-linear utilities.
//! * [`verify`] — black-box monotonicity and incentive-compatibility
//!   verifiers (used by tests and experiment E8), including the
//!   UFP-specific joint (demand, value) misreport check with the paper's
//!   exactness semantics.

pub mod allocator;
pub mod mechanism;
pub mod payment;
pub mod verify;

pub use allocator::{BkvAllocator, MucaAllocator, SingleParamAllocator, UfpAllocator};
pub use mechanism::{CriticalValueMechanism, MechanismOutcome};
pub use payment::{critical_value, critical_value_from_probe, PaymentConfig};
pub use verify::{
    verify_ufp_type_truthfulness, verify_value_monotonicity, verify_value_truthfulness,
    VerificationReport,
};
