//! Property-based tests for the mechanism layer: Theorem 2.3 probed on
//! random instances, plus the Vickrey sanity anchor (on a single item the
//! critical-value mechanism *is* the second-price auction).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{BoundedUfpConfig, Request, UfpInstance};
use ufp_mechanism::{
    critical_value, verify_value_monotonicity, verify_value_truthfulness, CriticalValueMechanism,
    PaymentConfig, SingleParamAllocator, UfpAllocator,
};
use ufp_netgraph::graph::GraphBuilder;
use ufp_netgraph::ids::NodeId;

/// A contested single link with random bids — the auction-like corner of
/// UFP where payments are easy to reason about.
fn arb_link_auction() -> impl Strategy<Value = (UfpInstance, f64)> {
    (2usize..10, 2usize..12, any::<u64>(), 2usize..8).prop_map(
        |(capacity, bidders, seed, eps_fifth)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut gb = GraphBuilder::directed(2);
            gb.add_edge(NodeId(0), NodeId(1), capacity as f64);
            let requests: Vec<Request> = (0..bidders)
                .map(|_| Request::new(NodeId(0), NodeId(1), 1.0, rng.random_range(0.2..5.0)))
                .collect();
            (
                UfpInstance::new(gb.build(), requests),
                eps_fifth as f64 / 8.0,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn winners_pay_at_most_bid_and_losers_nothing((inst, eps) in arb_link_auction()) {
        let mech = CriticalValueMechanism::new(UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(eps),
        });
        let outcome = mech.run(&inst);
        for agent in 0..inst.num_requests() {
            let bid = inst.request(ufp_core::RequestId(agent as u32)).value;
            if outcome.selected[agent] {
                prop_assert!(outcome.payments[agent] <= bid + 1e-6);
                prop_assert!(outcome.payments[agent] >= -1e-12);
            } else {
                prop_assert_eq!(outcome.payments[agent], 0.0);
            }
        }
    }

    #[test]
    fn no_sampled_lie_beats_truth((inst, eps) in arb_link_auction()) {
        let mech = CriticalValueMechanism::new(UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(eps),
        });
        let report = verify_value_truthfulness(&mech, &inst, &[0.4, 0.9, 1.1, 2.5]);
        prop_assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn allocator_is_monotone((inst, eps) in arb_link_auction()) {
        let alloc = UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(eps),
        };
        let report = verify_value_monotonicity(&alloc, &inst, &[1.2, 3.0, 10.0]);
        prop_assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn payments_are_competition_driven((inst, eps) in arb_link_auction()) {
        // Removing a loser can only lower (or keep) a winner's payment:
        // less competition, weaker threshold.
        let alloc = UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(eps),
        };
        let selected = alloc.selected(&inst);
        let Some(loser) = (0..inst.num_requests()).find(|&a| !selected[a]) else {
            return Ok(());
        };
        let Some(winner) = (0..inst.num_requests()).find(|&a| selected[a]) else {
            return Ok(());
        };
        let pay_full = critical_value(&alloc, &inst, winner, &PaymentConfig::default());
        let reduced = inst.without_request(ufp_core::RequestId(loser as u32));
        // Winner's index shifts if the loser precedes it.
        let new_winner = if loser < winner { winner - 1 } else { winner };
        if alloc.selected(&reduced)[new_winner] {
            let pay_less =
                critical_value(&alloc, &reduced, new_winner, &PaymentConfig::default());
            prop_assert!(pay_less <= pay_full + 1e-6,
                "payment rose after removing a competitor: {pay_less} > {pay_full}");
        }
    }
}

/// With capacity for exactly one unit-demand request and ε = 1 the
/// mechanism collapses to a sealed-bid single-item auction: highest bid
/// wins, pays (approximately) the second-highest bid. (The guard leaves
/// exactly one slot: D₁ starts at 1 = ln⁻¹(0) ≤ e^{ε(B−1)} = 1 only for
/// the first pick.) This anchors the whole payment machinery to Vickrey.
#[test]
fn single_slot_mechanism_is_vickrey() {
    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 1.0);
    let bids = [5.0f64, 3.0, 1.0];
    let inst = UfpInstance::new(
        gb.build(),
        bids.iter()
            .map(|&v| Request::new(NodeId(0), NodeId(1), 1.0, v))
            .collect(),
    );
    let mech = CriticalValueMechanism::new(UfpAllocator {
        config: BoundedUfpConfig::with_epsilon(1.0),
    });
    let outcome = mech.run(&inst);
    assert!(outcome.selected[0], "highest bidder must win");
    assert_eq!(outcome.num_winners(), 1, "capacity admits exactly one");
    assert!(
        (outcome.payments[0] - 3.0).abs() < 1e-5,
        "Vickrey price 3.0 expected, got {}",
        outcome.payments[0]
    );
}
