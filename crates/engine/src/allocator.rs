//! Epoch-frozen allocator adapter for payment computation.

use ufp_core::{bounded_ufp_epoch, BoundedUfpConfig, EpochContext, RequestId, UfpInstance};
use ufp_mechanism::SingleParamAllocator;

/// Algorithm 1 under a frozen epoch context, as a
/// [`SingleParamAllocator`]. Critical-value bisection probes counterfactual
/// declarations against *exactly* the residual capacities, usable mask,
/// and carried weights the epoch's real run saw — the whole point of
/// per-epoch truthfulness. On a trivial context this coincides with
/// `ufp_mechanism::UfpAllocator`, which the engine/offline equivalence
/// tests assert.
#[derive(Clone, Copy, Debug)]
pub struct EpochAllocator<'a> {
    /// Per-epoch allocation configuration.
    pub config: &'a BoundedUfpConfig,
    /// Residual capacity per edge, frozen at epoch start.
    pub capacities: &'a [f64],
    /// Admissible edges, frozen at epoch start.
    pub usable: &'a [bool],
    /// Carried (already decayed) dual exponents, frozen at epoch start.
    pub carry: &'a [f64],
    /// Shard-territory path restriction, frozen at epoch start (`None`
    /// outside sharded mode). Probes must search exactly the edge set
    /// the real run could use, or a counterfactual declaration could
    /// "win" over a path the shard was never allowed to route.
    pub routable: Option<&'a [bool]>,
}

impl EpochAllocator<'_> {
    fn context(&self) -> EpochContext<'_> {
        EpochContext {
            capacities: self.capacities,
            usable: self.usable,
            carry: self.carry,
            routable: self.routable,
        }
    }
}

impl SingleParamAllocator for EpochAllocator<'_> {
    type Inst = UfpInstance;

    fn num_agents(&self, inst: &UfpInstance) -> usize {
        inst.num_requests()
    }

    fn selected(&self, inst: &UfpInstance) -> Vec<bool> {
        let outcome = bounded_ufp_epoch(inst, self.config, Some(&self.context()));
        let mut sel = vec![false; inst.num_requests()];
        for (rid, _) in &outcome.run.solution.routed {
            sel[rid.index()] = true;
        }
        sel
    }

    fn declared_value(&self, inst: &UfpInstance, agent: usize) -> f64 {
        inst.request(RequestId(agent as u32)).value
    }

    fn with_value(&self, inst: &UfpInstance, agent: usize, value: f64) -> UfpInstance {
        let rid = RequestId(agent as u32);
        inst.with_declared_type(rid, inst.request(rid).demand, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_core::Request;
    use ufp_mechanism::{critical_value, PaymentConfig, UfpAllocator};
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn trivial_context_matches_ufp_allocator_payments() {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 4.0);
        let inst = UfpInstance::new(
            gb.build(),
            (0..8)
                .map(|i| Request::new(n(0), n(1), 1.0, 1.0 + i as f64))
                .collect(),
        );
        let config = BoundedUfpConfig::with_epsilon(0.5);
        let caps: Vec<f64> = inst.graph().edges().iter().map(|e| e.capacity).collect();
        let usable = vec![true; caps.len()];
        let carry = vec![0.0; caps.len()];
        let epoch_alloc = EpochAllocator {
            config: &config,
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let offline_alloc = UfpAllocator {
            config: config.clone(),
        };
        let sel_e = epoch_alloc.selected(&inst);
        let sel_o = offline_alloc.selected(&inst);
        assert_eq!(sel_e, sel_o);
        let pc = PaymentConfig::default();
        for (agent, &selected) in sel_e.iter().enumerate() {
            if selected {
                let pe = critical_value(&epoch_alloc, &inst, agent, &pc);
                let po = critical_value(&offline_alloc, &inst, agent, &pc);
                assert_eq!(pe, po, "agent {agent}: {pe} != {po}");
            }
        }
    }

    #[test]
    fn frozen_context_prices_against_residual_scarcity() {
        // One edge, residual capacity 2 of base 4: only two unit requests
        // fit, so the excluded third bid sets a positive critical value.
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), 4.0);
        let inst = UfpInstance::new(
            gb.build(),
            vec![
                Request::new(n(0), n(1), 1.0, 5.0),
                Request::new(n(0), n(1), 1.0, 3.0),
                Request::new(n(0), n(1), 1.0, 2.0),
            ],
        );
        let config = BoundedUfpConfig::with_epsilon(1.0);
        let caps = [2.0];
        let usable = [true];
        let carry = [0.0];
        let alloc = EpochAllocator {
            config: &config,
            capacities: &caps,
            usable: &usable,
            carry: &carry,
            routable: None,
        };
        let sel = alloc.selected(&inst);
        assert_eq!(sel, vec![true, true, false]);
        let p0 = critical_value(&alloc, &inst, 0, &PaymentConfig::default());
        // Dropping below the excluded bid's effective threshold loses the
        // slot, so the payment is bounded by bids 1 and 2.
        assert!(p0 > 0.0 && p0 <= 3.0 + 1e-6, "payment {p0}");
    }
}
