//! # ufp-engine
//!
//! A long-lived, stateful **online admission-control engine** built on the
//! monotone primal–dual allocation rule of Algorithm 1 (Azar–Gamzu–Gutner,
//! SPAA 2007). Where `ufp_core::bounded_ufp` answers one-shot batch
//! questions, this crate serves *streams*: requests arrive in batches over
//! time, capacity is consumed and (with churn) released, and congestion
//! memory persists.
//!
//! ## The epoch / residual model
//!
//! The engine advances in **epochs**. One epoch = one call to
//! [`Engine::submit_batch`], which:
//!
//! 1. **Releases** admissions whose TTL expired, returning their demand to
//!    the residual capacities (tracked by
//!    [`ufp_netgraph::ResidualCaps`]).
//! 2. **Decays** the carried dual exponents by
//!    [`EngineConfig::carry_decay`] — exponential forgetting of past
//!    congestion.
//! 3. Builds the epoch's **residual view**: effective capacity
//!    `c_e − load_e` per edge, with consumed edges under the
//!    [`EngineConfig::residual_floor`] frozen out (a saturated link must
//!    not drag the guard bound `B` to zero for the whole network).
//! 4. Runs [`ufp_core::bounded_ufp_epoch`] — the *same monotone selection
//!    rule as the paper's algorithm*, initialized from the residual view
//!    and the carried weights. Within a fresh network and a single epoch
//!    this produces the identical allocation and payments as one-shot
//!    [`ufp_core::bounded_ufp`] (only the Claim 3.6 certificate is
//!    withheld in epoch mode), which
//!    is what makes the engine's truthfulness story inherit from
//!    Theorem 2.3: per-epoch the allocation is value-monotone, and
//!    critical-value payments are computed against the same frozen
//!    residual state every probe sees.
//! 5. **Commits** accepted routes (loads, global solution, event log) and
//!    computes payments per [`EngineConfig::payments`].
//!
//! ## Payments at scale: prefix-resumed critical values
//!
//! Under [`PaymentPolicy::CriticalValue`] the epoch's allocation run is
//! *traced* ([`ufp_core::bounded_ufp_epoch_traced`]): every selection
//! step records its path and dual-weight bumps. Each winner's
//! critical-value bisection then resumes from the step that selected it
//! — lowering a declared value cannot change any earlier selection
//! (Lemma 3.4) — via [`ufp_core::bounded_ufp_epoch_resume_watch`], which
//! additionally stops the moment the winner is re-selected and hands
//! back a *deeper* checkpoint for the next (lower) probe. Each probe
//! costs `O(suffix)` instead of `O(full run)`, and the per-winner
//! searches are independent given the frozen epoch context, so they fan
//! out across [`EngineConfig::pool`] with deterministic (winner-ordered)
//! results. Payments are **bit-identical** to the naive full-rerun
//! baseline, which remains available as
//! [`PaymentPolicy::CriticalValueNaive`] for equivalence tests and
//! speedup measurements (see `BENCH_PR2.json`).
//!
//! Feasibility is inductive: epoch `k` allocates within the residual
//! capacities left by epochs `1..k`, so the cumulative active allocation
//! never violates a base capacity — [`Engine::active_solution`] passes
//! `check_feasible` at every epoch boundary, by construction and by the
//! engine's debug assertions.
//!
//! ## Identity across epochs
//!
//! Requests keep **global ids**: the engine registers every arrival in an
//! append-only registry, and [`Engine::instance`] /
//! [`Engine::cumulative_solution`] express the whole history as one
//! `UfpInstance` + `UfpSolution` pair, so offline tooling (feasibility
//! checks, value accounting, LP bounds) applies unchanged to an online
//! run.
//!
//! ## Observability
//!
//! Every epoch appends structured [`EngineEvent`]s (granularity set by
//! [`EventLevel`]) and updates the running [`EngineMetrics`]: acceptance
//! rate, carried value, revenue, release counts, per-batch latency
//! percentiles (p50/p99, O(1) queries over an incrementally sorted
//! window), and the edge-utilization histogram.
//!
//! The event log is **bounded**: at [`EngineConfig::event_capacity`]
//! entries the oldest half rotates out (tallied in
//! [`engine::Engine::events_dropped`]), so replays at
//! [`EventLevel::Request`] cannot grow memory without bound. Consumers
//! that need every event call [`engine::Engine::drain_events`] at least
//! every `event_capacity / 2` events.
//!
//! When an enabled [`ufp_obs::Recorder`] is attached, [`HealthConfig`]
//! additionally turns on **auction-health telemetry** (see the `health`
//! module): a sampled out-of-band regret oracle that bounds each epoch's
//! online value against the offline fractional optimum of the same
//! frozen snapshot, plus SLO, readmission-starvation, and
//! eviction-storm accounting. All of it is observational — a health-on
//! run is bit-identical to a health-off run in admissions, payments,
//! and residual state (`tests/obs_transparency.rs`).
//!
//! ## Durability: snapshot / restore
//!
//! A long-lived deployment must be able to die and come back without
//! replaying its whole history — and, because the paper's mechanism is
//! only truthful if recovered state is *exactly* the state that produced
//! past critical-value payments, recovery has to be **bit-identical**,
//! not merely approximately right. [`engine::Engine::snapshot_to`] /
//! [`engine::Engine::restore_from`] serialize the full engine state
//! (committed loads, carried dual exponents, request registry,
//! admissions and TTL expiries, epoch counter, event log + cursor,
//! metrics window) through a hand-rolled, versioned, checksummed binary
//! [`codec`]; [`SnapshotStore`] manages epoch-stamped snapshot files
//! written atomically and recovers from the newest loadable one,
//! skipping files torn by a crash mid-save. Restore = load snapshot +
//! replay only the journaled arrivals after its epoch watermark; the
//! continued run's epochs, payments, and metrics are byte-identical to
//! an uninterrupted run (see `tests/snapshot_recovery.rs` and the
//! adversarial decoding suite in `tests/codec_adversarial.rs`).

pub mod allocator;
pub mod codec;
pub mod config;
pub mod engine;
pub mod event;
pub mod health;
pub mod metrics;
pub mod snapshot;

pub use allocator::EpochAllocator;
pub use codec::CodecError;
pub use config::{EngineConfig, EventLevel, HealthConfig, PaymentPolicy, ResidualFloor};
pub use engine::{
    Admission, Arrival, Engine, EpochOverride, EpochPlan, EpochReport, TopologyReport,
};
pub use event::EngineEvent;
pub use metrics::EngineMetrics;
pub use snapshot::{Recovered, SnapshotStore, TopologyMigration};
pub use ufp_core::SelectionStrategy;
pub use ufp_netgraph::topology::{Topology, TopologyError, TopologyEvent};
