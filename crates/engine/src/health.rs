//! Out-of-band auction-health accounting.
//!
//! Three subsystems, all configured by [`HealthConfig`] and all inert
//! while the engine's recorder is off:
//!
//! * the **regret oracle** — every `k`-th epoch, the epoch's frozen
//!   snapshot (pre-epoch residual capacities masked by the usable rule,
//!   plus the arrival batch) is handed to
//!   [`ufp_lp::solve_fractional_ufp_with_caps`] for the offline
//!   fractional optimum, and the online/offline **regret ratio** is
//!   attached to the epoch's profile ([`ufp_obs::RegretSample`]). The
//!   online run is a feasible integral solution of the same LP, so
//!   `online ≤ OPT_frac ≤ upper_bound` and the ratio is ≤ 1 by
//!   construction — the live counterpart of the paper's competitive
//!   guarantee.
//! * **SLO accounting** — per-epoch admission latency against a
//!   configured threshold: a histogram, a miss counter, and a typed
//!   [`HealthAlert::SloMiss`].
//! * **starvation / storm watermarks** — ages of the readmission queue
//!   (a flow evicted by repair after repair is starving) and a rolling
//!   eviction-rate window with an [`HealthAlert::EvictionStorm`] trip
//!   wire.
//!
//! **Bit-identity contract.** Nothing here feeds back into allocation,
//! payments, or residual state: the oracle solves *clones* of frozen
//! epoch context, and every output lands in the [`ufp_obs`] registry or
//! the profile table. `engine/tests/obs_transparency.rs` pins the
//! contract — a run with every health subsystem on is byte-identical,
//! in every deterministic output, to the same run with health off.

use std::collections::VecDeque;

use ufp_lp::{
    certified_duality_gap, sanitize_commodities, solve_fractional_ufp_with_caps, Commodity,
};
use ufp_netgraph::graph::Graph;
use ufp_obs::{HealthAlert, Phase, Recorder, RegretSample};
use ufp_par::Pool;

use crate::config::HealthConfig;
use crate::engine::Arrival;

/// Frozen inputs for one regret-oracle run, captured between plan and
/// commit (clones only — the live epoch state is never shared with the
/// oracle).
#[derive(Clone, Debug)]
pub struct RegretContext {
    /// The epoch the snapshot belongs to.
    pub(crate) epoch: u64,
    /// Pre-epoch residual capacities, already masked by the epoch's
    /// usable rule (unusable edges are zero, which the solver treats as
    /// absent).
    pub(crate) capacities: Vec<f64>,
    /// The epoch's arrival batch in LP-commodity form (not yet
    /// sanitized).
    pub(crate) commodities: Vec<Commodity>,
}

impl RegretContext {
    /// Capture a frozen oracle context from an epoch's plan data, or
    /// `None` when this epoch is not sampled (`regret_every` off, not a
    /// multiple, or the recorder disabled).
    pub fn capture(
        cfg: &HealthConfig,
        obs: &Recorder,
        epoch: u64,
        capacities: &[f64],
        usable: &[bool],
        arrivals: &[Arrival],
    ) -> Option<RegretContext> {
        if !obs.is_enabled() || cfg.regret_every == 0 || !epoch.is_multiple_of(cfg.regret_every) {
            return None;
        }
        let masked = capacities
            .iter()
            .zip(usable)
            .map(|(&c, &u)| if u { c } else { 0.0 })
            .collect();
        let commodities = arrivals
            .iter()
            .map(|a| Commodity {
                src: a.request.src,
                dst: a.request.dst,
                demand: a.request.demand,
                value: a.request.value,
            })
            .collect();
        Some(RegretContext {
            epoch,
            capacities: masked,
            commodities,
        })
    }
}

/// Run the regret oracle over a captured context and publish the
/// verdict: a [`RegretSample`] attached to the epoch's profile plus
/// registry gauges/counters. Runs under [`Phase::HealthRegretOracle`],
/// strictly outside the epoch bracket, with the solve dispatched onto
/// the engine's worker pool.
pub fn run_regret_oracle(
    graph: &Graph,
    pool: &Pool,
    obs: &Recorder,
    cfg: &HealthConfig,
    ctx: RegretContext,
    online_value: f64,
) {
    let _span = obs.span(Phase::HealthRegretOracle);
    let (kept, _) = sanitize_commodities(&ctx.commodities);
    let sample = if kept.is_empty() {
        // Nothing the oracle could price: the offline optimum is 0 too,
        // so by convention the epoch is "perfect" (ratio 1).
        RegretSample {
            online_value,
            fractional_bound: 0.0,
            ratio: 1.0,
            duality_gap: 0.0,
            commodities: 0,
            iterations: 0,
        }
    } else {
        let capacities = &ctx.capacities;
        let sol = pool
            .map(&[()], |_, _| {
                solve_fractional_ufp_with_caps(
                    graph,
                    capacities,
                    &kept,
                    cfg.regret_epsilon,
                    cfg.regret_max_iterations,
                )
            })
            .pop()
            .expect("single oracle job");
        let bound = if sol.upper_bound.is_finite() && sol.upper_bound > 0.0 {
            sol.upper_bound
        } else {
            // No column was ever routable: offline admits nothing
            // either.
            0.0
        };
        let ratio = if bound > 0.0 {
            (online_value / bound).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let duality_gap = if bound > 0.0 {
            let tol = 1e-6 * bound.max(1.0);
            certified_duality_gap(graph, capacities, &kept, &sol, tol)
                .unwrap_or((sol.upper_bound - sol.value).max(0.0))
        } else {
            0.0
        };
        RegretSample {
            online_value,
            fractional_bound: bound,
            ratio,
            duality_gap,
            commodities: kept.len(),
            iterations: sol.iterations,
        }
    };
    obs.profile_set_regret(ctx.epoch, sample);
    obs.counter_add("health.regret_samples_total", 1);
    obs.gauge_set("health.regret_ratio", sample.ratio);
    obs.gauge_set("health.regret_bound", sample.fractional_bound);
    obs.gauge_set("health.regret_online_value", sample.online_value);
}

/// Mutable health bookkeeping carried by an engine. Deliberately **not
/// snapshotted**: a restored engine starts with fresh watermarks
/// (readmission ages restart at zero, the eviction window is empty) —
/// health is telemetry about *this process's* run, not engine state.
#[derive(Clone, Debug, Default)]
pub struct HealthState {
    /// Enqueue epoch per readmission-queue entry (parallel to the
    /// engine's `readmit_queue`; cleared together with it on drain).
    pub(crate) readmit_enqueued: Vec<u64>,
    /// Rolling window of per-epoch eviction counts.
    eviction_window: VecDeque<u64>,
    /// Cumulative eviction count at the last epoch tick (to diff the
    /// engine's monotone counter into per-epoch deltas).
    evictions_seen: u64,
}

impl HealthState {
    /// A fresh state for an engine restored from a snapshot whose
    /// readmission queue holds `queued` entries: their true enqueue
    /// epochs were not persisted, so ages restart at the restore epoch.
    pub fn restored(queued: usize, epoch: u64) -> Self {
        HealthState {
            readmit_enqueued: vec![epoch; queued],
            ..Default::default()
        }
    }

    /// Record `count` flows entering the readmission queue at `epoch`
    /// (called by the repair pass; unconditional so the parallel vector
    /// stays in lockstep with the queue even while the recorder is
    /// off).
    pub fn note_readmissions(&mut self, count: usize, epoch: u64) {
        self.readmit_enqueued
            .extend(std::iter::repeat_n(epoch, count));
    }

    /// The queue was drained into the next batch.
    pub fn note_drain(&mut self) {
        self.readmit_enqueued.clear();
    }

    /// Per-epoch health tick, called after the epoch bracket closes:
    /// SLO accounting, starvation gauges, eviction-storm watermarks.
    /// No-op while the recorder is off.
    pub fn epoch_tick(
        &mut self,
        cfg: &HealthConfig,
        obs: &Recorder,
        epoch: u64,
        elapsed_us: u64,
        evictions_total: u64,
    ) {
        if !obs.is_enabled() || !cfg.any_enabled() {
            return;
        }

        // Admission-latency SLO.
        if cfg.slo_us > 0 {
            obs.histogram_record("health.admission_latency_us", elapsed_us);
            if elapsed_us > cfg.slo_us {
                obs.counter_add("health.slo_miss_total", 1);
                obs.alert(HealthAlert::SloMiss {
                    epoch,
                    observed_us: elapsed_us,
                    threshold_us: cfg.slo_us,
                });
            }
        }

        // Readmission aging / starvation.
        if cfg.starvation_epochs > 0 {
            let mut ages: Vec<u64> = self
                .readmit_enqueued
                .iter()
                .map(|&e| epoch.saturating_sub(e))
                .collect();
            ages.sort_unstable();
            let max_age = ages.last().copied().unwrap_or(0);
            let p50 = if ages.is_empty() {
                0
            } else {
                ages[ages.len() / 2]
            };
            obs.gauge_set("health.readmit_queue_depth", ages.len() as f64);
            obs.gauge_set("health.readmit_age_p50", p50 as f64);
            obs.gauge_set("health.readmit_age_max", max_age as f64);
            let starved = ages.iter().filter(|&&a| a >= cfg.starvation_epochs).count();
            if starved > 0 {
                obs.counter_add("health.starved_total", starved as u64);
                obs.alert(HealthAlert::Starvation {
                    epoch,
                    observed_epochs: max_age,
                    threshold_epochs: cfg.starvation_epochs,
                });
            }
        }

        // Eviction-storm watermark over a rolling window.
        if cfg.eviction_storm_threshold > 0.0 {
            let delta = evictions_total.saturating_sub(self.evictions_seen);
            self.evictions_seen = evictions_total;
            self.eviction_window.push_back(delta);
            while self.eviction_window.len() > cfg.eviction_window.max(1) {
                self.eviction_window.pop_front();
            }
            let rate =
                self.eviction_window.iter().sum::<u64>() as f64 / self.eviction_window.len() as f64;
            obs.gauge_set("health.eviction_rate", rate);
            if rate >= cfg.eviction_storm_threshold {
                obs.counter_add("health.eviction_storm_total", 1);
                obs.alert(HealthAlert::EvictionStorm {
                    epoch,
                    observed: rate,
                    threshold: cfg.eviction_storm_threshold,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_core::Request;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;
    use ufp_obs::Recorder;

    fn one_link(cap: f64) -> Graph {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(0), NodeId(1), cap);
        b.build()
    }

    fn arrival(demand: f64, value: f64) -> Arrival {
        Arrival::permanent(Request::new(NodeId(0), NodeId(1), demand, value))
    }

    fn sampling_cfg() -> HealthConfig {
        HealthConfig {
            regret_every: 1,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn capture_respects_sampling_and_recorder() {
        let cfg = sampling_cfg();
        let off = Recorder::off();
        let on = Recorder::enabled();
        let caps = [5.0];
        let usable = [true];
        let batch = [arrival(1.0, 3.0)];
        assert!(RegretContext::capture(&cfg, &off, 1, &caps, &usable, &batch).is_none());
        assert!(RegretContext::capture(&cfg, &on, 1, &caps, &usable, &batch).is_some());
        let every3 = HealthConfig {
            regret_every: 3,
            ..cfg
        };
        assert!(RegretContext::capture(&every3, &on, 2, &caps, &usable, &batch).is_none());
        assert!(RegretContext::capture(&every3, &on, 3, &caps, &usable, &batch).is_some());
        let never = HealthConfig {
            regret_every: 0,
            ..cfg
        };
        assert!(RegretContext::capture(&never, &on, 3, &caps, &usable, &batch).is_none());
    }

    #[test]
    fn capture_masks_unusable_edges() {
        let cfg = sampling_cfg();
        let on = Recorder::enabled();
        let ctx = RegretContext::capture(
            &cfg,
            &on,
            1,
            &[5.0, 2.0],
            &[true, false],
            &[arrival(1.0, 1.0)],
        )
        .unwrap();
        assert_eq!(ctx.capacities, vec![5.0, 0.0]);
    }

    #[test]
    fn oracle_reports_unit_ratio_when_online_matches_offline() {
        // One request of value 3 on a roomy edge: online admits it, and
        // the offline fractional optimum is the same 3.
        let g = one_link(10.0);
        let obs = Recorder::enabled();
        obs.epoch_begin(1);
        obs.epoch_end(1);
        let cfg = sampling_cfg();
        let ctx =
            RegretContext::capture(&cfg, &obs, 1, &[10.0], &[true], &[arrival(1.0, 3.0)]).unwrap();
        run_regret_oracle(&g, &Pool::sequential(), &obs, &cfg, ctx, 3.0);
        let snap = obs.snapshot().unwrap();
        let sample = snap.profiles[0].regret.expect("sample attached");
        assert_eq!(sample.commodities, 1);
        assert!(sample.fractional_bound >= 3.0 - 1e-6);
        assert!(sample.ratio <= 1.0 && sample.ratio >= 0.9, "{sample:?}");
        assert!(sample.duality_gap >= -1e-9);
    }

    #[test]
    fn oracle_handles_empty_and_infeasible_epochs() {
        let g = one_link(10.0);
        let cfg = sampling_cfg();
        // Empty batch: bound 0, ratio 1 by convention.
        let obs = Recorder::enabled();
        obs.epoch_begin(1);
        obs.epoch_end(1);
        let ctx = RegretContext::capture(&cfg, &obs, 1, &[10.0], &[true], &[]).unwrap();
        run_regret_oracle(&g, &Pool::sequential(), &obs, &cfg, ctx, 0.0);
        let sample = obs.snapshot().unwrap().profiles[0].regret.unwrap();
        assert_eq!(sample.fractional_bound, 0.0);
        assert_eq!(sample.ratio, 1.0);
        assert_eq!(sample.commodities, 0);
        // All edges unusable: nothing routable for anyone, ratio 1.
        let obs = Recorder::enabled();
        obs.epoch_begin(1);
        obs.epoch_end(1);
        let ctx =
            RegretContext::capture(&cfg, &obs, 1, &[10.0], &[false], &[arrival(1.0, 3.0)]).unwrap();
        run_regret_oracle(&g, &Pool::sequential(), &obs, &cfg, ctx, 0.0);
        let sample = obs.snapshot().unwrap().profiles[0].regret.unwrap();
        assert_eq!(sample.fractional_bound, 0.0);
        assert_eq!(sample.ratio, 1.0);
        assert_eq!(sample.commodities, 1, "commodity was fine, network wasn't");
        // Zero accepted value under a positive bound: ratio 0.
        let obs = Recorder::enabled();
        obs.epoch_begin(1);
        obs.epoch_end(1);
        let ctx =
            RegretContext::capture(&cfg, &obs, 1, &[10.0], &[true], &[arrival(1.0, 3.0)]).unwrap();
        run_regret_oracle(&g, &Pool::sequential(), &obs, &cfg, ctx, 0.0);
        let sample = obs.snapshot().unwrap().profiles[0].regret.unwrap();
        assert!(sample.fractional_bound > 0.0);
        assert_eq!(sample.ratio, 0.0);
    }

    #[test]
    fn epoch_tick_accounts_slo_starvation_and_storms() {
        let obs = Recorder::enabled();
        let cfg = HealthConfig {
            slo_us: 100,
            starvation_epochs: 2,
            eviction_window: 2,
            eviction_storm_threshold: 3.0,
            ..HealthConfig::default()
        };
        let mut st = HealthState::default();
        st.note_readmissions(2, 1);
        // Epoch 2: latency miss; queue ages = 1 (below starvation);
        // 4 evictions so far -> window [4], rate 4 >= 3 storms.
        st.epoch_tick(&cfg, &obs, 2, 250, 4);
        // Epoch 3: fast epoch; ages = 2 -> both starved; 4 more
        // evictions -> window [4, 4].
        st.epoch_tick(&cfg, &obs, 3, 50, 8);
        let snap = obs.snapshot().unwrap();
        let counter = |n: &str| {
            snap.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("health.slo_miss_total"), 1);
        assert_eq!(counter("health.starved_total"), 2);
        assert_eq!(counter("health.eviction_storm_total"), 2);
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(gauge("health.readmit_age_max"), 2.0);
        assert_eq!(gauge("health.eviction_rate"), 4.0);
        let kinds: Vec<&str> = snap.alerts.iter().map(|a| a.kind()).collect();
        assert_eq!(
            kinds,
            vec!["slo_miss", "eviction_storm", "starvation", "eviction_storm"]
        );
        // Drain clears the ages.
        st.note_drain();
        assert!(st.readmit_enqueued.is_empty());
    }

    #[test]
    fn tick_is_inert_when_recorder_off() {
        let obs = Recorder::off();
        let cfg = HealthConfig {
            slo_us: 1,
            starvation_epochs: 1,
            eviction_storm_threshold: 0.1,
            ..HealthConfig::default()
        };
        let mut st = HealthState::default();
        st.note_readmissions(3, 1);
        st.epoch_tick(&cfg, &obs, 5, 10_000, 100);
        assert!(obs.snapshot().is_none());
        // The parallel vector still tracks the queue.
        assert_eq!(st.readmit_enqueued.len(), 3);
    }

    #[test]
    fn restored_state_restarts_ages_at_the_restore_epoch() {
        let st = HealthState::restored(4, 17);
        assert_eq!(st.readmit_enqueued, vec![17; 4]);
        assert_eq!(st.evictions_seen, 0);
    }
}
