//! Structured event log.

use ufp_core::{RequestId, StopReason};

/// One structured engine event. Granularity is controlled by
/// [`crate::EventLevel`]; request ids are global (indices into
/// [`crate::Engine::instance`]).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineEvent {
    /// A batch was accepted for processing.
    EpochStarted {
        /// Epoch number (1-based).
        epoch: u64,
        /// Requests in the batch.
        arrivals: usize,
    },
    /// A request was admitted and routed.
    Admitted {
        /// Epoch of admission.
        epoch: u64,
        /// Global request id.
        request: RequestId,
        /// Hop count of the assigned route.
        hops: usize,
        /// Charged payment (0 under [`crate::PaymentPolicy::None`]).
        payment: f64,
    },
    /// A request was present in the batch but not admitted.
    Rejected {
        /// Epoch of rejection.
        epoch: u64,
        /// Global request id.
        request: RequestId,
    },
    /// An admitted request's TTL expired; its capacity returned to the
    /// residual network.
    Released {
        /// Epoch at whose start the release happened.
        epoch: u64,
        /// Global request id.
        request: RequestId,
    },
    /// An admission was evicted by a topology repair (link failure or
    /// capacity lower) and its payment refunded. Unlike the per-request
    /// admission events, evictions are logged at **every** event level:
    /// the refund audit — Σ refunds == Σ payments of evicted admissions
    /// — must hold regardless of verbosity.
    Evicted {
        /// Epoch the repair ran after (the eviction takes effect before
        /// epoch `epoch + 1` plans).
        epoch: u64,
        /// Global request id.
        request: RequestId,
        /// Refunded payment (exactly the payment charged at admission).
        refund: f64,
    },
    /// The epoch's allocation run finished.
    EpochCompleted {
        /// Epoch number.
        epoch: u64,
        /// Admitted requests.
        accepted: usize,
        /// Rejected requests.
        rejected: usize,
        /// Requests released at the epoch start.
        released: usize,
        /// Declared value admitted this epoch.
        value: f64,
        /// Payments charged this epoch.
        revenue: f64,
        /// Why the per-epoch allocation loop ended.
        stop: StopReason,
    },
}

impl EngineEvent {
    /// The epoch this event belongs to.
    pub fn epoch(&self) -> u64 {
        match *self {
            EngineEvent::EpochStarted { epoch, .. }
            | EngineEvent::Admitted { epoch, .. }
            | EngineEvent::Rejected { epoch, .. }
            | EngineEvent::Released { epoch, .. }
            | EngineEvent::Evicted { epoch, .. }
            | EngineEvent::EpochCompleted { epoch, .. } => epoch,
        }
    }
}
