//! Hand-rolled, versioned, length-prefixed binary codec for engine
//! snapshots.
//!
//! The workspace is offline (vendor shims, no serde), and the paper's
//! mechanism only stays truthful if recovered state is *exactly* the
//! state that produced past critical-value payments — so the format is
//! explicit down to the byte and every float travels as its IEEE-754 bit
//! pattern (`f64::to_bits`), never through a decimal round-trip.
//!
//! ## Container layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"UFPSNAP\0"
//! 8       4     format version (u32) — currently 2
//! 12      8     body length in bytes (u64)
//! 20      n     body (section stream, see `snapshot`)
//! 20+n    8     FNV-1a 64 checksum over bytes [0, 20+n)
//! ```
//!
//! A reader rejects, with a typed [`CodecError`] and **never a panic**:
//! bad magic, unknown version, any truncation (container- or
//! field-level), trailing bytes, checksum mismatches, and structurally
//! invalid content that a checksum cannot catch (the checksum guards
//! against storage corruption, not against a hostile writer).
//!
//! ## Version policy
//!
//! The version is bumped whenever any serialized field changes meaning,
//! width, or order. Readers support exactly the versions they know;
//! there is no silent best-effort decoding of newer (or older) formats —
//! a restored engine either continues bit-identically or the restore
//! fails loudly.

use std::fmt;

/// File magic: identifies a `ufp-engine` snapshot.
pub const MAGIC: [u8; 8] = *b"UFPSNAP\0";

/// Current (and only) snapshot format version. Version 2 added the
/// dynamic-topology sections (overlay event log + re-admission queue),
/// the per-admission eviction flag, the eviction/refund metrics, and
/// the `Evicted` event tag; version-1 snapshots are refused rather than
/// partially understood.
pub const FORMAT_VERSION: u32 = 2;

/// Size of the fixed container header (magic + version + body length).
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Size of the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;

/// Typed decode/restore failures. Every corrupt, truncated, or
/// mismatched snapshot maps to one of these — decoding never panics and
/// never silently restores partial state.
#[derive(Debug)]
pub enum CodecError {
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first eight bytes actually found (zero-padded when the
        /// input is shorter).
        found: [u8; 8],
    },
    /// The format version is not one this reader supports.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The input ended before a field (or the declared body) was
    /// complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes still required.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// Bytes remain after the declared container end.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// The bytes decoded, but violate a structural invariant (wrong
    /// section tag, out-of-range id, inconsistent lengths, …).
    Malformed {
        /// Which invariant failed.
        context: &'static str,
    },
    /// The snapshot was taken over a different network than the one
    /// provided at restore.
    GraphMismatch {
        /// Which graph property diverged.
        context: &'static str,
    },
    /// The snapshot was taken under a different engine configuration
    /// than the one provided at restore.
    ConfigMismatch {
        /// Which configuration field diverged.
        context: &'static str,
    },
    /// Filesystem failure while reading or writing a snapshot.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "not a ufp-engine snapshot (magic {found:02x?})")
            }
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            CodecError::Truncated {
                context,
                need,
                have,
            } => write!(
                f,
                "truncated snapshot while reading {context}: need {need} bytes, have {have}"
            ),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot end")
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CodecError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
            CodecError::GraphMismatch { context } => {
                write!(f, "snapshot was taken over a different graph: {context}")
            }
            CodecError::ConfigMismatch { context } => write!(
                f,
                "snapshot was taken under a different engine config: {context}"
            ),
            CodecError::Io(e) => write!(f, "snapshot i/o failure: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Incremental FNV-1a 64-bit checksum — the container integrity check.
/// Not cryptographic: it guards against storage corruption and
/// truncation, not adversarial tampering.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Fnv64 {
    /// Fold `bytes` into the running checksum.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The checksum of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::default();
    h.write(bytes);
    h.finish()
}

/// Append-only byte sink with fixed-width little-endian primitives.
/// [`Writer::into_container`] wraps the accumulated body in the
/// magic/version/length/checksum frame.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far (the body, unframed).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The body bytes, unframed. Use for nested blobs (e.g. the driver
    /// section) that live inside an outer container.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Frame the body: magic + version + length + body + checksum.
    pub fn into_container(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append raw bytes with no length prefix (for payloads whose extent
    /// is already delimited by an enclosing frame).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }
}

/// Bounds-checked cursor over a byte slice. Every read either yields the
/// requested width or returns [`CodecError::Truncated`] — no read ever
/// panics, whatever the input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte is consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless exactly every byte was consumed.
    pub fn expect_exhausted(&self) -> Result<(), CodecError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                context,
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes(s.try_into().expect("len checked")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, context)?;
        Ok(u64::from_le_bytes(s.try_into().expect("len checked")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Read a `bool` byte; anything but 0/1 is malformed.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed { context }),
        }
    }

    /// Read a length prefix and bound it by the remaining bytes — a
    /// corrupted length cannot trigger an over-allocation.
    pub fn get_len(&mut self, context: &'static str, width: usize) -> Result<usize, CodecError> {
        let n = self.get_u64(context)?;
        let n = usize::try_from(n).map_err(|_| CodecError::Malformed { context })?;
        let need = n
            .checked_mul(width)
            .ok_or(CodecError::Malformed { context })?;
        if need > self.remaining() {
            return Err(CodecError::Truncated {
                context,
                need,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], CodecError> {
        let n = self.get_len(context, 1)?;
        self.take(n, context)
    }

    /// Consume and return every remaining byte (for payloads delimited
    /// by the enclosing frame rather than their own length prefix).
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes(context)?).map_err(|_| CodecError::Malformed { context })
    }

    /// Read a length-prefixed `f64` vector (bit patterns).
    pub fn get_f64_vec(&mut self, context: &'static str) -> Result<Vec<f64>, CodecError> {
        let n = self.get_len(context, 8)?;
        (0..n).map(|_| self.get_f64(context)).collect()
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self, context: &'static str) -> Result<Vec<u64>, CodecError> {
        let n = self.get_len(context, 8)?;
        (0..n).map(|_| self.get_u64(context)).collect()
    }
}

/// Unframe a container: verify magic, version, declared body length,
/// exact total size, and checksum; return the body slice.
pub fn open_container(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 8 || bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        let n = bytes.len().min(8);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(CodecError::BadMagic { found });
    }
    let mut r = Reader::new(&bytes[8..]);
    let version = r.get_u32("container version")?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let body_len = r.get_u64("container body length")?;
    let body_len = usize::try_from(body_len).map_err(|_| CodecError::Malformed {
        context: "container body length",
    })?;
    let total = HEADER_LEN
        .checked_add(body_len)
        .and_then(|t| t.checked_add(CHECKSUM_LEN))
        .ok_or(CodecError::Malformed {
            context: "container body length",
        })?;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            context: "container body",
            need: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let stored = u64::from_le_bytes(
        bytes[total - CHECKSUM_LEN..]
            .try_into()
            .expect("len checked"),
    );
    let computed = fnv64(&bytes[..total - CHECKSUM_LEN]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(&bytes[HEADER_LEN..total - CHECKSUM_LEN])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("snapshot");
        w.put_f64_slice(&[1.5, f64::MIN_POSITIVE]);
        w.put_u64_slice(&[]);
        let body = w.into_bytes();
        let mut r = Reader::new(&body);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64("e").unwrap(), std::f64::consts::PI);
        assert!(r.get_bool("f").unwrap());
        assert_eq!(r.get_str("g").unwrap(), "snapshot");
        assert_eq!(r.get_f64_vec("h").unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert!(r.get_u64_vec("i").unwrap().is_empty());
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn container_round_trip_and_rejections() {
        let mut w = Writer::new();
        w.put_str("payload");
        let framed = w.into_container();
        assert!(open_container(&framed).is_ok());

        // Wrong magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            open_container(&bad),
            Err(CodecError::BadMagic { .. })
        ));

        // Wrong version.
        let mut bad = framed.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            open_container(&bad),
            Err(CodecError::UnsupportedVersion { found, .. }) if found != FORMAT_VERSION
        ));

        // Truncation at every length is a typed error, never a panic.
        for n in 0..framed.len() {
            let err = open_container(&framed[..n]).unwrap_err();
            assert!(matches!(
                err,
                CodecError::BadMagic { .. } | CodecError::Truncated { .. }
            ));
        }

        // Trailing garbage.
        let mut bad = framed.clone();
        bad.push(0);
        assert!(matches!(
            open_container(&bad),
            Err(CodecError::TrailingBytes { extra: 1 })
        ));

        // Any body bit flip trips the checksum.
        let mut bad = framed.clone();
        let mid = HEADER_LEN + 3;
        bad[mid] ^= 0x10;
        assert!(matches!(
            open_container(&bad),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~2^64 f64s follow
        let body = w.into_bytes();
        let mut r = Reader::new(&body);
        let err = r.get_f64_vec("huge").unwrap_err();
        assert!(matches!(
            err,
            CodecError::Truncated { .. } | CodecError::Malformed { .. }
        ));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
