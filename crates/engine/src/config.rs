//! Engine configuration.

use ufp_core::{BoundedUfpConfig, SelectionStrategy};
use ufp_mechanism::PaymentConfig;
use ufp_obs::Recorder;
use ufp_par::Pool;

/// How winners are charged.
#[derive(Clone, Copy, Debug)]
pub enum PaymentPolicy {
    /// No payments (pure admission control); revenue stays 0.
    None,
    /// Critical-value payments against the epoch's frozen residual state
    /// (Theorem 2.3 applied per epoch), computed with **prefix-resumed**
    /// probes: the epoch's real run records a per-step resume trace, each
    /// winner's bisection resumes from the step that selected it (earlier
    /// selections cannot change when its value drops), probes early-exit
    /// the moment the winner is re-selected, and independent winners fan
    /// out across the engine's worker pool with deterministic ordering.
    /// Payments are bit-identical to [`PaymentPolicy::CriticalValueNaive`]
    /// at a fraction of the cost — this is what makes pricing viable for
    /// 10⁴-request batches.
    CriticalValue(PaymentConfig),
    /// Critical-value payments by naive full re-runs: every bisection
    /// probe of every winner reruns the whole epoch allocation from
    /// scratch. Kept as the reference baseline for equivalence tests and
    /// speedup benchmarks; superlinear in batch size, so unusable beyond
    /// small epochs.
    CriticalValueNaive(PaymentConfig),
}

impl PaymentPolicy {
    /// Critical-value payments (prefix-resumed) with default bisection
    /// tolerances.
    pub fn critical_value() -> Self {
        PaymentPolicy::CriticalValue(PaymentConfig::default())
    }

    /// The naive full-rerun baseline with default bisection tolerances.
    pub fn critical_value_naive() -> Self {
        PaymentPolicy::CriticalValueNaive(PaymentConfig::default())
    }

    /// Snapshot-fingerprint of the policy: `(class, tolerance bits,
    /// floor bits)`. [`PaymentPolicy::CriticalValue`] and
    /// [`PaymentPolicy::CriticalValueNaive`] share a class on purpose —
    /// their payments are bit-identical by contract (proptested), so a
    /// snapshot taken under one may be restored under the other (the
    /// swap is exactly how the equivalence keeps being verified on
    /// restored engines).
    pub(crate) fn fingerprint(&self) -> (u8, u64, u64) {
        match *self {
            PaymentPolicy::None => (0, 0, 0),
            PaymentPolicy::CriticalValue(c) | PaymentPolicy::CriticalValueNaive(c) => {
                (1, c.relative_tolerance.to_bits(), c.value_floor.to_bits())
            }
        }
    }
}

/// When does a consumed edge stop participating in an epoch?
///
/// The guard bound `B` is the *minimum usable residual capacity*, and the
/// admission threshold `e^{ε(B−1)}` must stay above the initial dual mass
/// `≈ m`. A single drained edge that remains usable therefore throttles
/// admission for the whole network (`ε(B−1) < ln m` ⇒ every epoch
/// guard-trips immediately). The floor controls that trade-off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResidualFloor {
    /// Freeze edges whose residual drops below `ln(m)/ε²` — the paper's
    /// large-capacity regime bound, so the per-epoch approximation
    /// guarantee keeps applying to the edges still in play. Hot edges
    /// stop accepting new flow while they are still partially free, but
    /// the rest of the network keeps admitting. The default.
    Regime,
    /// Freeze only edges whose residual cannot fit a normalized demand
    /// (`< 1`). Maximizes achievable utilization but lets one nearly-full
    /// edge throttle global admission; useful for small networks and for
    /// equivalence testing.
    Permissive,
    /// Fixed floor (must be ≥ 1, the normalized maximum demand).
    Fixed(f64),
}

impl ResidualFloor {
    /// The concrete floor for a graph with `num_edges` edges under
    /// accuracy `epsilon`.
    pub fn resolve(&self, num_edges: usize, epsilon: f64) -> f64 {
        match *self {
            ResidualFloor::Regime => {
                ((num_edges.max(2) as f64).ln() / (epsilon * epsilon)).max(1.0)
            }
            ResidualFloor::Permissive => 1.0,
            ResidualFloor::Fixed(f) => f,
        }
    }
}

/// Auction-health accounting knobs: the out-of-band regret oracle,
/// admission-latency SLO, readmission starvation, and eviction-storm
/// watermarks. Everything here is observability — it reads frozen
/// copies and writes only to the [`ufp_obs`] registry — so the engine's
/// deterministic outputs (admissions, payments, residuals, events,
/// snapshots) are bit-identical with any health configuration,
/// including all-off. Health knobs are deliberately **excluded from the
/// snapshot config fingerprint** for the same reason the recorder is.
///
/// Each subsystem is off at `0`; the whole layer is also inert while
/// the engine's [`ufp_obs::Recorder`] is off (health telemetry without
/// a sink would be wasted work).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// Run the fractional-UFP regret oracle on every `k`-th epoch
    /// (`0` = never). The oracle solves the epoch's frozen snapshot
    /// (pre-epoch residuals + the arrival batch) for the offline
    /// fractional optimum and reports the online/offline ratio into the
    /// epoch profile — strictly after the epoch bracket closes.
    pub regret_every: u64,
    /// Packing-solver accuracy for oracle runs (certified `(1+ε)`
    /// bracket).
    pub regret_epsilon: f64,
    /// Packing-solver iteration cap for oracle runs.
    pub regret_max_iterations: usize,
    /// Admission-latency SLO threshold in microseconds (`0` = no SLO):
    /// an epoch whose wall-clock exceeds it counts a miss and fires a
    /// [`ufp_obs::HealthAlert::SloMiss`].
    pub slo_us: u64,
    /// Readmission age (epochs spent in the queue) at which a flow
    /// counts as starved (`0` = no starvation tracking).
    pub starvation_epochs: u64,
    /// Rolling window (epochs) over which the eviction rate is averaged.
    pub eviction_window: usize,
    /// Evictions-per-epoch (averaged over the window) that trips an
    /// [`ufp_obs::HealthAlert::EvictionStorm`] (`0.0` = never).
    pub eviction_storm_threshold: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            regret_every: 0,
            regret_epsilon: 0.05,
            regret_max_iterations: 200_000,
            slo_us: 0,
            starvation_epochs: 0,
            eviction_window: 8,
            eviction_storm_threshold: 0.0,
        }
    }
}

impl HealthConfig {
    /// True when any health subsystem is switched on.
    pub fn any_enabled(&self) -> bool {
        self.regret_every > 0
            || self.slo_us > 0
            || self.starvation_epochs > 0
            || self.eviction_storm_threshold > 0.0
    }

    /// Validate field ranges (called by [`EngineConfig::validate`]).
    pub fn validate(&self) {
        assert!(
            self.regret_epsilon > 0.0 && self.regret_epsilon <= 0.5,
            "regret_epsilon must lie in (0, 0.5], got {}",
            self.regret_epsilon
        );
        assert!(
            self.eviction_window >= 1,
            "eviction_window must be at least 1, got {}",
            self.eviction_window
        );
        assert!(
            self.eviction_storm_threshold >= 0.0 && self.eviction_storm_threshold.is_finite(),
            "eviction_storm_threshold must be finite and non-negative, got {}",
            self.eviction_storm_threshold
        );
    }
}

/// Event-log granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventLevel {
    /// Only epoch boundaries — constant events per epoch, so a
    /// long-lived engine's log stays bounded by its epoch count. The
    /// default.
    Epoch,
    /// Epoch boundaries plus one event per admitted / rejected /
    /// released request. Opt-in: the log grows with traffic, so pair it
    /// with regular [`crate::Engine::take_events`] drains.
    Request,
}

/// Configuration of a streaming [`crate::Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Accuracy parameter handed to the per-epoch Bounded-UFP run.
    pub epsilon: f64,
    /// Parallelism for the per-iteration shortest-path fan-out.
    pub pool: Pool,
    /// Multiplier applied to the carried dual exponents at the start of
    /// every epoch, in `[0, 1]`: `0.0` forgets congestion each epoch,
    /// `1.0` never forgets. Exponential half-life memory in between.
    pub carry_decay: f64,
    /// Consumed edges whose residual capacity falls below this floor are
    /// frozen out of the epoch (excluded from paths, from `B`, and from
    /// the guard sum). Untouched edges are always usable, so a fresh
    /// network behaves exactly like the one-shot algorithm.
    pub residual_floor: ResidualFloor,
    /// Payment computation.
    pub payments: PaymentPolicy,
    /// How each epoch's allocation loop finds its per-iteration argmin.
    /// [`SelectionStrategy::Incremental`] (the default) and
    /// [`SelectionStrategy::FanOut`] are bit-identical in every output —
    /// admissions, records, payments, snapshots — so this is purely a
    /// performance knob, and the snapshot config fingerprint keeps the
    /// two in **one class** (a snapshot taken under either restores
    /// under the other), the same contract as
    /// [`PaymentPolicy::CriticalValue`] /
    /// [`PaymentPolicy::CriticalValueNaive`].
    pub selection: SelectionStrategy,
    /// Event-log granularity.
    pub events: EventLevel,
    /// Retention cap for the in-engine event log. When the log reaches
    /// this many entries, the **oldest half is discarded** in one
    /// amortized-O(1) rotation and counted in
    /// [`crate::Engine::events_dropped`]; the newest `event_capacity / 2`
    /// events are always retained. Long replays at
    /// [`EventLevel::Request`] should still call
    /// [`crate::Engine::drain_events`] regularly — the cap is a memory
    /// backstop, not a delivery guarantee.
    pub event_capacity: usize,
    /// Observability recorder threaded through the epoch pipeline
    /// (spans, domain gauges, epoch profiles). Off by default and
    /// strictly out-of-band: every deterministic output is
    /// bit-identical with it on or off, and it is **excluded from the
    /// snapshot config fingerprint** — a snapshot taken while traced
    /// restores under an untraced engine and vice versa.
    pub obs: Recorder,
    /// Auction-health accounting (regret oracle, SLO, starvation,
    /// eviction storms). Inert unless `obs` is enabled; excluded from
    /// the snapshot config fingerprint like `obs` itself.
    pub health: HealthConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epsilon: 0.3,
            pool: Pool::sequential(),
            carry_decay: 0.5,
            residual_floor: ResidualFloor::Regime,
            payments: PaymentPolicy::None,
            selection: SelectionStrategy::default(),
            events: EventLevel::Epoch,
            event_capacity: 1 << 16,
            obs: Recorder::off(),
            health: HealthConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Default configuration with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must lie in (0, 1], got {epsilon}"
        );
        EngineConfig {
            epsilon,
            ..Default::default()
        }
    }

    /// Same configuration with a parallel pool.
    pub fn parallel(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Same configuration with the given payment policy.
    pub fn with_payments(mut self, payments: PaymentPolicy) -> Self {
        self.payments = payments;
        self
    }

    /// Same configuration with the given selection strategy.
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Same configuration with an observability recorder attached.
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Same configuration with the given health accounting knobs.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// The per-epoch allocator configuration this engine drives.
    pub fn allocator_config(&self) -> BoundedUfpConfig {
        let mut cfg = BoundedUfpConfig::with_epsilon(self.epsilon);
        cfg.pool = self.pool;
        cfg.selection = self.selection;
        cfg.obs = self.obs.clone();
        cfg
    }

    /// Validate field ranges (called by [`crate::Engine::new`]).
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon <= 1.0,
            "epsilon must lie in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.carry_decay),
            "carry_decay must lie in [0, 1], got {}",
            self.carry_decay
        );
        if let ResidualFloor::Fixed(f) = self.residual_floor {
            assert!(
                f >= 1.0,
                "residual_floor must be >= 1 (the normalized max demand), got {f}"
            );
        }
        assert!(
            self.event_capacity >= 16,
            "event_capacity must be at least 16, got {}",
            self.event_capacity
        );
        self.health.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        EngineConfig::default().validate();
        EngineConfig::with_epsilon(0.5).validate();
    }

    #[test]
    #[should_panic(expected = "carry_decay")]
    fn bad_decay_rejected() {
        let cfg = EngineConfig {
            carry_decay: 1.5,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "residual_floor")]
    fn sub_demand_floor_rejected() {
        let cfg = EngineConfig {
            residual_floor: ResidualFloor::Fixed(0.5),
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "event_capacity")]
    fn tiny_event_capacity_rejected() {
        let cfg = EngineConfig {
            event_capacity: 2,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn health_defaults_are_all_off_and_validate() {
        let h = HealthConfig::default();
        assert!(!h.any_enabled());
        h.validate();
        for on in [
            HealthConfig {
                regret_every: 4,
                ..h
            },
            HealthConfig { slo_us: 500, ..h },
            HealthConfig {
                starvation_epochs: 3,
                ..h
            },
            HealthConfig {
                eviction_storm_threshold: 2.0,
                ..h
            },
        ] {
            assert!(on.any_enabled());
            on.validate();
        }
    }

    #[test]
    #[should_panic(expected = "regret_epsilon")]
    fn bad_regret_epsilon_rejected() {
        let cfg = EngineConfig {
            health: HealthConfig {
                regret_epsilon: 0.0,
                ..HealthConfig::default()
            },
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "eviction_window")]
    fn zero_eviction_window_rejected() {
        let cfg = EngineConfig {
            health: HealthConfig {
                eviction_window: 0,
                ..HealthConfig::default()
            },
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn floor_resolution() {
        let eps = 0.5;
        let regime = ResidualFloor::Regime.resolve(5000, eps);
        assert!((regime - (5000f64).ln() / 0.25).abs() < 1e-9);
        assert_eq!(ResidualFloor::Permissive.resolve(5000, eps), 1.0);
        assert_eq!(ResidualFloor::Fixed(7.0).resolve(5000, eps), 7.0);
        // Tiny graphs never resolve below the normalized max demand.
        assert!(ResidualFloor::Regime.resolve(2, 1.0) >= 1.0);
    }

    #[test]
    fn allocator_config_inherits_epsilon_pool_and_selection() {
        let cfg = EngineConfig::with_epsilon(0.7)
            .parallel(Pool::new(3))
            .with_selection(SelectionStrategy::FanOut);
        let a = cfg.allocator_config();
        assert_eq!(a.epsilon, 0.7);
        assert_eq!(a.pool.threads(), 3);
        assert!(!a.respect_residual);
        assert_eq!(a.selection, SelectionStrategy::FanOut);
        // The engine default follows the allocator default: incremental.
        assert_eq!(
            EngineConfig::default().selection,
            SelectionStrategy::Incremental
        );
    }
}
