//! Durable engine snapshots and the snapshot + journal recovery model.
//!
//! ## What a snapshot contains
//!
//! A snapshot is one [`codec`] container holding *every* piece of engine
//! state that influences future epochs or read-outs, each in its own
//! tagged, length-prefixed section:
//!
//! | tag | section    | contents                                            |
//! |-----|------------|-----------------------------------------------------|
//! | 1   | config     | fingerprint of the semantic engine configuration    |
//! | 2   | graph      | fingerprint (kind, sizes, edge digest) of the network |
//! | 3   | state      | epoch counter, committed loads, carried dual exponents |
//! | 4   | requests   | the append-only global request registry             |
//! | 5   | admissions | every admission (path, payment, TTL, released flag) |
//! | 6   | events     | retained event log + dropped-event cursor           |
//! | 7   | metrics    | counters and the latency ring buffer                |
//! | 9   | topology   | dynamic-topology overlay: version, fingerprint, event log |
//! | 10  | readmit    | evicted flows queued for re-admission               |
//! | 8   | driver     | opaque caller blob (RNG stream position, trace cursor, …) |
//!
//! The *base* graph itself is **not** serialized — it is immutable,
//! typically large, and already owned by the caller; restore takes the
//! graph (and config) and verifies both against the stored
//! fingerprints, failing with [`CodecError::GraphMismatch`] /
//! [`CodecError::ConfigMismatch`] rather than continuing over the wrong
//! network. The *dynamic* overlay (capacity resizes, link failures,
//! node drains) **is** serialized, as its full event log plus the
//! (version, state-fingerprint) pair: restore replays the log over the
//! base graph and cross-checks both, so a snapshot pins exactly the
//! topology it was taken on. Restoring onto a *mutated* topology is an
//! explicit typed migration — see [`Engine::restore_with_topology`] and
//! [`TopologyMigration`] — never a silent reinterpretation. Every float travels as
//! its exact IEEE-754 bit pattern, so a restored engine's subsequent
//! epochs, critical-value payments, and metrics are **byte-identical**
//! to an uninterrupted run (asserted by `tests/snapshot_recovery.rs`).
//!
//! The engine owns no RNG — its evolution is a deterministic function of
//! the arrival stream — so there is no generator state in the engine
//! sections. Drivers that *do* sample (trace generators like
//! `engine_sim`) persist their RNG stream position and arrival-stream
//! cursor in the opaque driver section.
//!
//! ## Snapshot + journal recovery
//!
//! A [`SnapshotStore`] pairs periodic snapshots with the arrival journal
//! the deployment already keeps (the engine's event log records epoch
//! boundaries; the driver's trace or intake queue holds the arrivals
//! themselves — the write-ahead journal). Recovery is:
//!
//! 1. load the newest structurally-valid snapshot (corrupt or
//!    half-written files from a crash mid-save are skipped, with the
//!    typed reason reported),
//! 2. read its epoch watermark,
//! 3. replay only the journaled arrivals for epochs **after** the
//!    watermark.
//!
//! Because restore is bit-identical and epochs are deterministic, the
//! replayed suffix reproduces exactly the state (and payments) of a run
//! that never crashed.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ufp_core::{Request, RequestId, StopReason};
use ufp_netgraph::graph::{Graph, GraphKind};
use ufp_netgraph::ids::{EdgeId, NodeId};
use ufp_netgraph::residual::ResidualCaps;
use ufp_netgraph::topology::{Topology, TopologyEvent};

use crate::codec::{self, CodecError, Fnv64, Reader, Writer};
use crate::config::EngineConfig;
use crate::engine::{Admission, Arrival, Engine};
use crate::event::EngineEvent;
use crate::metrics::EngineMetrics;

/// Section tags, in their mandatory order of appearance.
const SEC_CONFIG: u8 = 1;
const SEC_GRAPH: u8 = 2;
const SEC_STATE: u8 = 3;
const SEC_REQUESTS: u8 = 4;
const SEC_ADMISSIONS: u8 = 5;
const SEC_EVENTS: u8 = 6;
const SEC_METRICS: u8 = 7;
const SEC_TOPOLOGY: u8 = 9;
const SEC_READMIT: u8 = 10;
// The opaque driver blob stays last so its `rest()`-style consumers
// keep working; tags 9/10 were assigned after 8 shipped.
const SEC_DRIVER: u8 = 8;

/// Fingerprint of a graph: enough to refuse restoring over a different
/// network, without serializing the network itself.
fn graph_digest(graph: &Graph) -> u64 {
    let mut h = Fnv64::default();
    for e in graph.edges() {
        h.write(&e.src.0.to_le_bytes());
        h.write(&e.dst.0.to_le_bytes());
        h.write(&e.capacity.to_bits().to_le_bytes());
    }
    h.finish()
}

/// Write `bytes` to `path` atomically **and durably**: temp file in the
/// same directory, fsync'd, renamed into place, then the parent
/// directory fsync'd — a rename is only crash-safe once its directory
/// entry is on disk, and callers prune their journal against the
/// returned watermark, so `Ok` here must mean the snapshot survives
/// power loss.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CodecError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

fn begin_section(w: &mut Writer, tag: u8, body: Writer) {
    w.put_u8(tag);
    w.put_bytes(body.as_bytes());
}

fn open_section<'a>(
    r: &mut Reader<'a>,
    tag: u8,
    context: &'static str,
) -> Result<Reader<'a>, CodecError> {
    let found = r.get_u8(context)?;
    if found != tag {
        return Err(CodecError::Malformed { context });
    }
    Ok(Reader::new(r.get_bytes(context)?))
}

// ---------------------------------------------------------------------
// Encode.
// ---------------------------------------------------------------------

/// Serialize `engine` (plus an opaque `driver` blob) into a framed
/// snapshot container.
pub fn encode_engine(engine: &Engine, driver: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();

    // Config fingerprint: the semantic fields a restored engine must
    // share for continuation to stay bit-identical. The worker pool is
    // deliberately absent — parallel and sequential fan-outs produce
    // identical results by `ufp_par`'s ordered reduction, so a snapshot
    // may be restored under a different thread count. The selection
    // strategy is deliberately absent too: `SelectionStrategy::
    // Incremental` and `::FanOut` are bit-identical by contract
    // (proptested in ufp-core's selection_equivalence suite), so they
    // form one fingerprint class and snapshots restore across the pair —
    // the same contract as `CriticalValue` ≡ `CriticalValueNaive`.
    let mut s = Writer::new();
    let cfg = &engine.config;
    s.put_f64(cfg.epsilon);
    s.put_f64(cfg.carry_decay);
    s.put_f64(engine.floor);
    let (pay_class, pay_tol, pay_floor) = cfg.payments.fingerprint();
    s.put_u8(pay_class);
    s.put_u64(pay_tol);
    s.put_u64(pay_floor);
    s.put_u8(match cfg.events {
        crate::config::EventLevel::Epoch => 0,
        crate::config::EventLevel::Request => 1,
    });
    s.put_u64(cfg.event_capacity as u64);
    begin_section(&mut w, SEC_CONFIG, s);

    // Graph fingerprint.
    let mut s = Writer::new();
    s.put_u8(match engine.graph.kind() {
        GraphKind::Directed => 0,
        GraphKind::Undirected => 1,
    });
    s.put_u64(engine.graph.num_nodes() as u64);
    s.put_u64(engine.graph.num_edges() as u64);
    s.put_u64(graph_digest(&engine.graph));
    begin_section(&mut w, SEC_GRAPH, s);

    // Core evolving state.
    let mut s = Writer::new();
    s.put_u64(engine.epoch);
    s.put_f64_slice(engine.residual.loads());
    s.put_f64_slice(&engine.carry);
    begin_section(&mut w, SEC_STATE, s);

    // Request registry.
    let mut s = Writer::new();
    s.put_u64(engine.requests.len() as u64);
    for r in &engine.requests {
        s.put_u32(r.src.0);
        s.put_u32(r.dst.0);
        s.put_f64(r.demand);
        s.put_f64(r.value);
    }
    begin_section(&mut w, SEC_REQUESTS, s);

    // Admissions (paths included: releases need them, read-outs expose
    // them). The expiry index is *not* serialized — it is rebuilt from
    // the unreleased TTL'd admissions, in the same admission order that
    // produced it.
    let mut s = Writer::new();
    s.put_u64(engine.admissions.len() as u64);
    for a in &engine.admissions {
        s.put_u32(a.request.0);
        s.put_u64(a.epoch);
        match a.expires_at {
            None => s.put_bool(false),
            Some(e) => {
                s.put_bool(true);
                s.put_u64(e);
            }
        }
        s.put_f64(a.payment);
        s.put_bool(a.released);
        s.put_bool(a.evicted);
        s.put_u64(a.path.nodes().len() as u64);
        for n in a.path.nodes() {
            s.put_u32(n.0);
        }
        for e in a.path.edges() {
            s.put_u32(e.0);
        }
    }
    begin_section(&mut w, SEC_ADMISSIONS, s);

    // Event log + cursor.
    let mut s = Writer::new();
    s.put_u64(engine.events_dropped);
    s.put_u64(engine.events.len() as u64);
    for e in &engine.events {
        encode_event(&mut s, e);
    }
    begin_section(&mut w, SEC_EVENTS, s);

    // Metrics (latency figures are wall-clock and excluded from any
    // determinism guarantee, but round-trip identity still preserves
    // them exactly).
    let mut s = Writer::new();
    let m = &engine.metrics;
    s.put_u64(m.epochs);
    s.put_u64(m.arrivals);
    s.put_u64(m.accepted);
    s.put_u64(m.rejected);
    s.put_u64(m.released);
    s.put_u64(m.evicted);
    s.put_f64(m.value_admitted);
    s.put_f64(m.revenue);
    s.put_f64(m.refunded);
    s.put_u64(m.total_latency_us);
    s.put_u64(m.latency_cursor as u64);
    s.put_u64_slice(&m.batch_latency_us);
    begin_section(&mut w, SEC_METRICS, s);

    // Dynamic-topology overlay: the full event log plus the (version,
    // state-fingerprint) pair it must replay to. Both are redundant with
    // the log — deliberately: restore replays and cross-checks them, so
    // a snapshot can never be reinterpreted over a different topology.
    let mut s = Writer::new();
    let topo = engine.topology();
    s.put_u64(topo.version());
    s.put_u64(topo.fingerprint());
    s.put_u64(topo.log().len() as u64);
    for e in topo.log() {
        encode_topology_event(&mut s, e);
    }
    begin_section(&mut w, SEC_TOPOLOGY, s);

    // Re-admission queue: evicted flows waiting for the next batch.
    let mut s = Writer::new();
    s.put_u64(engine.readmit_queue.len() as u64);
    for a in &engine.readmit_queue {
        s.put_u32(a.request.src.0);
        s.put_u32(a.request.dst.0);
        s.put_f64(a.request.demand);
        s.put_f64(a.request.value);
        match a.ttl {
            None => s.put_bool(false),
            Some(t) => {
                s.put_bool(true);
                s.put_u32(t);
            }
        }
    }
    begin_section(&mut w, SEC_READMIT, s);

    // Opaque driver blob — raw: the section frame already delimits it.
    let mut s = Writer::new();
    s.put_raw(driver);
    begin_section(&mut w, SEC_DRIVER, s);

    w.into_container()
}

/// Serialize one [`EngineEvent`] in the snapshot wire format. Public so
/// composing snapshot layers (the sharded engine's) share one event
/// codec instead of forking the tag assignments.
pub fn encode_event(w: &mut Writer, e: &EngineEvent) {
    match *e {
        EngineEvent::EpochStarted { epoch, arrivals } => {
            w.put_u8(0);
            w.put_u64(epoch);
            w.put_u64(arrivals as u64);
        }
        EngineEvent::Admitted {
            epoch,
            request,
            hops,
            payment,
        } => {
            w.put_u8(1);
            w.put_u64(epoch);
            w.put_u32(request.0);
            w.put_u64(hops as u64);
            w.put_f64(payment);
        }
        EngineEvent::Rejected { epoch, request } => {
            w.put_u8(2);
            w.put_u64(epoch);
            w.put_u32(request.0);
        }
        EngineEvent::Released { epoch, request } => {
            w.put_u8(3);
            w.put_u64(epoch);
            w.put_u32(request.0);
        }
        EngineEvent::Evicted {
            epoch,
            request,
            refund,
        } => {
            w.put_u8(5);
            w.put_u64(epoch);
            w.put_u32(request.0);
            w.put_f64(refund);
        }
        EngineEvent::EpochCompleted {
            epoch,
            accepted,
            rejected,
            released,
            value,
            revenue,
            stop,
        } => {
            w.put_u8(4);
            w.put_u64(epoch);
            w.put_u64(accepted as u64);
            w.put_u64(rejected as u64);
            w.put_u64(released as u64);
            w.put_f64(value);
            w.put_f64(revenue);
            w.put_u8(encode_stop(stop));
        }
    }
}

/// Serialize one [`TopologyEvent`] in the snapshot wire format (shared
/// with the sharded snapshot layer, like [`encode_event`]).
pub fn encode_topology_event(w: &mut Writer, e: &TopologyEvent) {
    match *e {
        TopologyEvent::SetCapacity { edge, capacity } => {
            w.put_u8(0);
            w.put_u32(edge.0);
            w.put_f64(capacity);
        }
        TopologyEvent::LinkDown { edge } => {
            w.put_u8(1);
            w.put_u32(edge.0);
        }
        TopologyEvent::LinkUp { edge } => {
            w.put_u8(2);
            w.put_u32(edge.0);
        }
        TopologyEvent::DrainNode { node } => {
            w.put_u8(3);
            w.put_u32(node.0);
        }
        TopologyEvent::UndrainNode { node } => {
            w.put_u8(4);
            w.put_u32(node.0);
        }
    }
}

/// Inverse of [`encode_topology_event`]. Range and value validation is
/// left to [`Topology::replay`], which checks every event against the
/// live base graph.
pub fn decode_topology_event(s: &mut Reader<'_>) -> Result<TopologyEvent, CodecError> {
    Ok(match s.get_u8("topology event tag")? {
        0 => TopologyEvent::SetCapacity {
            edge: EdgeId(s.get_u32("topology event edge")?),
            capacity: s.get_f64("topology event capacity")?,
        },
        1 => TopologyEvent::LinkDown {
            edge: EdgeId(s.get_u32("topology event edge")?),
        },
        2 => TopologyEvent::LinkUp {
            edge: EdgeId(s.get_u32("topology event edge")?),
        },
        3 => TopologyEvent::DrainNode {
            node: NodeId(s.get_u32("topology event node")?),
        },
        4 => TopologyEvent::UndrainNode {
            node: NodeId(s.get_u32("topology event node")?),
        },
        _ => {
            return Err(CodecError::Malformed {
                context: "topology event tag",
            })
        }
    })
}

fn encode_stop(s: StopReason) -> u8 {
    match s {
        StopReason::Exhausted => 0,
        StopReason::Guard => 1,
        StopReason::NoPath => 2,
        StopReason::IterationCap => 3,
    }
}

fn decode_stop(v: u8) -> Result<StopReason, CodecError> {
    Ok(match v {
        0 => StopReason::Exhausted,
        1 => StopReason::Guard,
        2 => StopReason::NoPath,
        3 => StopReason::IterationCap,
        _ => {
            return Err(CodecError::Malformed {
                context: "stop reason tag",
            })
        }
    })
}

// ---------------------------------------------------------------------
// Decode.
// ---------------------------------------------------------------------

/// Deserialize a snapshot into a ready-to-run [`Engine`] over the given
/// graph and configuration, returning the engine and the opaque driver
/// blob. Fails with a typed [`CodecError`] — never a panic, never a
/// partially-restored engine — on corruption, truncation, version skew,
/// or a graph/config that does not match the snapshot's fingerprints.
pub fn decode_engine(
    bytes: &[u8],
    graph: Arc<Graph>,
    config: EngineConfig,
) -> Result<(Engine, Vec<u8>), CodecError> {
    let body = codec::open_container(bytes)?;
    let mut r = Reader::new(body);

    // Config fingerprint must match the provided configuration.
    config.validate();
    let mut s = open_section(&mut r, SEC_CONFIG, "config section")?;
    let floor = config
        .residual_floor
        .resolve(graph.num_edges(), config.epsilon);
    check_bits(s.get_f64("config epsilon")?, config.epsilon, "epsilon")?;
    check_bits(
        s.get_f64("config carry_decay")?,
        config.carry_decay,
        "carry_decay",
    )?;
    // The resolved floor depends on the *provided* graph's edge count, so
    // comparing it now would misreport a wrong graph as a config
    // mismatch; the check is deferred until the graph fingerprint has
    // passed.
    let stored_floor = s.get_f64("config residual floor")?;
    let (pay_class, pay_tol, pay_floor) = config.payments.fingerprint();
    if s.get_u8("config payments class")? != pay_class {
        return Err(CodecError::ConfigMismatch {
            context: "payment policy",
        });
    }
    if s.get_u64("config payments tolerance")? != pay_tol
        || s.get_u64("config payments floor")? != pay_floor
    {
        return Err(CodecError::ConfigMismatch {
            context: "payment tolerances",
        });
    }
    let events_level = match config.events {
        crate::config::EventLevel::Epoch => 0,
        crate::config::EventLevel::Request => 1,
    };
    if s.get_u8("config event level")? != events_level {
        return Err(CodecError::ConfigMismatch {
            context: "event level",
        });
    }
    if s.get_u64("config event capacity")? != config.event_capacity as u64 {
        return Err(CodecError::ConfigMismatch {
            context: "event capacity",
        });
    }
    s.expect_exhausted()?;

    // Graph fingerprint must match the provided graph.
    let mut s = open_section(&mut r, SEC_GRAPH, "graph section")?;
    let kind = match graph.kind() {
        GraphKind::Directed => 0,
        GraphKind::Undirected => 1,
    };
    if s.get_u8("graph kind")? != kind {
        return Err(CodecError::GraphMismatch {
            context: "graph kind",
        });
    }
    if s.get_u64("graph node count")? != graph.num_nodes() as u64 {
        return Err(CodecError::GraphMismatch {
            context: "node count",
        });
    }
    if s.get_u64("graph edge count")? != graph.num_edges() as u64 {
        return Err(CodecError::GraphMismatch {
            context: "edge count",
        });
    }
    if s.get_u64("graph digest")? != graph_digest(&graph) {
        return Err(CodecError::GraphMismatch {
            context: "edge digest",
        });
    }
    s.expect_exhausted()?;
    // Graph verified: a floor difference now really is a config
    // difference.
    check_bits(stored_floor, floor, "resolved residual floor")?;

    // Core state.
    let mut s = open_section(&mut r, SEC_STATE, "state section")?;
    let epoch = s.get_u64("epoch counter")?;
    let loads = s.get_f64_vec("residual loads")?;
    let carry = s.get_f64_vec("carried dual exponents")?;
    s.expect_exhausted()?;
    // The residual tracker is built only after the topology section is
    // decoded: its capacities are the *effective* (overlay) ones, not
    // the base graph's.
    if loads.len() != graph.num_edges() {
        return Err(CodecError::Malformed {
            context: "residual loads (length or range)",
        });
    }
    if carry.len() != graph.num_edges() || carry.iter().any(|k| !k.is_finite() || *k < 0.0) {
        return Err(CodecError::Malformed {
            context: "carried dual exponents (length or range)",
        });
    }

    // Request registry.
    let mut s = open_section(&mut r, SEC_REQUESTS, "requests section")?;
    let n = s.get_len("request count", 24)?;
    let mut requests = Vec::with_capacity(n);
    for _ in 0..n {
        let src = s.get_u32("request src")?;
        let dst = s.get_u32("request dst")?;
        let demand = s.get_f64("request demand")?;
        let value = s.get_f64("request value")?;
        if src as usize >= graph.num_nodes() || dst as usize >= graph.num_nodes() || src == dst {
            return Err(CodecError::Malformed {
                context: "request endpoints",
            });
        }
        if !(demand.is_finite() && demand > 0.0 && value.is_finite() && value > 0.0) {
            return Err(CodecError::Malformed {
                context: "request type (demand/value range)",
            });
        }
        // Fields validated above; bypass `Request::new` so corrupted
        // input can never reach its asserts.
        requests.push(Request {
            src: NodeId(src),
            dst: NodeId(dst),
            demand,
            value,
        });
    }
    s.expect_exhausted()?;

    // Admissions, with the expiry index rebuilt in admission order (the
    // same order the live engine inserted entries, so continuation
    // releases in the identical sequence).
    let mut s = open_section(&mut r, SEC_ADMISSIONS, "admissions section")?;
    let n = s.get_len("admission count", 1)?;
    let mut admissions = Vec::with_capacity(n);
    let mut expiry_index: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for i in 0..n {
        let request = s.get_u32("admission request id")?;
        if request as usize >= requests.len() {
            return Err(CodecError::Malformed {
                context: "admission request id out of range",
            });
        }
        let adm_epoch = s.get_u64("admission epoch")?;
        let expires_at = if s.get_bool("admission expiry flag")? {
            Some(s.get_u64("admission expiry epoch")?)
        } else {
            None
        };
        let payment = s.get_f64("admission payment")?;
        if !payment.is_finite() {
            return Err(CodecError::Malformed {
                context: "admission payment",
            });
        }
        let released = s.get_bool("admission released flag")?;
        let evicted = s.get_bool("admission evicted flag")?;
        if evicted && !released {
            return Err(CodecError::Malformed {
                context: "admission evicted but not released",
            });
        }
        let node_count = s.get_len("admission path nodes", 4)?;
        if node_count < 2 {
            return Err(CodecError::Malformed {
                context: "admission path too short",
            });
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let v = s.get_u32("admission path node")?;
            if v as usize >= graph.num_nodes() {
                return Err(CodecError::Malformed {
                    context: "admission path node out of range",
                });
            }
            nodes.push(NodeId(v));
        }
        let mut edges = Vec::with_capacity(node_count - 1);
        for _ in 0..node_count - 1 {
            let v = s.get_u32("admission path edge")?;
            if v as usize >= graph.num_edges() {
                return Err(CodecError::Malformed {
                    context: "admission path edge out of range",
                });
            }
            edges.push(EdgeId(v));
        }
        if let (Some(expiry), false) = (expires_at, released) {
            expiry_index.entry(expiry).or_default().push(i);
        }
        // Full structural validation against the live graph, not just
        // range checks: a forged path whose edges do not join its node
        // sequence would otherwise silently corrupt the residual loads
        // at the next TTL release (the checksum only guards against
        // storage corruption, not a hostile writer).
        let path = ufp_netgraph::path::Path::new(nodes, edges);
        if path.validate(&graph).is_err() {
            return Err(CodecError::Malformed {
                context: "admission path does not lie in the graph",
            });
        }
        let req = &requests[request as usize];
        if path.source() != req.src || path.target() != req.dst {
            return Err(CodecError::Malformed {
                context: "admission path endpoints disagree with its request",
            });
        }
        admissions.push(Admission {
            request: RequestId(request),
            path,
            epoch: adm_epoch,
            expires_at,
            payment,
            released,
            evicted,
        });
    }
    s.expect_exhausted()?;

    // Event log.
    let mut s = open_section(&mut r, SEC_EVENTS, "events section")?;
    let events_dropped = s.get_u64("dropped event count")?;
    let n = s.get_len("event count", 1)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(decode_event(&mut s)?);
    }
    s.expect_exhausted()?;

    // Metrics.
    let mut s = open_section(&mut r, SEC_METRICS, "metrics section")?;
    let m_epochs = s.get_u64("metrics epochs")?;
    let m_arrivals = s.get_u64("metrics arrivals")?;
    let m_accepted = s.get_u64("metrics accepted")?;
    let m_rejected = s.get_u64("metrics rejected")?;
    let m_released = s.get_u64("metrics released")?;
    let m_evicted = s.get_u64("metrics evicted")?;
    let m_value = s.get_f64("metrics value")?;
    let m_revenue = s.get_f64("metrics revenue")?;
    let m_refunded = s.get_f64("metrics refunded")?;
    let m_total_latency = s.get_u64("metrics total latency")?;
    let m_cursor = s.get_u64("metrics latency cursor")?;
    let m_window = s.get_u64_vec("metrics latency window")?;
    s.expect_exhausted()?;
    let cursor = usize::try_from(m_cursor).map_err(|_| CodecError::Malformed {
        context: "metrics latency cursor",
    })?;
    let metrics = EngineMetrics::from_snapshot(
        m_epochs,
        m_arrivals,
        m_accepted,
        m_rejected,
        m_released,
        m_evicted,
        m_value,
        m_revenue,
        m_refunded,
        m_total_latency,
        cursor,
        m_window,
    )
    .ok_or(CodecError::Malformed {
        context: "metrics invariants",
    })?;

    // Dynamic-topology overlay: replay the stored event log over the
    // base graph (every event re-validated against it), then cross-check
    // the replayed state against the stored (version, fingerprint) pair.
    // A forged log, a forged fingerprint, or a log that does not apply
    // to this graph all fail typed here — the overlay can never restore
    // to a state the snapshot did not pin.
    let mut s = open_section(&mut r, SEC_TOPOLOGY, "topology section")?;
    let topo_version = s.get_u64("topology version")?;
    let topo_fingerprint = s.get_u64("topology fingerprint")?;
    let n = s.get_len("topology event count", 5)?;
    let mut topo_events = Vec::with_capacity(n);
    for _ in 0..n {
        topo_events.push(decode_topology_event(&mut s)?);
    }
    s.expect_exhausted()?;
    let topology = Topology::replay(&graph, &topo_events).map_err(|_| CodecError::Malformed {
        context: "topology event log does not apply to the graph",
    })?;
    if topology.version() != topo_version {
        return Err(CodecError::Malformed {
            context: "topology version disagrees with its event log",
        });
    }
    if topology.fingerprint() != topo_fingerprint {
        return Err(CodecError::Malformed {
            context: "topology fingerprint disagrees with its event log",
        });
    }
    // Now the effective capacities are known: restore the residual
    // tracker over them (not the base capacities) so loads on resized
    // or failed links validate against what the live engine saw.
    let residual = ResidualCaps::import_with_caps(topology.effective_capacities(), loads).ok_or(
        CodecError::Malformed {
            context: "residual loads (length or range)",
        },
    )?;

    // Re-admission queue.
    let mut s = open_section(&mut r, SEC_READMIT, "readmit section")?;
    let n = s.get_len("readmit count", 25)?;
    let mut readmit_queue = Vec::with_capacity(n);
    for _ in 0..n {
        let src = s.get_u32("readmit src")?;
        let dst = s.get_u32("readmit dst")?;
        let demand = s.get_f64("readmit demand")?;
        let value = s.get_f64("readmit value")?;
        if src as usize >= graph.num_nodes() || dst as usize >= graph.num_nodes() || src == dst {
            return Err(CodecError::Malformed {
                context: "readmit endpoints",
            });
        }
        if !(demand.is_finite() && demand > 0.0 && value.is_finite() && value > 0.0) {
            return Err(CodecError::Malformed {
                context: "readmit request (demand/value range)",
            });
        }
        let request = Request {
            src: NodeId(src),
            dst: NodeId(dst),
            demand,
            value,
        };
        let ttl = if s.get_bool("readmit ttl flag")? {
            let t = s.get_u32("readmit ttl")?;
            if t == 0 {
                return Err(CodecError::Malformed {
                    context: "readmit ttl must be at least one epoch",
                });
            }
            Some(t)
        } else {
            None
        };
        readmit_queue.push(Arrival { request, ttl });
    }
    s.expect_exhausted()?;

    // Driver blob.
    let mut s = open_section(&mut r, SEC_DRIVER, "driver section")?;
    let driver = s.rest().to_vec();
    r.expect_exhausted()?;

    let allocator_config = config.allocator_config();
    // Health watermarks are telemetry about a single process's run and
    // are deliberately not in the snapshot: readmission ages restart at
    // the restore epoch, eviction windows start empty.
    let health = crate::health::HealthState::restored(readmit_queue.len(), epoch);
    Ok((
        Engine {
            graph,
            config,
            allocator_config,
            floor,
            residual,
            pending_release_cost: std::time::Duration::ZERO,
            carry,
            requests,
            admissions,
            expiry_index,
            epoch,
            events,
            events_dropped,
            metrics,
            topology,
            readmit_queue,
            health,
        },
        driver,
    ))
}

/// Report of a typed topology migration performed by
/// [`Engine::restore_with_topology`]: the snapshot's overlay was an
/// ancestor of the live one, and the missing event delta was replayed
/// through the normal repair pass (evictions, refunds, re-admission
/// queueing) to bring the restored engine onto the live topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyMigration {
    /// Overlay version stored in the snapshot.
    pub from_version: u64,
    /// Overlay version after replaying the delta (the live version).
    pub to_version: u64,
    /// Admissions evicted by the delta.
    pub evicted: usize,
    /// Payments refunded for those evictions.
    pub refunded: f64,
    /// Evicted flows queued for re-admission in the next epoch.
    pub readmissions: usize,
}

fn check_bits(stored: f64, provided: f64, context: &'static str) -> Result<(), CodecError> {
    if stored.to_bits() != provided.to_bits() {
        return Err(CodecError::ConfigMismatch { context });
    }
    Ok(())
}

/// Inverse of [`encode_event`].
pub fn decode_event(s: &mut Reader<'_>) -> Result<EngineEvent, CodecError> {
    Ok(match s.get_u8("event tag")? {
        0 => EngineEvent::EpochStarted {
            epoch: s.get_u64("event epoch")?,
            arrivals: s.get_u64("event arrivals")? as usize,
        },
        1 => EngineEvent::Admitted {
            epoch: s.get_u64("event epoch")?,
            request: RequestId(s.get_u32("event request")?),
            hops: s.get_u64("event hops")? as usize,
            payment: s.get_f64("event payment")?,
        },
        2 => EngineEvent::Rejected {
            epoch: s.get_u64("event epoch")?,
            request: RequestId(s.get_u32("event request")?),
        },
        3 => EngineEvent::Released {
            epoch: s.get_u64("event epoch")?,
            request: RequestId(s.get_u32("event request")?),
        },
        5 => EngineEvent::Evicted {
            epoch: s.get_u64("event epoch")?,
            request: RequestId(s.get_u32("event request")?),
            refund: s.get_f64("event refund")?,
        },
        4 => EngineEvent::EpochCompleted {
            epoch: s.get_u64("event epoch")?,
            accepted: s.get_u64("event accepted")? as usize,
            rejected: s.get_u64("event rejected")? as usize,
            released: s.get_u64("event released")? as usize,
            value: s.get_f64("event value")?,
            revenue: s.get_f64("event revenue")?,
            stop: decode_stop(s.get_u8("event stop")?)?,
        },
        _ => {
            return Err(CodecError::Malformed {
                context: "event tag",
            })
        }
    })
}

// ---------------------------------------------------------------------
// SnapshotStore.
// ---------------------------------------------------------------------

/// A snapshot recovered by [`SnapshotStore::recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The restored engine, ready to continue from `epoch + 1`.
    pub engine: Engine,
    /// The snapshot's epoch watermark: everything up to and including
    /// this epoch is inside the engine; the caller replays journaled
    /// arrivals for epochs strictly after it.
    pub epoch: u64,
    /// The opaque driver blob saved with the snapshot.
    pub driver: Vec<u8>,
    /// The file that was loaded.
    pub path: PathBuf,
    /// Newer snapshot files that were skipped as unreadable (typically a
    /// file half-written when the process died), with the typed reason.
    pub skipped: Vec<(PathBuf, CodecError)>,
}

/// Directory of epoch-stamped snapshot files, written atomically, paired
/// with the deployment's arrival journal (see the module docs for the
/// recovery model).
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

const SNAPSHOT_EXT: &str = "ufpsnap";

impl SnapshotStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CodecError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical file name for a snapshot at `epoch`.
    pub fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("snap-{epoch:012}.{SNAPSHOT_EXT}"))
    }

    /// Persist a snapshot of `engine` (no driver blob). See
    /// [`SnapshotStore::save_with`].
    pub fn save(&self, engine: &Engine) -> Result<PathBuf, CodecError> {
        self.save_with(engine, &[])
    }

    /// Persist a snapshot of `engine` plus an opaque driver blob,
    /// atomically and durably (see [`write_atomic`]): a crash mid-save
    /// leaves at worst a stale `.tmp` that recovery ignores — never a
    /// torn snapshot under the real name — and a completed save survives
    /// power loss.
    pub fn save_with(&self, engine: &Engine, driver: &[u8]) -> Result<PathBuf, CodecError> {
        let bytes = encode_engine(engine, driver);
        let path = self.path_for(engine.epoch());
        write_atomic(&path, &bytes)?;
        Ok(path)
    }

    /// Every snapshot file present as `(epoch, path)`, ascending by
    /// epoch. The returned paths are the actual directory entries — a
    /// non-canonically named file (say `snap-5.ufpsnap`, hand-copied
    /// from elsewhere) is still found under its real name.
    fn entries(&self) -> Result<Vec<(u64, PathBuf)>, CodecError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("snap-")
                .and_then(|s| s.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
            else {
                continue;
            };
            // Bare digits only: `u64::parse` would also accept a
            // leading `+`, which the canonical writer never emits.
            if !stem.is_empty() && stem.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(epoch) = stem.parse::<u64>() {
                    out.push((epoch, entry.path()));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Epoch watermarks of every snapshot file present, ascending.
    pub fn epochs(&self) -> Result<Vec<u64>, CodecError> {
        let mut epochs: Vec<u64> = self.entries()?.into_iter().map(|(e, _)| e).collect();
        epochs.dedup();
        Ok(epochs)
    }

    /// Restore from the newest loadable snapshot. Unreadable newer files
    /// — truncated or corrupted by a crash mid-write, written by an
    /// unknown format version, or failing the read itself (deleted by a
    /// concurrent retention pass, bad permissions) — are skipped with
    /// their typed reason; graph/config fingerprint mismatches are
    /// *caller* errors and propagate immediately. Returns `Ok(None)`
    /// when the store holds no snapshot at all — the caller then replays
    /// the journal from the beginning.
    pub fn recover(
        &self,
        graph: Arc<Graph>,
        config: EngineConfig,
    ) -> Result<Option<Recovered>, CodecError> {
        let mut skipped = Vec::new();
        for (_, path) in self.entries()?.into_iter().rev() {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push((path, CodecError::Io(e)));
                    continue;
                }
            };
            match decode_engine(&bytes, Arc::clone(&graph), config.clone()) {
                Ok((engine, driver)) => {
                    return Ok(Some(Recovered {
                        epoch: engine.epoch(),
                        engine,
                        driver,
                        path,
                        skipped,
                    }))
                }
                Err(e @ (CodecError::ConfigMismatch { .. } | CodecError::GraphMismatch { .. })) => {
                    return Err(e)
                }
                Err(e) => skipped.push((path, e)),
            }
        }
        Ok(None)
    }
}
