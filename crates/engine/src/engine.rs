//! The streaming admission-control engine.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ufp_core::{
    bounded_ufp_epoch, bounded_ufp_epoch_resume_watch, bounded_ufp_epoch_traced, BoundedUfpConfig,
    EpochContext, EpochOutcome, EpochResumeTrace, Request, RequestId, StopReason, UfpInstance,
    UfpSolution,
};
use ufp_mechanism::{critical_value, critical_value_from_probe};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::EdgeId;
use ufp_netgraph::residual::ResidualCaps;
use ufp_netgraph::topology::{Topology, TopologyError, TopologyEvent};
use ufp_obs::Phase;

use crate::allocator::EpochAllocator;
use crate::codec::CodecError;
use crate::config::{EngineConfig, EventLevel, PaymentPolicy};
use crate::event::EngineEvent;
use crate::health::{run_regret_oracle, HealthState, RegretContext};
use crate::metrics::EngineMetrics;
use crate::snapshot::TopologyMigration;

/// One arriving request, optionally with a lifetime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// The request (normalized demand in `(0, 1]`).
    pub request: Request,
    /// Lifetime in epochs: `Some(k)` releases the admission at the start
    /// of the `k`-th epoch after admission; `None` holds forever.
    pub ttl: Option<u32>,
}

impl Arrival {
    /// A permanent arrival (no expiry).
    pub fn permanent(request: Request) -> Self {
        Arrival { request, ttl: None }
    }

    /// An arrival released after `ttl` epochs.
    pub fn with_ttl(request: Request, ttl: u32) -> Self {
        assert!(ttl >= 1, "ttl must be at least one epoch");
        Arrival {
            request,
            ttl: Some(ttl),
        }
    }
}

/// A committed admission.
#[derive(Clone, Debug)]
pub struct Admission {
    /// Global request id (index into [`Engine::instance`]).
    pub request: RequestId,
    /// The assigned route.
    pub path: ufp_netgraph::path::Path,
    /// Epoch of admission (1-based).
    pub epoch: u64,
    /// Epoch at whose start the admission is released, if any.
    pub expires_at: Option<u64>,
    /// Charged payment.
    pub payment: f64,
    /// Whether the admission has been released.
    pub released: bool,
    /// Whether the release was a topology-repair eviction (the payment
    /// was refunded through the event log). Evicted implies released.
    pub evicted: bool,
}

/// Summary of one [`Engine::apply_topology`] repair pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyReport {
    /// Topology version before the pass.
    pub from_version: u64,
    /// Topology version after the pass (`from_version` + events applied).
    pub to_version: u64,
    /// Admissions evicted by the pass.
    pub evicted: usize,
    /// Payments refunded to evicted admissions.
    pub refunded: f64,
    /// Evicted flows queued for re-admission in the next epoch (those
    /// whose TTL has not already lapsed).
    pub readmissions: usize,
    /// Links down after the pass.
    pub links_down: usize,
}

/// Externally supplied epoch context for [`Engine::plan_epoch`]: a
/// sharded orchestrator's view of the world, replacing the engine's own
/// residual-derived context. All slices are indexed by edge id of the
/// engine's graph.
///
/// Handing every shard the **global** capacities, usable mask, and
/// (already decayed) carry makes each shard's bound `B`, guard sum, and
/// line-10 exponents bit-identical to a single global engine's, while
/// `routable` confines its paths to the territory it holds leases on.
#[derive(Clone, Copy, Debug)]
pub struct EpochOverride<'a> {
    /// Effective capacity per edge (interior: global residual; boundary:
    /// this shard's lease).
    pub capacities: &'a [f64],
    /// Edges participating in `B` and the guard sum.
    pub usable: &'a [bool],
    /// Edges this engine may route over (`None` = all usable edges).
    pub routable: Option<&'a [bool]>,
    /// Carried ln-space dual exponents, already decayed by the caller.
    pub carry: &'a [f64],
}

/// A planned-but-uncommitted epoch, produced by [`Engine::plan_epoch`]
/// and consumed by [`Engine::commit_epoch`]. Holds the frozen epoch
/// context, the allocation outcome, and (for traced runs) the per-step
/// resume trace an orchestrator replays during reconciliation.
#[derive(Debug)]
pub struct EpochPlan {
    epoch: u64,
    started: Instant,
    instance: UfpInstance,
    arrivals: Vec<Arrival>,
    /// First global request id of this batch.
    base: u32,
    /// Admission indices released when the epoch opened.
    released: Vec<usize>,
    outcome: EpochOutcome,
    resume_trace: Option<EpochResumeTrace>,
    ctx_capacities: Vec<f64>,
    ctx_usable: Vec<bool>,
    ctx_routable: Option<Vec<bool>>,
    ctx_carry: Vec<f64>,
}

impl EpochPlan {
    /// The epoch this plan belongs to (1-based).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of planned selection steps (= planned admissions).
    pub fn num_steps(&self) -> usize {
        self.outcome.run.solution.routed.len()
    }

    /// The per-step resume trace (`Some` for traced plans: overridden
    /// contexts always, otherwise per the payment policy).
    pub fn trace(&self) -> Option<&EpochResumeTrace> {
        self.resume_trace.as_ref()
    }

    /// The allocation outcome as planned (before any truncation).
    pub fn outcome(&self) -> &EpochOutcome {
        &self.outcome
    }

    /// Admission indices (into [`Engine::admissions`]) released when
    /// this epoch opened, in release order.
    pub fn released_admissions(&self) -> &[usize] {
        &self.released
    }

    /// The planned batch.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// First global request id assigned to this batch.
    pub fn base_request_id(&self) -> u32 {
        self.base
    }
}

/// Summary of one [`Engine::submit_batch`] call.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Requests in the batch.
    pub arrivals: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Admissions released at the epoch start.
    pub released: usize,
    /// Declared value admitted this epoch.
    pub value_admitted: f64,
    /// Payments charged this epoch.
    pub revenue: f64,
    /// Why the allocation loop ended.
    pub stop: StopReason,
    /// Smallest residual capacity after the epoch.
    pub min_residual: f64,
    /// Total load / total capacity after the epoch.
    pub total_utilization: f64,
    /// Wall-clock time spent in this call.
    pub elapsed: std::time::Duration,
}

/// The long-lived engine. See the crate docs for the epoch / residual
/// model.
///
/// The network is held behind an [`Arc`]: every per-epoch
/// [`UfpInstance`], every payment probe, and every [`Engine::instance`]
/// read-out shares the one graph allocation instead of cloning the CSR.
#[derive(Clone, Debug)]
pub struct Engine {
    pub(crate) graph: Arc<Graph>,
    pub(crate) config: EngineConfig,
    pub(crate) allocator_config: BoundedUfpConfig,
    /// Resolved residual floor (see [`crate::config::ResidualFloor`]).
    pub(crate) floor: f64,
    pub(crate) residual: ResidualCaps,
    /// Dynamic-topology overlay: effective capacities, link state, node
    /// drains, and the event log that produced them. Pristine (version
    /// 0) engines behave exactly as before the overlay existed.
    pub(crate) topology: Topology,
    /// Flows evicted by a topology repair, queued for re-admission:
    /// drained by the driver into the next epoch's batch.
    pub(crate) readmit_queue: Vec<Arrival>,
    /// Wall-clock cost of the most recent [`Engine::open_epoch`]'s TTL
    /// releases, folded into the next plan's latency sample so churn
    /// work keeps counting toward batch latency across the open/plan
    /// split (transient; not snapshotted — restored engines simply
    /// start the next epoch's clock at zero release cost).
    pub(crate) pending_release_cost: std::time::Duration,
    pub(crate) carry: Vec<f64>,
    /// Append-only global request registry.
    pub(crate) requests: Vec<Request>,
    /// All admissions ever made (including released ones).
    pub(crate) admissions: Vec<Admission>,
    /// Live TTL'd admissions indexed by expiry epoch, so releasing is
    /// O(expiring this epoch) instead of a scan over all history.
    pub(crate) expiry_index: std::collections::BTreeMap<u64, Vec<usize>>,
    pub(crate) epoch: u64,
    pub(crate) events: Vec<EngineEvent>,
    /// Events discarded by the retention cap (see
    /// [`EngineConfig::event_capacity`]).
    pub(crate) events_dropped: u64,
    pub(crate) metrics: EngineMetrics,
    /// Auction-health bookkeeping ([`crate::config::HealthConfig`]).
    /// Pure telemetry: never snapshotted, never read by allocation.
    pub(crate) health: HealthState,
}

impl Engine {
    /// Create an engine over `graph`.
    pub fn new(graph: Graph, config: EngineConfig) -> Self {
        Self::from_shared(Arc::new(graph), config)
    }

    /// Create an engine over an already-shared graph. Zero-copy: the
    /// engine keeps the handle, so callers may hold the same graph for
    /// other engines, offline analysis, or workload generation without
    /// any duplication.
    pub fn from_shared(graph: Arc<Graph>, config: EngineConfig) -> Self {
        config.validate();
        let allocator_config = config.allocator_config();
        let floor = config
            .residual_floor
            .resolve(graph.num_edges(), config.epsilon);
        let residual = ResidualCaps::new(&graph);
        let topology = Topology::new(&graph);
        let carry = vec![0.0; graph.num_edges()];
        Engine {
            graph,
            config,
            allocator_config,
            floor,
            residual,
            topology,
            readmit_queue: Vec::new(),
            pending_release_cost: std::time::Duration::ZERO,
            carry,
            requests: Vec::new(),
            admissions: Vec::new(),
            expiry_index: std::collections::BTreeMap::new(),
            epoch: 0,
            events: Vec::new(),
            events_dropped: 0,
            metrics: EngineMetrics::default(),
            health: HealthState::default(),
        }
    }

    /// Append an event, enforcing the retention cap: at
    /// [`EngineConfig::event_capacity`] entries, the oldest half is
    /// rotated out in one amortized-O(1) drain and counted in
    /// [`Engine::events_dropped`].
    fn push_event(&mut self, event: EngineEvent) {
        if self.events.len() >= self.config.event_capacity {
            let drop = self.config.event_capacity / 2;
            self.events.drain(..drop);
            self.events_dropped += drop as u64;
        }
        self.events.push(event);
    }

    /// Process one batch of arrivals as a new epoch: release expired
    /// admissions, allocate with the monotone rule over the residual
    /// network, charge payments, commit routes.
    ///
    /// Equivalent to [`Engine::plan_epoch`] (with no override) followed
    /// by [`Engine::commit_epoch`] keeping every planned admission — the
    /// split exists so an orchestrator (`ufp_shard`) can plan several
    /// engines' epochs in parallel, reconcile them globally, and only
    /// then commit each engine's surviving prefix.
    pub fn submit_batch(&mut self, arrivals: &[Arrival]) -> EpochReport {
        // Bracket the whole epoch for the profile table: open + plan +
        // commit partition this scope, so the recorded phase sum tracks
        // the bracket's wall time (the `--profile` coverage invariant).
        let obs = self.config.obs.clone();
        obs.epoch_begin(self.epoch + 1);
        let plan = self.plan_epoch(arrivals, None);
        // Freeze the regret-oracle inputs (clones of the plan's epoch
        // context) before commit consumes the plan; the oracle itself
        // runs strictly after the epoch bracket closes, so its cost
        // lands under `health.regret_oracle`, not the epoch phases.
        let regret_ctx = RegretContext::capture(
            &self.config.health,
            &obs,
            plan.epoch,
            &plan.ctx_capacities,
            &plan.ctx_usable,
            &plan.arrivals,
        );
        let report = self.commit_epoch(plan, None);
        obs.epoch_end(report.epoch);
        if let Some(ctx) = regret_ctx {
            run_regret_oracle(
                &self.graph,
                &self.config.pool,
                &obs,
                &self.config.health,
                ctx,
                report.value_admitted,
            );
        }
        self.health.epoch_tick(
            &self.config.health,
            &obs,
            report.epoch,
            report.elapsed.as_micros() as u64,
            self.metrics.evicted,
        );
        report
    }

    /// Open a new epoch and run its allocation **without committing**:
    /// expired admissions are released, the batch is registered in the
    /// global request registry, and the monotone allocation runs against
    /// either the engine's own residual view (`overrides: None` — the
    /// classic single-engine epoch) or an externally supplied context
    /// (`overrides: Some` — a sharded orchestrator's global residuals,
    /// usable mask, leased routable territory, and already-decayed
    /// carry). Nothing is charged or committed until
    /// [`Engine::commit_epoch`]; exactly one commit must follow each
    /// plan.
    ///
    /// With an override the run is always traced (the orchestrator's
    /// reconciliation replays the steps); without one, tracing follows
    /// the payment policy as before.
    pub fn plan_epoch(
        &mut self,
        arrivals: &[Arrival],
        overrides: Option<&EpochOverride<'_>>,
    ) -> EpochPlan {
        let released = self.open_epoch(arrivals.len());
        self.plan_epoch_in(arrivals, released, overrides)
    }

    /// Open the next epoch without planning it: advance the epoch
    /// counter, log the `EpochStarted` event, and release expired
    /// admissions, returning their admission indices in release order.
    ///
    /// An orchestrator opens *every* engine's epoch first (so releases
    /// across all shards are visible before any global residual view is
    /// computed), then plans each engine with
    /// [`Engine::plan_epoch_in`]. Exactly one `plan_epoch_in` must
    /// follow each `open_epoch`.
    pub fn open_epoch(&mut self, arrivals: usize) -> Vec<usize> {
        let obs = self.config.obs.clone();
        let _span = obs.span(Phase::EpochOpen);
        let opened = Instant::now();
        self.epoch += 1;
        let epoch = self.epoch;
        // Every epoch opens with a Started event (paired with the
        // unconditional EpochCompleted in commit, so consumers can
        // bracket epochs even when a time-driven trigger submits empty
        // batches).
        self.push_event(EngineEvent::EpochStarted { epoch, arrivals });
        let released = self.release_expired();
        // Churn work belongs to the epoch's latency sample; the next
        // plan backdates its clock by this much (see `plan_epoch_in`),
        // so the open/plan split does not shrink latency metrics
        // relative to the pre-split `submit_batch`.
        self.pending_release_cost = opened.elapsed();
        released
    }

    /// Plan an epoch already opened by [`Engine::open_epoch`] (whose
    /// returned release list is passed back in). See
    /// [`Engine::plan_epoch`] for the semantics.
    pub fn plan_epoch_in(
        &mut self,
        arrivals: &[Arrival],
        released: Vec<usize>,
        overrides: Option<&EpochOverride<'_>>,
    ) -> EpochPlan {
        let obs = self.config.obs.clone();
        let _span = obs.span(Phase::EpochPlan);
        // Backdate by the epoch-open (TTL release) cost so the latency
        // sample covers the same work as the pre-split submit_batch.
        let release_cost = std::mem::take(&mut self.pending_release_cost);
        let now = Instant::now();
        let started = now.checked_sub(release_cost).unwrap_or(now);
        let epoch = self.epoch;

        // 2. Register arrivals globally and build the epoch instance.
        let base = self.requests.len() as u32;
        for a in arrivals {
            assert!(
                a.request.demand <= 1.0 + 1e-12,
                "engine requires normalized demands in (0, 1]"
            );
            self.requests.push(a.request);
        }
        let batch: Vec<Request> = arrivals.iter().map(|a| a.request).collect();
        let instance = UfpInstance::from_shared(Arc::clone(&self.graph), batch);

        // 3. The epoch context, frozen for the whole epoch (allocation
        //    and every payment probe see the same state). Own view:
        //    residuals + decayed carry, as always. Override: the
        //    orchestrator's slices verbatim — the engine's carry is NOT
        //    decayed here (the orchestrator owns the global carry and
        //    hands it in already decayed).
        let (ctx_capacities, ctx_usable, ctx_routable, ctx_carry) = match overrides {
            Some(o) => {
                let m = self.graph.num_edges();
                assert_eq!(o.capacities.len(), m, "override capacities length");
                assert_eq!(o.usable.len(), m, "override usable length");
                assert_eq!(o.carry.len(), m, "override carry length");
                (
                    o.capacities.to_vec(),
                    o.usable.to_vec(),
                    o.routable.map(<[bool]>::to_vec),
                    o.carry.to_vec(),
                )
            }
            None => {
                for k in &mut self.carry {
                    *k *= self.config.carry_decay;
                }
                let capacities = self.residual.residuals();
                let mut usable = self.residual.usable_mask(self.floor);
                // Dynamic topology: down links and drained endpoints
                // accept no *new* admissions. The residual tracker
                // already carries effective capacities (a down link's
                // residual is 0), but the usable mask's empty-edge
                // clause would re-open an unloaded down link without
                // this AND.
                if !self.topology.is_pristine() {
                    for (e, u) in usable.iter_mut().enumerate() {
                        *u = *u && self.topology.available(EdgeId(e as u32));
                    }
                }
                (capacities, usable, None, self.carry.clone())
            }
        };
        let ctx = EpochContext {
            capacities: &ctx_capacities,
            usable: &ctx_usable,
            carry: &ctx_carry,
            routable: ctx_routable.as_deref(),
        };

        // 4. The monotone allocation run — traced when resumed payments
        //    will probe it (so bisection can replay prefixes instead of
        //    re-running them) or when an orchestrator will replay it.
        let traced =
            overrides.is_some() || matches!(self.config.payments, PaymentPolicy::CriticalValue(_));
        let (outcome, resume_trace) = if traced {
            let (o, t) = bounded_ufp_epoch_traced(&instance, &self.allocator_config, Some(&ctx));
            (o, Some(t))
        } else {
            let o = bounded_ufp_epoch(&instance, &self.allocator_config, Some(&ctx));
            (o, None)
        };

        EpochPlan {
            epoch,
            started,
            instance,
            arrivals: arrivals.to_vec(),
            base,
            released,
            outcome,
            resume_trace,
            ctx_capacities,
            ctx_usable,
            ctx_routable,
            ctx_carry,
        }
    }

    /// Commit a planned epoch: charge payments against the plan's frozen
    /// context, commit the surviving routes (loads, admissions, TTL
    /// index, events), and close the epoch's report and metrics.
    ///
    /// `keep: Some(k)` truncates the plan to its first `k` selection
    /// steps before committing — the orchestrator's global guard tripped
    /// mid-merge, so the shard's over-admissions past `k` are rejected
    /// exactly as a globally-aware run would have rejected them (the
    /// kept prefix is reconstructed bit-identically from the resume
    /// trace). `None` commits every planned admission.
    pub fn commit_epoch(&mut self, plan: EpochPlan, keep: Option<usize>) -> EpochReport {
        self.commit_epoch_inner(plan, keep, None)
    }

    /// [`Engine::commit_epoch`], but with the winners' payments supplied
    /// by the caller instead of priced here against the shard-local
    /// trace. This is the deferred-payment commit of a sharded
    /// deployment: the orchestrator merges the shards' traces into the
    /// global step order, prices every surviving winner against that
    /// merged trace ([`Engine::price_winners_against_trace`]), and hands
    /// each shard its slice — so admissions, events, revenue, and
    /// metrics all carry the *global* critical values from the moment
    /// they are recorded (nothing to patch up afterwards, nothing extra
    /// to snapshot).
    ///
    /// `payments` is indexed by batch-local request index (the plan's
    /// arrival order); entries for rejected or truncated requests are
    /// ignored.
    pub fn commit_epoch_with_payments(
        &mut self,
        plan: EpochPlan,
        keep: Option<usize>,
        payments: Vec<f64>,
    ) -> EpochReport {
        assert_eq!(
            payments.len(),
            plan.arrivals.len(),
            "one payment slot per batch arrival"
        );
        self.commit_epoch_inner(plan, keep, Some(payments))
    }

    fn commit_epoch_inner(
        &mut self,
        plan: EpochPlan,
        keep: Option<usize>,
        supplied_payments: Option<Vec<f64>>,
    ) -> EpochReport {
        let obs = self.config.obs.clone();
        let _span = obs.span(Phase::EpochCommit);
        let EpochPlan {
            epoch,
            started,
            instance: epoch_instance,
            arrivals,
            base,
            released,
            mut outcome,
            resume_trace,
            ctx_capacities,
            ctx_usable,
            ctx_routable,
            ctx_carry,
        } = plan;
        assert_eq!(
            epoch, self.epoch,
            "commit_epoch must consume the engine's own latest plan"
        );
        let ctx = EpochContext {
            capacities: &ctx_capacities,
            usable: &ctx_usable,
            carry: &ctx_carry,
            routable: ctx_routable.as_deref(),
        };

        if let Some(k) = keep {
            if k < outcome.run.solution.routed.len() {
                let trace = resume_trace
                    .as_ref()
                    .expect("truncating commit requires a traced plan");
                outcome = trace.prefix_outcome(
                    &epoch_instance,
                    &self.allocator_config,
                    Some(&ctx),
                    k,
                    StopReason::Guard,
                );
            }
        }
        let stop = outcome.run.trace.stop_reason;

        // Payments against the frozen epoch state (truncated winners are
        // simply absent from the solution and pay nothing), unless the
        // caller already priced the winners globally.
        let payments = match supplied_payments {
            Some(p) => p,
            None => self.compute_payments(
                &epoch_instance,
                &outcome.run.solution,
                &ctx,
                resume_trace.as_ref(),
            ),
        };

        // Commit.
        self.carry = outcome.carry;
        let mut accepted = 0usize;
        let mut value_admitted = 0.0f64;
        let mut revenue = 0.0f64;
        let mut admitted_local = vec![false; arrivals.len()];
        for (local, path) in &outcome.run.solution.routed {
            let arrival = &arrivals[local.index()];
            let global = RequestId(base + local.0);
            let payment = payments[local.index()];
            self.residual.commit(path, arrival.request.demand);
            let expires_at = arrival.ttl.map(|t| epoch + t as u64);
            if let Some(expiry) = expires_at {
                self.expiry_index
                    .entry(expiry)
                    .or_default()
                    .push(self.admissions.len());
            }
            self.admissions.push(Admission {
                request: global,
                path: path.clone(),
                epoch,
                expires_at,
                payment,
                released: false,
                evicted: false,
            });
            admitted_local[local.index()] = true;
            accepted += 1;
            value_admitted += arrival.request.value;
            revenue += payment;
            if self.config.events == EventLevel::Request {
                self.push_event(EngineEvent::Admitted {
                    epoch,
                    request: global,
                    hops: path.edges().len(),
                    payment,
                });
            }
        }
        if self.config.events == EventLevel::Request {
            for (local, &admitted) in admitted_local.iter().enumerate() {
                if !admitted {
                    self.push_event(EngineEvent::Rejected {
                        epoch,
                        request: RequestId(base + local as u32),
                    });
                }
            }
        }

        // Full-history feasibility audit: debug builds only, and only
        // while the history is small — the check is O(total admissions)
        // per epoch and would make long debug replays quadratic. The
        // proptest suite covers the property at every epoch boundary.
        #[cfg(debug_assertions)]
        if self.admissions.len() <= 10_000 {
            if self.topology.is_pristine() {
                assert!(
                    self.active_solution()
                        .check_feasible(&self.instance(), false)
                        .is_ok(),
                    "epoch {epoch} violated cumulative feasibility"
                );
            } else {
                // The base-graph check is wrong under mutation (a raise
                // legitimately exceeds the base capacity; a lower must
                // bound tighter): audit against effective capacities.
                assert!(
                    self.verify_active_feasibility().is_ok(),
                    "epoch {epoch} violated effective-capacity feasibility: {:?}",
                    self.verify_active_feasibility()
                );
            }
        }

        let released = released.len();
        let rejected = arrivals.len() - accepted;
        self.push_event(EngineEvent::EpochCompleted {
            epoch,
            accepted,
            rejected,
            released,
            value: value_admitted,
            revenue,
            stop,
        });
        let elapsed = started.elapsed();
        self.metrics.record_batch(
            arrivals.len(),
            accepted,
            released,
            value_admitted,
            revenue,
            elapsed,
        );
        if self.config.obs.is_enabled() {
            self.record_commit_gauges(elapsed);
        }
        EpochReport {
            epoch,
            arrivals: arrivals.len(),
            accepted,
            rejected,
            released,
            value_admitted,
            revenue,
            stop,
            min_residual: self.residual.min_residual(),
            total_utilization: self.residual.total_utilization(),
            elapsed,
        }
    }

    /// Per-epoch domain gauges, recorded only when the recorder is on
    /// (the gauge math itself — a pass over the edges — must not run on
    /// untraced epochs). Edges are grouped into capacity octaves
    /// (`class k` = capacities in `[2^k, 2^{k+1})`), the resolution at
    /// which the paper's regime bound `B` moves: each class's gauge is
    /// its mean utilization, making "which capacity tier is filling up"
    /// a first-class signal.
    fn record_commit_gauges(&self, elapsed: Duration) {
        let obs = &self.config.obs;
        let mut class_used: std::collections::BTreeMap<i32, (f64, f64)> =
            std::collections::BTreeMap::new();
        let residuals = self.residual.residuals();
        for (e, edge) in self.graph.edges().iter().enumerate() {
            let cap = edge.capacity;
            if cap <= 0.0 {
                continue;
            }
            let class = cap.log2().floor() as i32;
            let entry = class_used.entry(class).or_insert((0.0, 0.0));
            entry.0 += (cap - residuals[e]).max(0.0) / cap;
            entry.1 += 1.0;
        }
        for (class, (util_sum, edges)) in class_used {
            obs.gauge_set(&format!("residual.util.c{class}"), util_sum / edges);
        }
        obs.gauge_set(
            "engine.total_utilization",
            self.residual.total_utilization(),
        );
        obs.gauge_set("engine.min_residual", self.residual.min_residual());
        obs.gauge_set("engine.events_dropped", self.events_dropped as f64);
        obs.gauge_set("engine.active_admissions", self.admissions.len() as f64);
        obs.histogram_record("engine.epoch_wall_us", elapsed.as_micros() as u64);
    }

    /// Convenience: submit permanent (no-TTL) requests.
    pub fn submit_requests(&mut self, requests: &[Request]) -> EpochReport {
        let arrivals: Vec<Arrival> = requests.iter().copied().map(Arrival::permanent).collect();
        self.submit_batch(&arrivals)
    }

    /// Release admissions expiring at the current epoch, returning their
    /// admission indices in release order (ascending expiry epoch, then
    /// admission order within it — the deterministic order the expiry
    /// index was built in).
    fn release_expired(&mut self) -> Vec<usize> {
        let epoch = self.epoch;
        let mut released = Vec::new();
        let record = self.config.events == EventLevel::Request;
        while let Some(entry) = self.expiry_index.first_entry() {
            if *entry.key() > epoch {
                break;
            }
            for idx in entry.remove() {
                let adm = &mut self.admissions[idx];
                debug_assert!(!adm.released, "expiry index entry released twice");
                self.residual
                    .release(&adm.path, self.requests[adm.request.index()].demand);
                adm.released = true;
                released.push(idx);
                let request = adm.request;
                if record {
                    self.push_event(EngineEvent::Released { epoch, request });
                }
            }
        }
        released
    }

    // ------------------------------------------------------------------
    // Dynamic topology: mutation + deterministic repair.
    // ------------------------------------------------------------------

    /// Apply a batch of topology mutations between epochs and repair the
    /// engine deterministically:
    ///
    /// 1. every event is validated, then applied to the overlay (all or
    ///    nothing — a rejected event leaves the engine untouched);
    /// 2. edges whose committed load now exceeds their effective
    ///    capacity (a lowered link, or a failed one at capacity zero)
    ///    evict affected active admissions in **(admission-epoch,
    ///    global-id) order** until every surviving edge is feasible —
    ///    each eviction refunds the admission's critical-value payment
    ///    through the event log ([`EngineEvent::Evicted`], recorded at
    ///    every event level so the refund audit never depends on
    ///    verbosity);
    /// 3. evicted flows whose TTL has not lapsed are queued for
    ///    re-admission ([`Engine::drain_readmissions`]) with their
    ///    original absolute expiry preserved;
    /// 4. the residual tracker is **rebuilt from scratch** over the
    ///    effective capacities by re-committing every surviving active
    ///    admission in admission order — so a repaired engine's residual
    ///    state is bit-identical to a fresh tracker on the post-mutation
    ///    network replaying the surviving admissions (no float residue
    ///    from the evictions survives).
    ///
    /// An empty event slice is a strict no-op. Node drains never evict
    /// (they only block new admissions); capacity raises never evict
    /// (they only rebuild the tracker with more headroom).
    pub fn apply_topology(
        &mut self,
        events: &[TopologyEvent],
    ) -> Result<TopologyReport, TopologyError> {
        let obs = self.config.obs.clone();
        let _span = obs.span(Phase::TopologyApply);
        let from_version = self.topology.version();
        for &ev in events {
            self.topology.validate(ev)?;
        }
        if events.is_empty() {
            return Ok(TopologyReport {
                from_version,
                to_version: from_version,
                evicted: 0,
                refunded: 0.0,
                readmissions: 0,
                links_down: self.topology.links_down(),
            });
        }
        for &ev in events {
            self.topology
                .apply(ev)
                .expect("pre-validated event must apply");
        }
        let evict = self.select_evictions();
        Ok(self.finish_repair(from_version, &evict, true))
    }

    /// [`Engine::apply_topology`] with the eviction decision supplied by
    /// the caller instead of scanned locally — the sharded path, where
    /// only the orchestrator sees the *global* per-edge loads (several
    /// shards share a boundary edge) and directs each owner engine to
    /// evict its share. `evict` holds local admission indices in
    /// (admission-epoch, global-id) order; re-admission queueing is the
    /// orchestrator's job (`queue_readmissions: false`) unless the
    /// caller wants the engine-local queue filled.
    pub fn apply_topology_directed(
        &mut self,
        events: &[TopologyEvent],
        evict: &[usize],
        queue_readmissions: bool,
    ) -> Result<TopologyReport, TopologyError> {
        let obs = self.config.obs.clone();
        let _span = obs.span(Phase::TopologyApply);
        let from_version = self.topology.version();
        for &ev in events {
            self.topology.validate(ev)?;
        }
        for &ev in events {
            self.topology
                .apply(ev)
                .expect("pre-validated event must apply");
        }
        Ok(self.finish_repair(from_version, evict, queue_readmissions))
    }

    /// Deterministic eviction scan over the post-mutation overlay:
    /// committed loads are re-derived from the active admissions (in
    /// admission order, the same summation a fresh tracker would do),
    /// then admissions are visited in (admission-epoch, global-id)
    /// order and evicted while they touch a still-violating edge. The
    /// violating set only shrinks as loads drop, so one ordered pass
    /// suffices and the result is independent of scan bookkeeping.
    fn select_evictions(&self) -> Vec<usize> {
        let m = self.graph.num_edges();
        let mut loads = vec![0.0f64; m];
        for a in self.admissions.iter().filter(|a| !a.released) {
            let d = self.requests[a.request.index()].demand;
            for &e in a.path.edges() {
                loads[e.index()] += d;
            }
        }
        let over = |load: f64, cap: f64| load > cap * (1.0 + 1e-9) + 1e-9;
        let mut violating: Vec<bool> = (0..m)
            .map(|e| over(loads[e], self.topology.effective_capacity(EdgeId(e as u32))))
            .collect();
        let mut remaining = violating.iter().filter(|&&v| v).count();
        if remaining == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.admissions.len())
            .filter(|&i| !self.admissions[i].released)
            .collect();
        order.sort_by_key(|&i| (self.admissions[i].epoch, self.admissions[i].request.0));
        let mut evict = Vec::new();
        for i in order {
            if remaining == 0 {
                break;
            }
            let adm = &self.admissions[i];
            if !adm.path.edges().iter().any(|e| violating[e.index()]) {
                continue;
            }
            let d = self.requests[adm.request.index()].demand;
            for &e in adm.path.edges() {
                loads[e.index()] -= d;
                let was = violating[e.index()];
                let now = over(loads[e.index()], self.topology.effective_capacity(e));
                violating[e.index()] = now;
                if was && !now {
                    remaining -= 1;
                }
            }
            evict.push(i);
        }
        evict
    }

    /// Shared tail of both repair entry points: evict + refund, queue
    /// re-admissions, rebuild the residual tracker over the effective
    /// capacities, refresh the repair gauges, and report.
    fn finish_repair(
        &mut self,
        from_version: u64,
        evict: &[usize],
        queue_readmissions: bool,
    ) -> TopologyReport {
        let obs = self.config.obs.clone();
        let epoch = self.epoch;
        let mut refunded = 0.0f64;
        {
            let _span = obs.span_attr(Phase::RepairEvict, "evictions", evict.len() as u64);
            for &i in evict {
                let adm = &mut self.admissions[i];
                debug_assert!(!adm.released, "directed eviction of a released admission");
                adm.released = true;
                adm.evicted = true;
                // Purge the expiry index, or `release_expired` would
                // double-release the slot when the TTL lapses.
                if let Some(exp) = adm.expires_at {
                    if let Some(slots) = self.expiry_index.get_mut(&exp) {
                        slots.retain(|&j| j != i);
                        if slots.is_empty() {
                            self.expiry_index.remove(&exp);
                        }
                    }
                }
                let request = self.admissions[i].request;
                let refund = self.admissions[i].payment;
                refunded += refund;
                self.metrics.evicted += 1;
                self.metrics.refunded += refund;
                // Always logged (not gated on EventLevel::Request): the
                // refund audit must hold at every verbosity.
                self.push_event(EngineEvent::Evicted {
                    epoch,
                    request,
                    refund,
                });
            }
            obs.counter_add("engine.evictions_total", evict.len() as u64);
        }

        let mut readmissions = 0usize;
        if queue_readmissions {
            let _span = obs.span(Phase::RepairReadmit);
            let next_epoch = epoch + 1;
            for &i in evict {
                let adm = &self.admissions[i];
                let request = self.requests[adm.request.index()];
                let arrival = match adm.expires_at {
                    None => Some(Arrival::permanent(request)),
                    // Preserve the absolute expiry epoch; a flow whose
                    // TTL lapses by the next epoch is not re-queued (it
                    // would be released on arrival).
                    Some(exp) if exp > next_epoch => {
                        Some(Arrival::with_ttl(request, (exp - next_epoch) as u32))
                    }
                    Some(_) => None,
                };
                if let Some(a) = arrival {
                    self.readmit_queue.push(a);
                    readmissions += 1;
                }
            }
            self.health.note_readmissions(readmissions, epoch);
        }

        self.rebuild_residual();
        obs.gauge_set("engine.links_down", self.topology.links_down() as f64);
        TopologyReport {
            from_version,
            to_version: self.topology.version(),
            evicted: evict.len(),
            refunded,
            readmissions,
            links_down: self.topology.links_down(),
        }
    }

    /// Rebuild the residual tracker from scratch: effective capacities,
    /// then every surviving active admission committed in admission
    /// order — exactly the additions a fresh engine on the post-mutation
    /// network would perform replaying the surviving admissions, so the
    /// repaired loads are bit-identical to that fresh run by
    /// construction.
    fn rebuild_residual(&mut self) {
        let mut residual = ResidualCaps::with_caps(self.topology.effective_capacities())
            .expect("validated topology capacities are finite and non-negative");
        for a in self.admissions.iter().filter(|a| !a.released) {
            residual.commit(&a.path, self.requests[a.request.index()].demand);
        }
        self.residual = residual;
    }

    /// Drain the re-admission queue: flows evicted by topology repairs,
    /// as arrivals for the next batch (original request, TTL shortened
    /// to preserve the absolute expiry). The driver merges these ahead
    /// of the epoch's scheduled arrivals.
    pub fn drain_readmissions(&mut self) -> Vec<Arrival> {
        self.health.note_drain();
        std::mem::take(&mut self.readmit_queue)
    }

    /// The dynamic-topology overlay (version, event log, fingerprint,
    /// effective capacities).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Audit the active admissions against the **effective** (topology-
    /// aware) capacities: recompute per-edge loads and check every edge
    /// within the feasibility tolerance. This is the post-mutation
    /// replacement for `active_solution().check_feasible(..)`, whose
    /// base-graph capacities are wrong once links have been resized.
    pub fn verify_active_feasibility(&self) -> Result<(), String> {
        let m = self.graph.num_edges();
        let mut loads = vec![0.0f64; m];
        for a in self.admissions.iter().filter(|a| !a.released) {
            let d = self.requests[a.request.index()].demand;
            for &e in a.path.edges() {
                loads[e.index()] += d;
            }
        }
        for (e, &load) in loads.iter().enumerate() {
            let cap = self.topology.effective_capacity(EdgeId(e as u32));
            if load > cap * (1.0 + 1e-9) + 1e-9 {
                return Err(format!(
                    "edge {e} overloaded: load {load} > effective capacity {cap}"
                ));
            }
        }
        Ok(())
    }

    fn compute_payments(
        &self,
        epoch_instance: &UfpInstance,
        solution: &UfpSolution,
        ctx: &EpochContext<'_>,
        resume_trace: Option<&EpochResumeTrace>,
    ) -> Vec<f64> {
        let mut payments = vec![0.0; epoch_instance.num_requests()];
        // Winners in ascending agent order, matching
        // `CriticalValueMechanism::run` for the equivalence tests.
        let mut winners: Vec<usize> = solution.routed.iter().map(|(r, _)| r.index()).collect();
        winners.sort_unstable();
        match self.config.payments {
            PaymentPolicy::None => {}
            PaymentPolicy::CriticalValueNaive(payment_config) => {
                // Reference baseline: every probe reruns the whole epoch.
                let allocator = EpochAllocator {
                    config: &self.allocator_config,
                    capacities: ctx.capacities,
                    usable: ctx.usable,
                    carry: ctx.carry,
                    routable: ctx.routable,
                };
                let full_len = solution.routed.len() as u64;
                for agent in winners {
                    // Naive probes replay the whole epoch: the suffix
                    // attribute is the full step count, which is what
                    // the resumed policy's shrinking suffixes compare
                    // against in a trace viewer.
                    let _span =
                        self.config
                            .obs
                            .span_attr(Phase::PaymentProbe, "suffix_len", full_len);
                    payments[agent] =
                        critical_value(&allocator, epoch_instance, agent, &payment_config);
                }
            }
            PaymentPolicy::CriticalValue(payment_config) => {
                let trace = resume_trace.expect("resumed payments require a traced epoch run");
                // Selection order in the solution equals trace step order
                // (both append once per executed step), giving O(1)
                // winner→step lookup instead of a scan per winner.
                let step_of: std::collections::HashMap<RequestId, usize> = solution
                    .routed
                    .iter()
                    .enumerate()
                    .map(|(step, (rid, _))| (*rid, step))
                    .collect();
                // Probe runs execute *inside* pool workers during the
                // fan-out below. Nested dispatch is deadlock-free since
                // `ufp_par` waits help-first, so the inner allocator may
                // keep the engine's pool; results are unaffected either
                // way — parallel and sequential path fan-outs are
                // bit-identical by `ufp_par`'s ordered reduction.
                let probe_config = self.allocator_config.clone();
                let total_steps = solution.routed.len();
                let resumed: Vec<f64> = self.config.pool.map(&winners, |_, &agent| {
                    let rid = RequestId(agent as u32);
                    let req = *epoch_instance.request(rid);
                    let step = *step_of.get(&rid).expect("winner missing from resume trace");
                    debug_assert_eq!(trace.selection_step(rid), Some(step));
                    // Suffix length = steps the probe may have to replay
                    // past its resume point; late winners probe cheap.
                    let _span = probe_config.obs.span_attr(
                        Phase::PaymentProbe,
                        "suffix_len",
                        (total_steps - step) as u64,
                    );
                    // State at the step that selected this winner: every
                    // probe declares a lower value, so no earlier
                    // selection can change (Lemma 3.4). Selected probes
                    // return a deeper checkpoint — their selection step
                    // under a smaller declared value — which every later
                    // (still smaller) probe resumes from. Membership is
                    // all a probe answers, so the prefix solution/records
                    // are stripped before the per-probe clones.
                    let mut ckpt = trace
                        .checkpoint(epoch_instance, &probe_config, Some(ctx), step)
                        .strip_outcome_state();
                    critical_value_from_probe(req.value, &payment_config, |value| {
                        let probe = epoch_instance.with_declared_type(rid, req.demand, value);
                        match bounded_ufp_epoch_resume_watch(
                            &probe,
                            &probe_config,
                            Some(ctx),
                            ckpt.clone(),
                            rid,
                        ) {
                            Some(deeper) => {
                                ckpt = deeper;
                                true
                            }
                            None => false,
                        }
                    })
                });
                for (&agent, payment) in winners.iter().zip(resumed) {
                    payments[agent] = payment;
                }
            }
        }
        payments
    }

    /// Price winners by critical-value bisection against a
    /// caller-provided trace — the global-payment probe entry point for
    /// sharded deployments. `trace` is an [`EpochResumeTrace`] over
    /// `instance` (typically assembled with
    /// [`EpochResumeTrace::push_step`] from a cross-shard merge), `ctx`
    /// the frozen epoch context it replays under, and each winner comes
    /// with its selection step in that trace. Probes are read-only
    /// replays, so the winners fan out on the engine's `ufp_par` pool,
    /// each under a `payment.probe` span whose `suffix_len` records the
    /// steps past its resume point.
    ///
    /// Policy handling mirrors [`Engine::commit_epoch`]'s shard-local
    /// pass: `PaymentPolicy::None` returns zeros;
    /// `PaymentPolicy::CriticalValue` advances each winner's checkpoint
    /// through the probes' `Some(deeper)` returns (Lemma 3.4
    /// monotonicity, the O(suffix) discipline);
    /// `PaymentPolicy::CriticalValueNaive` answers the *same* probe
    /// sequence from the unadvanced winner-step checkpoint every time —
    /// a from-scratch rerun could not reproduce a merged trace, so the
    /// naive baseline here degrades only resume depth, never answers,
    /// keeping the two policies bit-identical by construction.
    ///
    /// Returns one payment per winner, in `winners` order.
    pub fn price_winners_against_trace(
        &self,
        instance: &UfpInstance,
        ctx: &EpochContext<'_>,
        trace: &EpochResumeTrace,
        winners: &[(RequestId, usize)],
    ) -> Vec<f64> {
        let payment_config = match self.config.payments {
            PaymentPolicy::None => return vec![0.0; winners.len()],
            PaymentPolicy::CriticalValue(pc) | PaymentPolicy::CriticalValueNaive(pc) => pc,
        };
        let advance = matches!(self.config.payments, PaymentPolicy::CriticalValue(_));
        let probe_config = self.allocator_config.clone();
        let total_steps = trace.num_steps();
        self.config.pool.map(winners, |_, &(rid, step)| {
            let req = *instance.request(rid);
            debug_assert_eq!(
                trace.step(step).selected,
                rid,
                "winner step does not match the merged trace"
            );
            let _span = probe_config.obs.span_attr(
                Phase::PaymentProbe,
                "suffix_len",
                (total_steps - step) as u64,
            );
            let mut ckpt = trace
                .checkpoint(instance, &probe_config, Some(ctx), step)
                .strip_outcome_state();
            critical_value_from_probe(req.value, &payment_config, |value| {
                let probe = instance.with_declared_type(rid, req.demand, value);
                match bounded_ufp_epoch_resume_watch(
                    &probe,
                    &probe_config,
                    Some(ctx),
                    ckpt.clone(),
                    rid,
                ) {
                    Some(deeper) => {
                        if advance {
                            ckpt = deeper;
                        }
                        true
                    }
                    None => false,
                }
            })
        })
    }

    // ------------------------------------------------------------------
    // Snapshot / restore.
    // ------------------------------------------------------------------

    /// Serialize the full engine state into a framed snapshot (see
    /// [`crate::snapshot`] for the format). The graph itself is not
    /// included — restore takes it back and verifies it against the
    /// stored fingerprint.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        crate::snapshot::encode_engine(self, &[])
    }

    /// Like [`Engine::snapshot_bytes`], with an opaque caller blob
    /// (driver RNG stream position, trace cursor, …) carried in the
    /// snapshot's driver section.
    pub fn snapshot_bytes_with(&self, driver: &[u8]) -> Vec<u8> {
        crate::snapshot::encode_engine(self, driver)
    }

    /// Write a snapshot to `path` atomically and durably (temp file +
    /// fsync + rename + directory fsync): a crash mid-write can leave a
    /// stale temp file, never a torn snapshot under the real name, and
    /// a completed write survives power loss.
    pub fn snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), CodecError> {
        crate::snapshot::write_atomic(path.as_ref(), &self.snapshot_bytes())
    }

    /// Restore an engine from a snapshot file over the given graph and
    /// configuration. Continuation is **bit-identical**: submitting the
    /// same post-snapshot batches to the restored engine reproduces the
    /// uninterrupted run's epochs, payments, and metrics exactly. Fails
    /// with a typed [`CodecError`] on corruption, truncation, version
    /// skew, or fingerprint mismatch — never panics, never returns a
    /// partially-restored engine.
    pub fn restore_from(
        path: impl AsRef<std::path::Path>,
        graph: Arc<Graph>,
        config: EngineConfig,
    ) -> Result<Engine, CodecError> {
        let bytes = std::fs::read(path)?;
        Self::restore_from_bytes(&bytes, graph, config)
    }

    /// [`Engine::restore_from`] over in-memory bytes.
    pub fn restore_from_bytes(
        bytes: &[u8],
        graph: Arc<Graph>,
        config: EngineConfig,
    ) -> Result<Engine, CodecError> {
        crate::snapshot::decode_engine(bytes, graph, config).map(|(engine, _)| engine)
    }

    /// [`Engine::restore_from_bytes`], additionally returning the opaque
    /// driver blob stored by [`Engine::snapshot_bytes_with`].
    pub fn restore_from_bytes_with_driver(
        bytes: &[u8],
        graph: Arc<Graph>,
        config: EngineConfig,
    ) -> Result<(Engine, Vec<u8>), CodecError> {
        crate::snapshot::decode_engine(bytes, graph, config)
    }

    /// Restore onto a possibly **mutated** topology: the explicit, typed
    /// migration path for snapshots taken before further topology
    /// events were applied.
    ///
    /// The snapshot's stored overlay event log must be a *prefix* of
    /// `target`'s — i.e. the live topology must descend from the
    /// snapshot's by appending events. If it is:
    ///
    /// - identical log → plain restore, `None` migration;
    /// - proper prefix → the missing event delta
    ///   ([`ufp_netgraph::Topology::events_since`]) is replayed through
    ///   the normal repair pass ([`Engine::apply_topology`]) — evicting
    ///   newly infeasible admissions with refunds, queueing
    ///   re-admissions — and the [`TopologyMigration`] report is
    ///   returned.
    ///
    /// Any divergence (the target rewrote history, or belongs to a
    /// different base graph) is a typed [`CodecError::GraphMismatch`] —
    /// never a silent reinterpretation of loads over the wrong
    /// capacities, never a panic.
    pub fn restore_with_topology(
        bytes: &[u8],
        graph: Arc<Graph>,
        config: EngineConfig,
        target: &Topology,
    ) -> Result<(Engine, Option<TopologyMigration>), CodecError> {
        let (mut engine, _) = crate::snapshot::decode_engine(bytes, graph, config)?;
        let stored = engine.topology.log();
        let live = target.log();
        if stored.len() > live.len() || stored != &live[..stored.len()] {
            return Err(CodecError::GraphMismatch {
                context: "snapshot topology is not an ancestor of the live topology",
            });
        }
        if stored.len() == live.len() {
            return Ok((engine, None));
        }
        let delta = target.events_since(engine.topology.version()).to_vec();
        let report = engine
            .apply_topology(&delta)
            .map_err(|_| CodecError::GraphMismatch {
                context: "topology migration delta does not apply to the restored graph",
            })?;
        debug_assert_eq!(engine.topology.fingerprint(), target.fingerprint());
        Ok((
            engine,
            Some(TopologyMigration {
                from_version: report.from_version,
                to_version: report.to_version,
                evicted: report.evicted,
                refunded: report.refunded,
                readmissions: report.readmissions,
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Read-out.
    // ------------------------------------------------------------------

    /// The base network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the base network.
    pub fn shared_graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Running metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The event log accumulated so far.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Drain the event log: returns all retained events and leaves the
    /// log empty. Long-running deployments ship events elsewhere and
    /// call this regularly to keep engine memory bounded; events that
    /// overflow [`EngineConfig::event_capacity`] between drains are
    /// rotated out oldest-first and tallied in
    /// [`Engine::events_dropped`].
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Alias for [`Engine::drain_events`] (the original name).
    pub fn take_events(&mut self) -> Vec<EngineEvent> {
        self.drain_events()
    }

    /// Events discarded by the retention cap since the engine started
    /// (0 unless the log overflowed between drains).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Residual-capacity tracker.
    pub fn residual(&self) -> &ResidualCaps {
        &self.residual
    }

    /// Per-edge utilization histogram over `buckets` bins (see
    /// [`ResidualCaps::utilization_histogram`]).
    pub fn utilization_histogram(&self, buckets: usize) -> Vec<usize> {
        self.residual.utilization_histogram(buckets)
    }

    /// All admissions ever made, including released ones.
    pub fn admissions(&self) -> &[Admission] {
        &self.admissions
    }

    /// The append-only global request registry (cheap slice access —
    /// [`Engine::instance`] clones it).
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests ever registered.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// The whole submitted history as one instance over the base graph;
    /// request ids are global.
    pub fn instance(&self) -> UfpInstance {
        UfpInstance::from_shared(Arc::clone(&self.graph), self.requests.clone())
    }

    /// Every admission ever made, as a solution over [`Engine::instance`].
    /// Feasible against the base capacities whenever no TTL was used
    /// (without churn, cumulative == active).
    pub fn cumulative_solution(&self) -> UfpSolution {
        UfpSolution {
            routed: self
                .admissions
                .iter()
                .map(|a| (a.request, a.path.clone()))
                .collect(),
        }
    }

    /// Currently-held admissions, as a solution over [`Engine::instance`].
    /// Always feasible against the base capacities.
    pub fn active_solution(&self) -> UfpSolution {
        UfpSolution {
            routed: self
                .admissions
                .iter()
                .filter(|a| !a.released)
                .map(|a| (a.request, a.path.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaymentPolicy;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn one_link(cap: f64) -> Graph {
        let mut gb = GraphBuilder::directed(2);
        gb.add_edge(n(0), n(1), cap);
        gb.build()
    }

    fn unit_requests(k: usize, value: impl Fn(usize) -> f64) -> Vec<Request> {
        (0..k)
            .map(|i| Request::new(n(0), n(1), 1.0, value(i)))
            .collect()
    }

    #[test]
    fn single_epoch_routes_and_reports() {
        let mut engine = Engine::new(one_link(100.0), EngineConfig::with_epsilon(0.5));
        let report = engine.submit_requests(&unit_requests(10, |_| 1.0));
        assert_eq!(report.epoch, 1);
        assert_eq!(report.accepted, 10);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.value_admitted, 10.0);
        assert_eq!(report.stop, StopReason::Exhausted);
        assert!(engine
            .cumulative_solution()
            .check_feasible(&engine.instance(), false)
            .is_ok());
        assert_eq!(engine.metrics().acceptance_rate(), 1.0);
    }

    #[test]
    fn capacity_is_consumed_across_epochs() {
        // Capacity 10; three epochs of 8 unit requests each must admit
        // at most 10 in total, and later epochs see less room.
        let mut engine = Engine::new(one_link(10.0), EngineConfig::with_epsilon(1.0));
        let mut total = 0;
        let mut per_epoch = Vec::new();
        for _ in 0..3 {
            let r = engine.submit_requests(&unit_requests(8, |i| 1.0 + i as f64));
            total += r.accepted;
            per_epoch.push(r.accepted);
        }
        assert!(total <= 10, "admitted {total} > capacity 10");
        assert!(
            per_epoch[0] >= per_epoch[2],
            "later epochs can't admit more"
        );
        assert!(engine
            .cumulative_solution()
            .check_feasible(&engine.instance(), false)
            .is_ok());
    }

    #[test]
    fn ttl_release_restores_capacity() {
        // carry_decay 0: isolate the TTL/release mechanics from the
        // congestion-memory throttle (which a default engine keeps).
        let cfg = EngineConfig {
            carry_decay: 0.0,
            ..EngineConfig::with_epsilon(1.0)
        };
        let mut engine = Engine::new(one_link(4.0), cfg);
        // Epoch 1: fill with TTL-1 admissions.
        let arrivals: Vec<Arrival> = unit_requests(4, |_| 2.0)
            .into_iter()
            .map(|r| Arrival::with_ttl(r, 1))
            .collect();
        let r1 = engine.submit_batch(&arrivals);
        assert!(r1.accepted > 0);
        let held = r1.accepted;
        // Epoch 2: previous admissions expire at its start, so the same
        // demand fits again.
        let r2 = engine.submit_requests(&unit_requests(4, |_| 2.0));
        assert_eq!(r2.released, held);
        assert_eq!(r2.accepted, held, "released capacity must be reusable");
        // Active solution stays feasible; cumulative would overcommit the
        // link, which is exactly why releases exist.
        assert!(engine
            .active_solution()
            .check_feasible(&engine.instance(), false)
            .is_ok());
        assert_eq!(engine.metrics().released, held as u64);
    }

    #[test]
    fn below_floor_edge_unfreezes_after_full_release() {
        // Edge capacity (4) sits below the fixed floor (10), so the edge
        // is usable only while effectively empty. Fractional demands
        // leave ~1e-17 load residue after release; the usable mask must
        // treat that as empty or the edge freezes forever.
        let cfg = EngineConfig {
            residual_floor: crate::config::ResidualFloor::Fixed(10.0),
            carry_decay: 0.0,
            ..EngineConfig::with_epsilon(1.0)
        };
        let mut engine = Engine::new(one_link(4.0), cfg);
        let arrivals: Vec<Arrival> = [0.1, 0.2]
            .iter()
            .map(|&d| Arrival::with_ttl(Request::new(n(0), n(1), d, 1.0), 1))
            .collect();
        let r1 = engine.submit_batch(&arrivals);
        assert_eq!(r1.accepted, 2);
        // Epoch 2 releases both; load is now float residue, not 0.0.
        let r2 = engine.submit_batch(&arrivals);
        assert_eq!(r2.released, 2);
        assert_eq!(r2.accepted, 2, "released edge must become usable again");
    }

    #[test]
    fn payments_charged_under_critical_value_policy() {
        let cfg = EngineConfig::with_epsilon(1.0).with_payments(PaymentPolicy::critical_value());
        let mut engine = Engine::new(one_link(2.0), cfg);
        // Two slots, three bids: winners pay, revenue is positive.
        let report = engine.submit_requests(&unit_requests(3, |i| [5.0, 3.0, 2.0][i]));
        assert_eq!(report.accepted, 2);
        assert!(report.revenue > 0.0, "competition must price the slots");
        for adm in engine.admissions() {
            let declared = engine.instance().request(adm.request).value;
            assert!(adm.payment <= declared + 1e-6);
        }
    }

    #[test]
    fn events_trace_the_run() {
        let cfg = EngineConfig {
            events: EventLevel::Request,
            ..EngineConfig::with_epsilon(1.0)
        };
        let mut engine = Engine::new(one_link(2.0), cfg);
        engine.submit_requests(&unit_requests(3, |i| 1.0 + i as f64));
        let events = engine.take_events();
        assert!(matches!(
            events[0],
            EngineEvent::EpochStarted { arrivals: 3, .. }
        ));
        let admitted = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::Admitted { .. }))
            .count();
        let rejected = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::Rejected { .. }))
            .count();
        assert_eq!(admitted + rejected, 3);
        assert!(matches!(
            events.last(),
            Some(EngineEvent::EpochCompleted { .. })
        ));
        assert!(engine.events().is_empty(), "take_events drains");
    }

    #[test]
    fn event_log_rotates_at_capacity() {
        let cfg = EngineConfig {
            events: EventLevel::Request,
            event_capacity: 16,
            ..EngineConfig::with_epsilon(1.0)
        };
        let mut engine = Engine::new(one_link(100.0), cfg);
        for _ in 0..20 {
            engine.submit_requests(&unit_requests(2, |_| 1.0));
        }
        // 20 epochs × 4 events each ≫ capacity 16: oldest half rotates
        // out, newest events survive.
        assert!(engine.events().len() <= 16);
        assert!(engine.events_dropped() > 0);
        let drained = engine.drain_events();
        assert!(drained
            .iter()
            .any(|e| matches!(e, EngineEvent::EpochCompleted { epoch: 20, .. })));
        assert!(engine.events().is_empty(), "drain_events empties the log");
        let total = drained.len() as u64 + engine.events_dropped();
        assert_eq!(total, 80, "retained + dropped must account for all events");
    }

    #[test]
    fn epoch_event_level_skips_per_request_events() {
        // Epoch granularity is the default — a long-lived engine must not
        // grow its log with traffic unless per-request events are opted
        // into.
        let mut engine = Engine::new(one_link(10.0), EngineConfig::with_epsilon(1.0));
        engine.submit_requests(&unit_requests(5, |_| 1.0));
        assert!(engine.events().iter().all(|e| matches!(
            e,
            EngineEvent::EpochStarted { .. } | EngineEvent::EpochCompleted { .. }
        )));
    }

    #[test]
    fn resumed_payments_match_naive_baseline_across_churned_epochs() {
        // Same stream, two payment policies: prefix-resumed bisection
        // must reproduce the naive full-rerun payments bit for bit, on
        // every epoch, including under TTL churn and carried weights.
        let build = |payments: PaymentPolicy| {
            let mut gb = GraphBuilder::directed(4);
            gb.add_edge(n(0), n(1), 9.0);
            gb.add_edge(n(1), n(3), 9.0);
            gb.add_edge(n(0), n(2), 8.0);
            gb.add_edge(n(2), n(3), 8.0);
            Engine::new(
                gb.build(),
                EngineConfig::with_epsilon(0.6).with_payments(payments),
            )
        };
        let mut fast = build(PaymentPolicy::critical_value());
        let mut slow = build(PaymentPolicy::critical_value_naive());
        for e in 0..5 {
            let arrivals: Vec<Arrival> = (0..7)
                .map(|i| {
                    let r = Request::new(
                        n(0),
                        n(3),
                        0.5 + 0.1 * ((e + i) % 4) as f64,
                        1.0 + ((3 * e + i) % 6) as f64,
                    );
                    if i % 2 == 0 {
                        Arrival::with_ttl(r, 1 + (i % 2) as u32)
                    } else {
                        Arrival::permanent(r)
                    }
                })
                .collect();
            let rf = fast.submit_batch(&arrivals);
            let rs = slow.submit_batch(&arrivals);
            assert_eq!(rf.accepted, rs.accepted, "epoch {e}: allocations diverged");
            assert_eq!(
                rf.revenue.to_bits(),
                rs.revenue.to_bits(),
                "epoch {e}: revenue diverged: {} vs {}",
                rf.revenue,
                rs.revenue
            );
        }
        assert_eq!(fast.admissions().len(), slow.admissions().len());
        for (a, b) in fast.admissions().iter().zip(slow.admissions()) {
            assert_eq!(a.request, b.request);
            assert_eq!(
                a.payment.to_bits(),
                b.payment.to_bits(),
                "payment diverged for {:?}: {} vs {}",
                a.request,
                a.payment,
                b.payment
            );
        }
    }

    #[test]
    fn instance_views_share_the_engine_graph() {
        // Zero-copy contract: no epoch or read-out ever deep-copies the
        // network.
        let engine = Engine::new(one_link(4.0), EngineConfig::default());
        assert!(std::ptr::eq(engine.graph(), engine.instance().graph()));
        let shared = std::sync::Arc::clone(engine.shared_graph());
        let other = Engine::from_shared(shared, EngineConfig::default());
        assert!(std::ptr::eq(engine.graph(), other.graph()));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut gb = GraphBuilder::directed(4);
            gb.add_edge(n(0), n(1), 12.0);
            gb.add_edge(n(1), n(3), 12.0);
            gb.add_edge(n(0), n(2), 12.0);
            gb.add_edge(n(2), n(3), 12.0);
            let mut engine = Engine::new(gb.build(), EngineConfig::with_epsilon(0.5));
            for e in 0..4 {
                let reqs: Vec<Request> = (0..6)
                    .map(|i| {
                        Request::new(
                            n(0),
                            n(3),
                            0.5 + 0.1 * (i % 3) as f64,
                            1.0 + ((e + i) % 5) as f64,
                        )
                    })
                    .collect();
                engine.submit_requests(&reqs);
            }
            engine
                .cumulative_solution()
                .routed
                .iter()
                .map(|(r, p)| (r.0, p.nodes().to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_batches_are_cheap_noops() {
        let mut engine = Engine::new(one_link(5.0), EngineConfig::default());
        let r = engine.submit_batch(&[]);
        assert_eq!(r.accepted, 0);
        assert_eq!(r.stop, StopReason::Exhausted);
        assert_eq!(engine.metrics().epochs, 1);
    }
}
