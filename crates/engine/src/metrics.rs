//! Running engine metrics.

use std::time::Duration;

/// Cumulative counters plus per-batch latency series. Counters are
/// deterministic functions of the input stream; latencies are wall-clock
/// and excluded from any determinism guarantee.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Completed epochs.
    pub epochs: u64,
    /// Requests submitted across all batches.
    pub arrivals: u64,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Admissions released by TTL expiry.
    pub released: u64,
    /// Admissions evicted by topology repairs (link failures, capacity
    /// lowers). Evictions are not TTL releases and not rejections —
    /// `accepted + rejected == arrivals` still holds.
    pub evicted: u64,
    /// Total declared value admitted.
    pub value_admitted: f64,
    /// Total payments charged.
    pub revenue: f64,
    /// Total payments refunded to evicted admissions. Net collected
    /// revenue is `revenue - refunded`; the two are kept separate so
    /// the refund audit (Σ refunds == Σ evicted payments, through the
    /// event log) stays checkable.
    pub refunded: f64,
    /// Ring buffer of recent per-batch wall-clock latencies (µs) in
    /// arrival order — bounded so a long-lived engine's metrics stay
    /// O(1) memory; percentiles describe the most recent
    /// [`LATENCY_WINDOW`] batches.
    pub(crate) batch_latency_us: Vec<u64>,
    /// Next write position in the ring buffer.
    pub(crate) latency_cursor: usize,
    /// The same window kept sorted ascending, maintained incrementally
    /// (one binary-searched remove + insert per batch), so percentile
    /// queries are O(1) array lookups instead of clone + sort of the
    /// whole window per query.
    pub(crate) sorted_latency_us: Vec<u64>,
    /// Lifetime sum of batch latencies (µs), for throughput.
    pub(crate) total_latency_us: u64,
}

/// Number of recent batches the latency percentiles cover.
pub const LATENCY_WINDOW: usize = 4096;

impl EngineMetrics {
    /// Record one completed batch. Public so engine-compatible
    /// orchestrators (the sharded engine) can keep their own aggregate
    /// metrics in the same format the per-engine metrics use.
    pub fn record_batch(
        &mut self,
        arrivals: usize,
        accepted: usize,
        released: usize,
        value: f64,
        revenue: f64,
        elapsed: Duration,
    ) {
        self.epochs += 1;
        self.arrivals += arrivals as u64;
        self.accepted += accepted as u64;
        self.rejected += (arrivals - accepted) as u64;
        self.released += released as u64;
        self.value_admitted += value;
        self.revenue += revenue;
        let us = elapsed.as_micros() as u64;
        self.total_latency_us += us;
        if self.batch_latency_us.len() < LATENCY_WINDOW {
            self.batch_latency_us.push(us);
        } else {
            // Window full: the overwritten sample leaves the sorted view.
            let evicted = self.batch_latency_us[self.latency_cursor];
            let at = self.sorted_latency_us.partition_point(|&x| x < evicted);
            debug_assert_eq!(self.sorted_latency_us[at], evicted);
            self.sorted_latency_us.remove(at);
            self.batch_latency_us[self.latency_cursor] = us;
        }
        let at = self.sorted_latency_us.partition_point(|&x| x <= us);
        self.sorted_latency_us.insert(at, us);
        self.latency_cursor = (self.latency_cursor + 1) % LATENCY_WINDOW;
    }

    /// Rebuild metrics from snapshot fields, re-deriving the sorted
    /// latency view (it is a pure function of the ring buffer: the same
    /// multiset, ascending). Returns `None` when the fields violate a
    /// structural invariant, so the snapshot codec can surface a typed
    /// error instead of panicking. Public for the same reason as
    /// [`EngineMetrics::record_batch`]: orchestrator snapshots restore
    /// their aggregate metrics through the identical validation.
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot(
        epochs: u64,
        arrivals: u64,
        accepted: u64,
        rejected: u64,
        released: u64,
        evicted: u64,
        value_admitted: f64,
        revenue: f64,
        refunded: f64,
        total_latency_us: u64,
        latency_cursor: usize,
        batch_latency_us: Vec<u64>,
    ) -> Option<Self> {
        if accepted.checked_add(rejected) != Some(arrivals) {
            return None;
        }
        if batch_latency_us.len() > LATENCY_WINDOW {
            return None;
        }
        let cursor_ok = if batch_latency_us.len() < LATENCY_WINDOW {
            // Still filling: the cursor trails the push count exactly.
            latency_cursor == batch_latency_us.len()
        } else {
            latency_cursor < LATENCY_WINDOW
        };
        if !cursor_ok {
            return None;
        }
        if !value_admitted.is_finite() || !revenue.is_finite() || !refunded.is_finite() {
            return None;
        }
        let mut sorted_latency_us = batch_latency_us.clone();
        sorted_latency_us.sort_unstable();
        Some(EngineMetrics {
            epochs,
            arrivals,
            accepted,
            rejected,
            released,
            evicted,
            value_admitted,
            revenue,
            refunded,
            batch_latency_us,
            latency_cursor,
            sorted_latency_us,
            total_latency_us,
        })
    }

    /// Fraction of all arrivals admitted (0 when nothing arrived).
    pub fn acceptance_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.accepted as f64 / self.arrivals as f64
        }
    }

    /// Latency percentile over the most recent [`LATENCY_WINDOW`]
    /// batches, in microseconds (`p` in `[0, 100]`); `None` before the
    /// first batch. O(1): reads the incrementally-maintained sorted
    /// window directly.
    pub fn latency_percentile_us(&self, p: f64) -> Option<u64> {
        let sorted = &self.sorted_latency_us;
        if sorted.is_empty() {
            return None;
        }
        let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median per-batch latency in microseconds.
    pub fn p50_latency_us(&self) -> Option<u64> {
        self.latency_percentile_us(50.0)
    }

    /// Tail (p99) per-batch latency in microseconds.
    pub fn p99_latency_us(&self) -> Option<u64> {
        self.latency_percentile_us(99.0)
    }

    /// Lifetime sum of per-batch wall-clock latencies in microseconds —
    /// the engine's total time spent inside epochs. Per-shard epoch
    /// timing in sharded deployments reads this straight off each
    /// shard's metrics (one subtraction per reporting interval) instead
    /// of re-aggregating the ring buffer.
    pub fn total_latency_us(&self) -> u64 {
        self.total_latency_us
    }

    /// The raw latency ring buffer in arrival order (at most
    /// [`LATENCY_WINDOW`] entries) with its write cursor — the exact
    /// pair [`EngineMetrics::from_snapshot`] takes back, for callers
    /// that persist metrics outside the engine's own snapshot codec.
    pub fn latency_ring(&self) -> (&[u64], usize) {
        (&self.batch_latency_us, self.latency_cursor)
    }

    /// Wall-clock latency of the most recent batch in microseconds
    /// (`None` before the first batch).
    pub fn last_latency_us(&self) -> Option<u64> {
        if self.batch_latency_us.is_empty() {
            return None;
        }
        let last = (self.latency_cursor + LATENCY_WINDOW - 1) % LATENCY_WINDOW;
        // While the window is still filling, the cursor equals the push
        // count, so the most recent sample sits just below it.
        let idx = if self.batch_latency_us.len() < LATENCY_WINDOW {
            self.batch_latency_us.len() - 1
        } else {
            last
        };
        Some(self.batch_latency_us[idx])
    }

    /// Throughput over all completed batches: requests per second of
    /// engine wall-clock (admitted + rejected both count — admission
    /// control does work for either outcome).
    pub fn requests_per_second(&self) -> Option<f64> {
        if self.total_latency_us == 0 {
            return None;
        }
        Some(self.arrivals as f64 / (self.total_latency_us as f64 / 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = EngineMetrics::default();
        m.record_batch(10, 7, 1, 14.0, 3.5, Duration::from_micros(100));
        m.record_batch(10, 3, 0, 6.0, 0.0, Duration::from_micros(300));
        assert_eq!(m.epochs, 2);
        assert_eq!(m.arrivals, 20);
        assert_eq!(m.accepted, 10);
        assert_eq!(m.rejected, 10);
        assert_eq!(m.released, 1);
        assert_eq!(m.acceptance_rate(), 0.5);
        assert_eq!(m.value_admitted, 20.0);
        assert_eq!(m.revenue, 3.5);
    }

    #[test]
    fn latency_percentiles() {
        let mut m = EngineMetrics::default();
        assert!(m.p50_latency_us().is_none());
        for us in [100u64, 200, 300, 400, 1000] {
            m.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(us));
        }
        assert_eq!(m.p50_latency_us(), Some(300));
        assert_eq!(m.p99_latency_us(), Some(1000));
        assert_eq!(m.latency_percentile_us(0.0), Some(100));
        let rps = m.requests_per_second().unwrap();
        assert!((rps - 5.0 / 0.002).abs() < 1e-6);
    }

    #[test]
    fn percentiles_track_the_sliding_window() {
        // Overfill the window: the sorted view must follow evictions
        // exactly (oldest samples leave as new ones arrive).
        let mut m = EngineMetrics::default();
        for i in 0..(LATENCY_WINDOW + 500) {
            m.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(i as u64));
        }
        // Window now holds exactly 500..LATENCY_WINDOW + 500.
        assert_eq!(m.latency_percentile_us(0.0), Some(500));
        assert_eq!(
            m.latency_percentile_us(100.0),
            Some((LATENCY_WINDOW + 499) as u64)
        );
        assert_eq!(m.p50_latency_us(), Some(500 + 2048));
    }

    #[test]
    fn snapshot_round_trip_preserves_percentiles() {
        let mut m = EngineMetrics::default();
        for i in 0..(LATENCY_WINDOW + 37) {
            m.record_batch(
                2,
                1,
                0,
                1.5,
                0.25,
                Duration::from_micros((i * 7 % 991) as u64),
            );
        }
        let restored = EngineMetrics::from_snapshot(
            m.epochs,
            m.arrivals,
            m.accepted,
            m.rejected,
            m.released,
            m.evicted,
            m.value_admitted,
            m.revenue,
            m.refunded,
            m.total_latency_us,
            m.latency_cursor,
            m.batch_latency_us.clone(),
        )
        .expect("valid snapshot");
        assert_eq!(restored.sorted_latency_us, m.sorted_latency_us);
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                restored.latency_percentile_us(p),
                m.latency_percentile_us(p)
            );
        }
        assert_eq!(restored.revenue.to_bits(), m.revenue.to_bits());
        assert_eq!(
            restored.value_admitted.to_bits(),
            m.value_admitted.to_bits()
        );
        // Restored metrics keep recording identically (same evictions).
        let mut a = m;
        let mut b = restored;
        for i in 0..10u64 {
            a.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(i));
            b.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(i));
        }
        assert_eq!(a.sorted_latency_us, b.sorted_latency_us);
        assert_eq!(a.latency_cursor, b.latency_cursor);
    }

    #[test]
    fn snapshot_rejects_inconsistent_fields() {
        // accepted + rejected must equal arrivals.
        assert!(
            EngineMetrics::from_snapshot(1, 5, 3, 1, 0, 0, 0.0, 0.0, 0.0, 10, 1, vec![10])
                .is_none()
        );
        // Cursor must trail the ring while it is filling.
        assert!(
            EngineMetrics::from_snapshot(1, 1, 1, 0, 0, 0, 0.0, 0.0, 0.0, 10, 5, vec![10])
                .is_none()
        );
        // Over-full window.
        assert!(EngineMetrics::from_snapshot(
            1,
            1,
            1,
            0,
            0,
            0,
            0.0,
            0.0,
            0.0,
            0,
            0,
            vec![0; LATENCY_WINDOW + 1]
        )
        .is_none());
        // Non-finite accounting.
        assert!(EngineMetrics::from_snapshot(
            1,
            1,
            1,
            0,
            0,
            0,
            f64::NAN,
            0.0,
            0.0,
            10,
            1,
            vec![10]
        )
        .is_none());
        assert!(EngineMetrics::from_snapshot(
            1,
            1,
            1,
            0,
            0,
            0,
            0.0,
            0.0,
            f64::INFINITY,
            10,
            1,
            vec![10]
        )
        .is_none());
        assert!(
            EngineMetrics::from_snapshot(1, 1, 1, 0, 0, 0, 0.0, 0.0, 0.0, 10, 1, vec![10])
                .is_some()
        );
    }

    #[test]
    fn empty_window_has_no_percentiles() {
        let m = EngineMetrics::default();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert!(m.latency_percentile_us(p).is_none());
        }
        assert!(m.p50_latency_us().is_none());
        assert!(m.p99_latency_us().is_none());
        assert!(m.last_latency_us().is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut m = EngineMetrics::default();
        m.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(777));
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(m.latency_percentile_us(p), Some(777));
        }
        assert_eq!(m.last_latency_us(), Some(777));
        assert_eq!(m.sorted_latency_us, vec![777]);
    }

    #[test]
    fn exact_ring_wrap_at_latency_window() {
        // Fill to exactly LATENCY_WINDOW: the cursor wraps to 0 and the
        // window is complete with no eviction yet.
        let mut m = EngineMetrics::default();
        for i in 0..LATENCY_WINDOW {
            m.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(i as u64));
        }
        assert_eq!(m.batch_latency_us.len(), LATENCY_WINDOW);
        assert_eq!(m.latency_cursor, 0);
        assert_eq!(m.latency_percentile_us(0.0), Some(0));
        assert_eq!(
            m.latency_percentile_us(100.0),
            Some((LATENCY_WINDOW - 1) as u64)
        );
        assert_eq!(m.last_latency_us(), Some((LATENCY_WINDOW - 1) as u64));
        // The very next record evicts exactly the oldest sample (0).
        m.record_batch(
            1,
            1,
            0,
            1.0,
            0.0,
            Duration::from_micros(LATENCY_WINDOW as u64),
        );
        assert_eq!(m.sorted_latency_us.len(), LATENCY_WINDOW);
        assert_eq!(m.latency_cursor, 1);
        assert_eq!(m.latency_percentile_us(0.0), Some(1));
        assert_eq!(m.latency_percentile_us(100.0), Some(LATENCY_WINDOW as u64));
    }

    #[test]
    fn sorted_window_invariant_survives_from_snapshot() {
        // A restored metrics object must keep its incrementally
        // maintained sorted view equal to a fresh sort of the ring
        // buffer as recording continues through wrap-around (duplicate
        // values included, to exercise the tie-handling insert/remove).
        let mut m = EngineMetrics::default();
        for i in 0..(LATENCY_WINDOW - 3) {
            m.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros((i % 17) as u64));
        }
        let mut restored = EngineMetrics::from_snapshot(
            m.epochs,
            m.arrivals,
            m.accepted,
            m.rejected,
            m.released,
            m.evicted,
            m.value_admitted,
            m.revenue,
            m.refunded,
            m.total_latency_us,
            m.latency_cursor,
            m.batch_latency_us.clone(),
        )
        .expect("valid snapshot");
        for i in 0..20u64 {
            restored.record_batch(1, 1, 0, 1.0, 0.0, Duration::from_micros(i % 5));
            let mut expect = restored.batch_latency_us.clone();
            expect.sort_unstable();
            assert_eq!(restored.sorted_latency_us, expect, "after record {i}");
        }
    }

    #[test]
    fn empty_rates() {
        let m = EngineMetrics::default();
        assert_eq!(m.acceptance_rate(), 0.0);
        assert!(m.requests_per_second().is_none());
    }
}
