//! Observability non-perturbation: a fully traced engine run must be
//! **bit-identical** to an untraced one on every deterministic output —
//! admissions, paths, payments, events, residuals, carry. The recorder
//! is out-of-band by contract (`ufp_obs` crate docs); this test enforces
//! the contract at the engine layer, complementing the CI smoke job that
//! byte-diffs `engine_sim --json` documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::Request;
use ufp_engine::{Arrival, Engine, EngineConfig, HealthConfig, PaymentPolicy};
use ufp_netgraph::generators;
use ufp_netgraph::ids::NodeId;
use ufp_obs::{Phase, Recorder};

/// Every health subsystem on, sampling every epoch — the configuration
/// the bit-identity contract must hold under.
fn full_health() -> HealthConfig {
    HealthConfig {
        regret_every: 1,
        slo_us: 500,
        starvation_epochs: 1,
        eviction_storm_threshold: 0.5,
        ..HealthConfig::default()
    }
}

fn assert_same_deterministic_outputs(plain: &Engine, other: &Engine) {
    assert_eq!(plain.epoch(), other.epoch());
    assert_eq!(plain.admissions().len(), other.admissions().len());
    for (a, b) in plain.admissions().iter().zip(other.admissions()) {
        assert_eq!(a.request, b.request);
        assert_eq!(a.path.edges(), b.path.edges());
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.expires_at, b.expires_at);
        assert_eq!(a.payment.to_bits(), b.payment.to_bits());
        assert_eq!(a.released, b.released);
    }
    assert_eq!(plain.events().len(), other.events().len());
    for (r, s) in plain
        .residual()
        .residuals()
        .iter()
        .zip(other.residual().residuals())
    {
        assert_eq!(r.to_bits(), s.to_bits());
    }
    assert_eq!(
        plain.metrics().value_admitted.to_bits(),
        other.metrics().value_admitted.to_bits()
    );
    assert_eq!(
        plain.metrics().revenue.to_bits(),
        other.metrics().revenue.to_bits()
    );
}

fn replay(config: EngineConfig) -> Engine {
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::gnm_digraph(40, 160, (20.0, 40.0), &mut rng);
    let mut engine = Engine::new(graph, config);
    for _ in 0..6 {
        let batch: Vec<Arrival> = (0..30)
            .map(|_| {
                let src = NodeId(rng.random_range(0..40u32));
                let mut dst = NodeId(rng.random_range(0..40u32));
                if dst == src {
                    dst = NodeId((dst.0 + 1) % 40);
                }
                let req = Request::new(
                    src,
                    dst,
                    rng.random_range(0.2..=1.0),
                    rng.random_range(0.5..4.0),
                );
                if rng.random_bool(0.5) {
                    Arrival::with_ttl(req, rng.random_range(1..4))
                } else {
                    Arrival::permanent(req)
                }
            })
            .collect();
        engine.submit_batch(&batch);
    }
    engine
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let base = EngineConfig::with_epsilon(0.7).with_payments(PaymentPolicy::critical_value());
    let obs = Recorder::enabled();
    let plain = replay(base.clone());
    let traced = replay(base.with_obs(obs.clone()));

    // Every deterministic output matches bit for bit.
    assert_same_deterministic_outputs(&plain, &traced);

    // And the recorder actually observed the run: epoch brackets with
    // the open/plan/commit trio, selection activity, payment probes,
    // and the engine's domain gauges.
    let snap = obs.snapshot().expect("enabled recorder snapshots");
    assert_eq!(snap.profiles.len(), 6);
    for stage in [Phase::EpochOpen, Phase::EpochPlan, Phase::EpochCommit] {
        assert_eq!(snap.phase_hits[stage.index()], 6, "{}", stage.name());
    }
    assert!(snap.phase_hits[Phase::SelectionDijkstra.index()] > 0);
    assert!(snap.phase_hits[Phase::PaymentProbe.index()] > 0);
    let gauge_names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "core.guard_slack",
        "core.dual_weight_max_ln_y",
        "engine.total_utilization",
        "engine.min_residual",
    ] {
        assert!(gauge_names.contains(&expected), "missing gauge {expected}");
    }
    // Every profile's epoch-stage coverage is a sane fraction.
    for p in &snap.profiles {
        let c = p.coverage();
        assert!((0.0..=1.5).contains(&c), "coverage {c} out of range");
    }
}

/// PR 10's extension of the contract: the auction-health layer (regret
/// oracle sampling every epoch, SLO, starvation, storm watermarks) must
/// be as invisible to the run as plain tracing is.
#[test]
fn health_on_run_is_bit_identical_to_health_off() {
    let base = EngineConfig::with_epsilon(0.7).with_payments(PaymentPolicy::critical_value());
    let obs = Recorder::enabled();
    let plain = replay(base.clone());
    let healthy = replay(base.with_obs(obs.clone()).with_health(full_health()));

    assert_same_deterministic_outputs(&plain, &healthy);

    // The oracle ran out of band: one sample per epoch, each attached
    // to its profile, each a valid competitiveness certificate, and all
    // of its wall-clock outside the epoch bracket.
    let snap = obs.snapshot().expect("enabled recorder snapshots");
    assert_eq!(snap.profiles.len(), 6);
    assert_eq!(snap.phase_hits[Phase::HealthRegretOracle.index()], 6);
    for p in &snap.profiles {
        let sample = p.regret.expect("sampled every epoch");
        assert!(sample.ratio >= 0.0 && sample.ratio <= 1.0, "{sample:?}");
        if sample.fractional_bound > 0.0 {
            assert!(
                sample.online_value <= sample.fractional_bound * (1.0 + 1e-9) + 1e-9,
                "online beat the offline fractional bound: {sample:?}"
            );
        }
        assert!(sample.duality_gap >= -1e-9, "{sample:?}");
        // The oracle phase is not an epoch stage, so coverage stays a
        // fraction of the bracket even with the solve running.
        let c = p.coverage();
        assert!((0.0..=1.5).contains(&c), "coverage {c} out of range");
    }
    let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    assert!(counters.contains(&"health.regret_samples_total"));
}

/// The regret sample on a hand-checkable fixture agrees with a direct
/// `solve_fractional_ufp` call on the same instance: one link of
/// capacity 2 and three unit-demand requests worth 5, 3, and 2 — the
/// offline fractional optimum is 8 (the two most valuable), and the
/// online run can admit at most value 8 of the three.
#[test]
fn regret_sample_matches_hand_checked_fractional_bound() {
    use ufp_lp::{solve_fractional_ufp, Commodity};
    use ufp_netgraph::graph::GraphBuilder;

    let mut gb = GraphBuilder::directed(2);
    gb.add_edge(NodeId(0), NodeId(1), 2.0);
    let graph = std::sync::Arc::new(gb.build());

    let health = HealthConfig {
        regret_every: 1,
        ..HealthConfig::default()
    };
    let obs = Recorder::enabled();
    let config = EngineConfig::with_epsilon(0.7)
        .with_obs(obs.clone())
        .with_health(health);
    let mut engine = Engine::from_shared(graph.clone(), config);
    let values = [5.0, 3.0, 2.0];
    let batch: Vec<Arrival> = values
        .iter()
        .map(|&v| Arrival::permanent(Request::new(NodeId(0), NodeId(1), 1.0, v)))
        .collect();
    let report = engine.submit_batch(&batch);

    let snap = obs.snapshot().unwrap();
    let sample = snap.profiles[0].regret.expect("epoch 1 is sampled");

    // The same bound, computed directly with the oracle's parameters.
    let commodities: Vec<Commodity> = values
        .iter()
        .map(|&v| Commodity {
            src: NodeId(0),
            dst: NodeId(1),
            demand: 1.0,
            value: v,
        })
        .collect();
    let direct = solve_fractional_ufp(
        &graph,
        &commodities,
        health.regret_epsilon,
        health.regret_max_iterations,
    );
    assert!(
        (sample.fractional_bound - direct.upper_bound).abs() <= 1e-9 * direct.upper_bound,
        "oracle bound {} vs direct bound {}",
        sample.fractional_bound,
        direct.upper_bound
    );
    // Hand check: OPT_frac = 8, and the Garg–Könemann upper bound is
    // within its (1+ε)-ish slack of it.
    assert!(direct.value <= 8.0 + 1e-6);
    assert!(sample.fractional_bound >= 8.0 - 1e-6);
    assert!(sample.fractional_bound <= 8.0 * (1.0 + 3.0 * health.regret_epsilon));
    // Online never beats the offline relaxation.
    assert_eq!(sample.online_value, report.value_admitted);
    assert!(sample.online_value <= sample.fractional_bound + 1e-9);
    assert!(sample.ratio <= 1.0);
    assert_eq!(sample.commodities, 3);
}
