//! Observability non-perturbation: a fully traced engine run must be
//! **bit-identical** to an untraced one on every deterministic output —
//! admissions, paths, payments, events, residuals, carry. The recorder
//! is out-of-band by contract (`ufp_obs` crate docs); this test enforces
//! the contract at the engine layer, complementing the CI smoke job that
//! byte-diffs `engine_sim --json` documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::Request;
use ufp_engine::{Arrival, Engine, EngineConfig, PaymentPolicy};
use ufp_netgraph::generators;
use ufp_netgraph::ids::NodeId;
use ufp_obs::{Phase, Recorder};

fn replay(config: EngineConfig) -> Engine {
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generators::gnm_digraph(40, 160, (20.0, 40.0), &mut rng);
    let mut engine = Engine::new(graph, config);
    for _ in 0..6 {
        let batch: Vec<Arrival> = (0..30)
            .map(|_| {
                let src = NodeId(rng.random_range(0..40u32));
                let mut dst = NodeId(rng.random_range(0..40u32));
                if dst == src {
                    dst = NodeId((dst.0 + 1) % 40);
                }
                let req = Request::new(
                    src,
                    dst,
                    rng.random_range(0.2..=1.0),
                    rng.random_range(0.5..4.0),
                );
                if rng.random_bool(0.5) {
                    Arrival::with_ttl(req, rng.random_range(1..4))
                } else {
                    Arrival::permanent(req)
                }
            })
            .collect();
        engine.submit_batch(&batch);
    }
    engine
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let base = EngineConfig::with_epsilon(0.7).with_payments(PaymentPolicy::critical_value());
    let obs = Recorder::enabled();
    let plain = replay(base.clone());
    let traced = replay(base.with_obs(obs.clone()));

    // Every deterministic output matches bit for bit.
    assert_eq!(plain.epoch(), traced.epoch());
    assert_eq!(plain.admissions().len(), traced.admissions().len());
    for (a, b) in plain.admissions().iter().zip(traced.admissions()) {
        assert_eq!(a.request, b.request);
        assert_eq!(a.path.edges(), b.path.edges());
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.expires_at, b.expires_at);
        assert_eq!(a.payment.to_bits(), b.payment.to_bits());
        assert_eq!(a.released, b.released);
    }
    assert_eq!(plain.events().len(), traced.events().len());
    assert_eq!(
        plain.residual().residuals().len(),
        traced.residual().residuals().len()
    );
    for (r, s) in plain
        .residual()
        .residuals()
        .iter()
        .zip(traced.residual().residuals())
    {
        assert_eq!(r.to_bits(), s.to_bits());
    }
    assert_eq!(
        plain.metrics().value_admitted.to_bits(),
        traced.metrics().value_admitted.to_bits()
    );
    assert_eq!(
        plain.metrics().revenue.to_bits(),
        traced.metrics().revenue.to_bits()
    );

    // And the recorder actually observed the run: epoch brackets with
    // the open/plan/commit trio, selection activity, payment probes,
    // and the engine's domain gauges.
    let snap = obs.snapshot().expect("enabled recorder snapshots");
    assert_eq!(snap.profiles.len(), 6);
    for stage in [Phase::EpochOpen, Phase::EpochPlan, Phase::EpochCommit] {
        assert_eq!(snap.phase_hits[stage.index()], 6, "{}", stage.name());
    }
    assert!(snap.phase_hits[Phase::SelectionDijkstra.index()] > 0);
    assert!(snap.phase_hits[Phase::PaymentProbe.index()] > 0);
    let gauge_names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "core.guard_slack",
        "core.dual_weight_max_ln_y",
        "engine.total_utilization",
        "engine.min_residual",
    ] {
        assert!(gauge_names.contains(&expected), "missing gauge {expected}");
    }
    // Every profile's epoch-stage coverage is a sane fraction.
    for p in &snap.profiles {
        let c = p.coverage();
        assert!((0.0..=1.5).contains(&c), "coverage {c} out of range");
    }
}
