//! Property-based coverage of the dynamic-topology repair pass — the
//! four contracts of the dynamic-topology PR:
//!
//! * **(a) Residual feasibility** — after *any* interleaving of churned
//!   arrival batches and topology mutations (flaps, resizes, outages,
//!   drains), the active admissions fit within every surviving edge's
//!   effective capacity.
//! * **(b) Refund balance** — evicted-flow refunds logged through the
//!   event stream balance the collected payments exactly: the multiset
//!   of `Evicted` refunds equals the multiset of evicted admissions'
//!   payments (bit-for-bit), and `metrics.refunded` is their ordered
//!   sum.
//! * **(c) Repair = fresh tracker** — immediately after a repair pass,
//!   the engine's residual state is bit-identical to a *fresh*
//!   capacity tracker on the post-mutation network replaying the
//!   surviving admissions in admission order (no float residue from
//!   the evicted flows survives).
//! * **(d) Snapshot → typed migration → lockstep** — a snapshot taken
//!   before a mutation burst restores onto the mutated topology via an
//!   explicit [`Engine::restore_with_topology`] migration, after which
//!   the restored engine re-serializes to the original's exact snapshot
//!   bytes and continues in lockstep on any continuation stream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use ufp_core::Request;
use ufp_engine::{
    Arrival, Engine, EngineConfig, EngineEvent, PaymentPolicy, ResidualFloor, TopologyEvent,
};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::residual::ResidualCaps;
use ufp_netgraph::{bfs, generators};
use ufp_workloads::failures::{failure_trace, DrainWindow, FailureTraceConfig};

/// Random small network plus connected requests (normalized demands) —
/// the same scenario family as the engine equivalence proptests.
fn arb_scenario() -> impl Strategy<Value = (Graph, Vec<Request>, f64)> {
    (3usize..8, 6usize..18, any::<u64>(), 1usize..10).prop_map(|(n, requests, seed, eps_decile)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_edges = n * (n - 1);
        let m = (max_edges / 2).clamp(2, max_edges);
        let cap = 3.0 + (seed % 9) as f64;
        let graph = generators::gnm_digraph(n, m, (cap, cap * 2.0), &mut rng);
        let mut reqs = Vec::new();
        let mut attempts = 0;
        while reqs.len() < requests && attempts < 2000 {
            attempts += 1;
            let src = NodeId(rng.random_range(0..n as u32));
            let dst = NodeId(rng.random_range(0..n as u32));
            if src == dst || !bfs::is_reachable(&graph, src, dst) {
                continue;
            }
            reqs.push(Request::new(
                src,
                dst,
                rng.random_range(0.3..=1.0),
                rng.random_range(0.5..4.0),
            ));
        }
        let epsilon = 0.1 * eps_decile as f64;
        (graph, reqs, epsilon)
    })
}

/// Churned batches of 3 with alternating TTLs, as in the snapshot suite.
fn churned_batches(requests: &[Request], ttl: u32) -> Vec<Vec<Arrival>> {
    requests
        .chunks(3)
        .enumerate()
        .map(|(i, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, &r)| {
                    if (i + j) % 2 == 0 {
                        Arrival::with_ttl(r, ttl)
                    } else {
                        Arrival::permanent(r)
                    }
                })
                .collect()
        })
        .collect()
}

/// A busy per-epoch mutation trace sized to the batch count: flaps,
/// shrink-biased resizes (shrinks force evictions), regional outages,
/// and one planned drain window.
fn mutation_trace(graph: &Graph, epochs: usize, seed: u64) -> Vec<Vec<TopologyEvent>> {
    failure_trace(
        graph,
        &FailureTraceConfig {
            epochs: epochs as u32,
            seed,
            flap_rate: 0.8,
            flap_down_epochs: 2,
            resize_rate: 0.8,
            resize_range: (0.3, 1.2),
            outage_rate: 0.2,
            outage_radius: 1,
            outage_down_epochs: 2,
            drains: vec![DrainWindow {
                node: NodeId(0),
                start: 1,
                duration: 2,
            }],
        },
    )
}

fn repair_config(epsilon: f64, payments: PaymentPolicy) -> EngineConfig {
    EngineConfig {
        residual_floor: ResidualFloor::Permissive,
        ..EngineConfig::with_epsilon(epsilon).with_payments(payments)
    }
}

/// One admission flattened to comparable primitives.
type AdmissionState = (u32, Vec<u32>, u64, Option<u64>, u64, bool, bool);

fn full_observable(engine: &Engine) -> Vec<AdmissionState> {
    engine
        .admissions()
        .iter()
        .map(|a| {
            (
                a.request.0,
                a.path.nodes().iter().map(|n| n.0).collect(),
                a.epoch,
                a.expires_at,
                a.payment.to_bits(),
                a.released,
                a.evicted,
            )
        })
        .collect()
}

/// An arrival flattened to comparable primitives.
fn arrival_key(a: &Arrival) -> (u32, u32, u64, u64, Option<u32>) {
    (
        a.request.src.0,
        a.request.dst.0,
        a.request.demand.to_bits(),
        a.request.value.to_bits(),
        a.ttl,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) + (c): any interleaving of churned batches and mutations
    /// keeps the active admissions feasible on every surviving edge's
    /// effective capacity, and right after each repair pass the residual
    /// tracker is bit-identical to a fresh tracker on the post-mutation
    /// capacities replaying the surviving admissions in admission order.
    #[test]
    fn repair_keeps_feasibility_and_matches_fresh_tracker(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        fail_seed in any::<u64>(),
    ) {
        let mut engine = Engine::new(
            graph.clone(),
            repair_config(epsilon, PaymentPolicy::critical_value()),
        );
        let batches = churned_batches(&requests, ttl);
        let mutations = mutation_trace(&graph, batches.len(), fail_seed);
        for (events, batch) in mutations.iter().zip(&batches) {
            if !events.is_empty() {
                engine.apply_topology(events).expect("generated trace applies");

                // (c) Fresh tracker on the post-mutation capacities,
                // replaying the surviving admissions in admission order.
                let mut fresh =
                    ResidualCaps::with_caps(engine.topology().effective_capacities())
                        .expect("effective capacities are non-negative");
                let instance = engine.instance();
                for adm in engine.admissions().iter().filter(|a| !a.released) {
                    fresh.commit(&adm.path, instance.request(adm.request).demand);
                }
                let fresh_loads: Vec<u64> =
                    fresh.loads().iter().map(|l| l.to_bits()).collect();
                let engine_loads: Vec<u64> =
                    engine.residual().loads().iter().map(|l| l.to_bits()).collect();
                prop_assert_eq!(fresh_loads, engine_loads, "repaired residual diverged");
            }
            // (a) Feasible right after the repair pass...
            prop_assert!(engine.verify_active_feasibility().is_ok(),
                "infeasible after repair: {:?}", engine.verify_active_feasibility());
            // ...and after admitting the next batch (survivors of past
            // repairs rejoin ahead of the scheduled arrivals).
            let mut merged = engine.drain_readmissions();
            merged.extend(batch.iter().cloned());
            engine.submit_batch(&merged);
            prop_assert!(engine.verify_active_feasibility().is_ok(),
                "infeasible after epoch: {:?}", engine.verify_active_feasibility());
        }
    }

    /// (b) Refund balance: `Evicted` events refund exactly the payments
    /// charged at admission — as a multiset, bit for bit — and the
    /// metrics counters are their ordered aggregate.
    #[test]
    fn eviction_refunds_balance_collected_payments(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        fail_seed in any::<u64>(),
    ) {
        let mut engine = Engine::new(
            graph.clone(),
            repair_config(epsilon, PaymentPolicy::critical_value()),
        );
        let batches = churned_batches(&requests, ttl);
        let mutations = mutation_trace(&graph, batches.len(), fail_seed);
        for (events, batch) in mutations.iter().zip(&batches) {
            if !events.is_empty() {
                engine.apply_topology(events).expect("generated trace applies");
            }
            let mut merged = engine.drain_readmissions();
            merged.extend(batch.iter().cloned());
            engine.submit_batch(&merged);
        }

        // Refunds drawn from the event log (evictions are logged at
        // every event level, so the audit is verbosity-independent).
        let mut logged: Vec<(u32, u64)> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                EngineEvent::Evicted { request, refund, .. } => {
                    Some((request.0, refund.to_bits()))
                }
                _ => None,
            })
            .collect();
        // The ordered sum reproduces the metrics accumulator exactly
        // (explicit fold from +0.0: `iter::sum` seeds with -0.0, which
        // diverges in the last bit on all-negative-zero refunds).
        let refund_sum: f64 = logged
            .iter()
            .fold(0.0, |acc, &(_, bits)| acc + f64::from_bits(bits));
        let metrics = engine.metrics();
        prop_assert_eq!(metrics.evicted as usize, logged.len());
        prop_assert_eq!(
            refund_sum.to_bits(), metrics.refunded.to_bits(),
            "metrics.refunded diverged from the event log: {} vs {}",
            refund_sum, metrics.refunded
        );

        // And the refunds balance the charged payments, admission by
        // admission.
        let mut charged: Vec<(u32, u64)> = engine
            .admissions()
            .iter()
            .filter(|a| a.evicted)
            .map(|a| (a.request.0, a.payment.to_bits()))
            .collect();
        logged.sort_unstable();
        charged.sort_unstable();
        prop_assert_eq!(logged, charged, "refunds do not balance payments");
        // Evicted implies released, and every eviction released capacity.
        for a in engine.admissions().iter().filter(|a| a.evicted) {
            prop_assert!(a.released, "evicted admission left active");
        }
    }

    /// (d) A snapshot taken before a mutation burst restores onto the
    /// mutated topology through an explicit typed migration, after which
    /// the restored engine re-serializes to the original's exact bytes
    /// and continues in lockstep on the rest of the stream.
    #[test]
    fn snapshot_migration_restores_in_lockstep(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        cut in 1usize..4,
        fail_seed in any::<u64>(),
    ) {
        let config = repair_config(epsilon, PaymentPolicy::critical_value());
        let graph = Arc::new(graph);
        let mut original = Engine::from_shared(Arc::clone(&graph), config.clone());
        let batches = churned_batches(&requests, ttl);
        let cut = cut.min(batches.len());
        for batch in &batches[..cut] {
            original.submit_batch(batch);
        }
        let bytes = original.snapshot_bytes();

        // Mutation burst after the snapshot: the snapshot is now stale
        // with respect to the live topology.
        let burst: Vec<TopologyEvent> = mutation_trace(&graph, 3, fail_seed)
            .into_iter()
            .flatten()
            .collect();
        if burst.is_empty() {
            return Ok(());
        }
        let report = original.apply_topology(&burst).expect("generated trace applies");
        prop_assert_eq!(report.to_version, burst.len() as u64);

        // Restore onto the mutated topology: an explicit typed migration
        // replaying the event delta, priced evictions included.
        let (mut restored, migration) = Engine::restore_with_topology(
            &bytes,
            Arc::clone(&graph),
            config,
            original.topology(),
        )
        .expect("ancestor snapshot must migrate");
        let migration = migration.expect("non-empty delta must report a migration");
        prop_assert_eq!(migration.from_version, 0);
        prop_assert_eq!(migration.to_version, burst.len() as u64);
        prop_assert_eq!(migration.evicted, report.evicted);
        prop_assert_eq!(migration.refunded.to_bits(), report.refunded.to_bits());

        // The migrated engine is bit-identical to the live one: same
        // snapshot bytes, same queued re-admissions.
        prop_assert_eq!(original.snapshot_bytes(), restored.snapshot_bytes());
        let (mut ra, rb) = (original.drain_readmissions(), restored.drain_readmissions());
        prop_assert_eq!(
            ra.iter().map(arrival_key).collect::<Vec<_>>(),
            rb.iter().map(arrival_key).collect::<Vec<_>>()
        );

        // And it continues in lockstep on the rest of the stream
        // (re-admission candidates ahead of the scheduled arrivals).
        for batch in &batches[cut..] {
            let mut merged = ra.clone();
            merged.extend(batch.iter().cloned());
            ra = Vec::new();
            let a = original.submit_batch(&merged);
            let b = restored.submit_batch(&merged);
            prop_assert_eq!(a.accepted, b.accepted);
            prop_assert_eq!(a.released, b.released);
            prop_assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
            prop_assert_eq!(a.min_residual.to_bits(), b.min_residual.to_bits());
        }
        prop_assert_eq!(full_observable(&original), full_observable(&restored));
        let (m, r) = (original.metrics(), restored.metrics());
        prop_assert_eq!(m.evicted, r.evicted);
        prop_assert_eq!(m.refunded.to_bits(), r.refunded.to_bits());
        prop_assert_eq!(m.revenue.to_bits(), r.revenue.to_bits());
    }
}

/// Divergent histories have no migration delta: restoring a snapshot
/// whose topology log is *not* an ancestor of the live topology is the
/// typed `GraphMismatch`, not a silent partial restore.
#[test]
fn divergent_topology_history_is_refused() {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = Arc::new(generators::gnm_digraph(6, 14, (8.0, 16.0), &mut rng));
    let config = EngineConfig::with_epsilon(0.5);
    let mut engine = Engine::from_shared(Arc::clone(&graph), config.clone());
    engine
        .apply_topology(&[TopologyEvent::LinkDown {
            edge: ufp_netgraph::ids::EdgeId(0),
        }])
        .expect("valid event");
    let bytes = engine.snapshot_bytes();

    // Live topology whose first event differs: the snapshot's log can
    // never be its prefix.
    let live = ufp_engine::Topology::replay(
        &graph,
        &[TopologyEvent::LinkDown {
            edge: ufp_netgraph::ids::EdgeId(1),
        }],
    )
    .expect("valid replay");
    let err = Engine::restore_with_topology(&bytes, Arc::clone(&graph), config, &live)
        .expect_err("divergent history must be refused");
    assert!(
        matches!(err, ufp_engine::CodecError::GraphMismatch { .. }),
        "want GraphMismatch, got {err:?}"
    );
}
