//! Property-based engine/offline equivalence and safety tests.
//!
//! * **Single-epoch equivalence** — over a fresh network, one engine
//!   epoch is *exactly* one-shot `bounded_ufp` + `CriticalValueMechanism`:
//!   same routed set, same paths, bit-identical payments. This is the
//!   contract that lets the offline truthfulness analysis transfer to the
//!   online engine epoch by epoch.
//! * **Multi-epoch feasibility** — however a request stream is chopped
//!   into batches (with or without churn), the engine's active allocation
//!   never violates a base capacity, and without churn neither does the
//!   cumulative one.
//! * **Conservation** — accepted + rejected = arrivals, and admitted
//!   value/revenue accounting is consistent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_core::{bounded_ufp, BoundedUfpConfig, Request, RequestId, UfpInstance};
use ufp_engine::{Arrival, Engine, EngineConfig, PaymentPolicy, ResidualFloor};
use ufp_mechanism::{CriticalValueMechanism, UfpAllocator};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::{bfs, generators};

/// Random small network plus connected requests (normalized demands).
fn arb_scenario() -> impl Strategy<Value = (Graph, Vec<Request>, f64)> {
    (3usize..8, 2usize..14, any::<u64>(), 1usize..10).prop_map(|(n, requests, seed, eps_decile)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_edges = n * (n - 1);
        let m = (max_edges / 2).clamp(2, max_edges);
        let cap = 3.0 + (seed % 9) as f64;
        let graph = generators::gnm_digraph(n, m, (cap, cap * 2.0), &mut rng);
        let mut reqs = Vec::new();
        let mut attempts = 0;
        while reqs.len() < requests && attempts < 2000 {
            attempts += 1;
            let src = NodeId(rng.random_range(0..n as u32));
            let dst = NodeId(rng.random_range(0..n as u32));
            if src == dst || !bfs::is_reachable(&graph, src, dst) {
                continue;
            }
            reqs.push(Request::new(
                src,
                dst,
                rng.random_range(0.3..=1.0),
                rng.random_range(0.5..4.0),
            ));
        }
        let epsilon = 0.1 * eps_decile as f64;
        (graph, reqs, epsilon)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One engine epoch over a fresh network == one-shot Algorithm 1 +
    /// critical-value payments, including bit-identical payments.
    #[test]
    fn single_epoch_matches_offline_mechanism((graph, requests, epsilon) in arb_scenario()) {
        if requests.is_empty() {
            return Ok(());
        }
        let instance = UfpInstance::new(graph.clone(), requests.clone());

        // Offline: Algorithm 1 + critical-value payments.
        let offline_run = bounded_ufp(&instance, &BoundedUfpConfig::with_epsilon(epsilon));
        let mechanism = CriticalValueMechanism::new(UfpAllocator {
            config: BoundedUfpConfig::with_epsilon(epsilon),
        });
        let offline_outcome = mechanism.run(&instance);

        // Online: a single engine epoch.
        let config = EngineConfig::with_epsilon(epsilon)
            .with_payments(PaymentPolicy::critical_value());
        let mut engine = Engine::new(graph, config);
        let report = engine.submit_requests(&requests);

        // Same allocation, same routes, same order.
        prop_assert_eq!(report.accepted, offline_run.solution.len());
        let admissions = engine.admissions();
        prop_assert_eq!(admissions.len(), offline_run.solution.routed.len());
        for (adm, (rid, path)) in admissions.iter().zip(&offline_run.solution.routed) {
            prop_assert_eq!(adm.request, *rid);
            prop_assert_eq!(adm.path.nodes(), path.nodes());
        }

        // Bit-identical payments per winner, and identical revenue.
        for adm in admissions {
            let offline_payment = offline_outcome.payments[adm.request.index()];
            prop_assert_eq!(
                adm.payment, offline_payment,
                "payment mismatch for {:?}: {} vs {}",
                adm.request, adm.payment, offline_payment
            );
        }
        prop_assert_eq!(report.revenue, offline_outcome.revenue());
    }

    /// Chopping one request set into however many batches never violates
    /// feasibility of the cumulative allocation.
    #[test]
    fn multi_epoch_runs_stay_feasible(
        (graph, requests, epsilon) in arb_scenario(),
        batches in 1usize..5,
        decay in 0.0..=1.0f64,
    ) {
        let config = EngineConfig {
            carry_decay: decay,
            ..EngineConfig::with_epsilon(epsilon)
        };
        let mut engine = Engine::new(graph, config);
        let chunk = requests.len().div_ceil(batches).max(1);
        for batch in requests.chunks(chunk) {
            engine.submit_requests(batch);
            // Feasible at *every* epoch boundary, not just the end.
            prop_assert!(engine
                .active_solution()
                .check_feasible(&engine.instance(), false)
                .is_ok());
        }
        prop_assert!(engine
            .cumulative_solution()
            .check_feasible(&engine.instance(), false)
            .is_ok());
        let m = engine.metrics();
        prop_assert_eq!(m.arrivals, requests.len() as u64);
        prop_assert_eq!(m.accepted + m.rejected, m.arrivals);
    }

    /// Churn: TTL releases keep the *active* allocation feasible at every
    /// epoch, and released capacity is really reusable (the engine never
    /// admits less than a no-release engine... sanity: conservation only).
    #[test]
    fn churned_runs_keep_active_feasibility(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..3,
    ) {
        let config = EngineConfig {
            residual_floor: ResidualFloor::Permissive,
            carry_decay: 0.0,
            ..EngineConfig::with_epsilon(epsilon)
        };
        let mut engine = Engine::new(graph, config);
        for batch in requests.chunks(3) {
            let arrivals: Vec<Arrival> = batch
                .iter()
                .map(|&r| Arrival::with_ttl(r, ttl))
                .collect();
            engine.submit_batch(&arrivals);
            prop_assert!(engine
                .active_solution()
                .check_feasible(&engine.instance(), false)
                .is_ok());
        }
        // Everything admitted with a TTL eventually releases.
        let horizon = ttl as usize + 1;
        for _ in 0..horizon {
            engine.submit_batch(&[]);
        }
        let m = engine.metrics();
        prop_assert_eq!(m.released, m.accepted, "all TTL admissions must release");
        prop_assert!(engine.active_solution().is_empty());
    }

    /// Prefix-resumed critical-value payments are **bit-identical** to
    /// the naive full-rerun bisection on every epoch of a churned,
    /// multi-epoch stream over a random network — the contract that lets
    /// the fast path replace the naive one everywhere.
    #[test]
    fn resumed_payments_bit_identical_to_naive_under_churn(
        (graph, requests, epsilon) in arb_scenario(),
        batches in 1usize..5,
        ttl in 1u32..4,
        decay in 0.0..=1.0f64,
    ) {
        let build = |payments: PaymentPolicy, graph: Graph| {
            Engine::new(graph, EngineConfig {
                carry_decay: decay,
                residual_floor: ResidualFloor::Permissive,
                ..EngineConfig::with_epsilon(epsilon).with_payments(payments)
            })
        };
        let mut fast = build(PaymentPolicy::critical_value(), graph.clone());
        let mut slow = build(PaymentPolicy::critical_value_naive(), graph);
        let chunk = requests.len().div_ceil(batches).max(1);
        for (i, batch) in requests.chunks(chunk).enumerate() {
            let arrivals: Vec<Arrival> = batch
                .iter()
                .enumerate()
                .map(|(j, &r)| if (i + j) % 2 == 0 {
                    Arrival::with_ttl(r, ttl)
                } else {
                    Arrival::permanent(r)
                })
                .collect();
            let rf = fast.submit_batch(&arrivals);
            let rs = slow.submit_batch(&arrivals);
            prop_assert_eq!(rf.accepted, rs.accepted, "epoch {} allocations diverged", i + 1);
            prop_assert_eq!(
                rf.revenue.to_bits(), rs.revenue.to_bits(),
                "epoch {} revenue diverged: {} vs {}", i + 1, rf.revenue, rs.revenue
            );
        }
        prop_assert_eq!(fast.admissions().len(), slow.admissions().len());
        for (a, b) in fast.admissions().iter().zip(slow.admissions()) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.path.nodes(), b.path.nodes());
            prop_assert_eq!(
                a.payment.to_bits(), b.payment.to_bits(),
                "payment diverged for {:?}: {} vs {}", a.request, a.payment, b.payment
            );
        }
    }

    /// PR 4: the incremental (dirty-set) selection loop and the full
    /// fan-out produce bit-identical *engines* over whole churned
    /// streams — every epoch report, admission path, critical-value
    /// payment, and metrics counter — including the watch-mode early
    /// exits inside the prefix-resumed payment probes.
    #[test]
    fn incremental_selection_bit_identical_across_churned_epochs(
        (graph, requests, epsilon) in arb_scenario(),
        batches in 1usize..5,
        ttl in 1u32..4,
        decay in 0.0..=1.0f64,
    ) {
        use ufp_engine::SelectionStrategy;
        let build = |selection: SelectionStrategy, graph: Graph| {
            Engine::new(graph, EngineConfig {
                carry_decay: decay,
                residual_floor: ResidualFloor::Permissive,
                selection,
                ..EngineConfig::with_epsilon(epsilon)
                    .with_payments(PaymentPolicy::critical_value())
            })
        };
        let mut inc = build(SelectionStrategy::Incremental, graph.clone());
        let mut fan = build(SelectionStrategy::FanOut, graph);
        let chunk = requests.len().div_ceil(batches).max(1);
        for (i, batch) in requests.chunks(chunk).enumerate() {
            let arrivals: Vec<Arrival> = batch
                .iter()
                .enumerate()
                .map(|(j, &r)| if (i + j) % 2 == 0 {
                    Arrival::with_ttl(r, ttl)
                } else {
                    Arrival::permanent(r)
                })
                .collect();
            let ri = inc.submit_batch(&arrivals);
            let rf = fan.submit_batch(&arrivals);
            prop_assert_eq!(ri.accepted, rf.accepted, "epoch {} allocations diverged", i + 1);
            prop_assert_eq!(ri.stop, rf.stop, "epoch {} stop reasons diverged", i + 1);
            prop_assert_eq!(
                ri.revenue.to_bits(), rf.revenue.to_bits(),
                "epoch {} revenue diverged: {} vs {}", i + 1, ri.revenue, rf.revenue
            );
            prop_assert_eq!(ri.min_residual.to_bits(), rf.min_residual.to_bits());
        }
        prop_assert_eq!(inc.admissions().len(), fan.admissions().len());
        for (a, b) in inc.admissions().iter().zip(fan.admissions()) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.path.nodes(), b.path.nodes());
            prop_assert_eq!(a.released, b.released);
            prop_assert_eq!(
                a.payment.to_bits(), b.payment.to_bits(),
                "payment diverged for {:?}: {} vs {}", a.request, a.payment, b.payment
            );
        }
        prop_assert_eq!(
            inc.metrics().revenue.to_bits(),
            fan.metrics().revenue.to_bits()
        );
    }

    /// Regression: holding the graph behind a shared `Arc` (and keeping
    /// other references to it alive) changes **no** engine trace output —
    /// events, admissions, payments, and metrics counters are identical
    /// to an engine that owns its graph exclusively.
    #[test]
    fn shared_graph_leaves_engine_traces_unchanged(
        (graph, requests, epsilon) in arb_scenario(),
    ) {
        let config = || EngineConfig {
            events: ufp_engine::EventLevel::Request,
            ..EngineConfig::with_epsilon(epsilon)
                .with_payments(PaymentPolicy::critical_value())
        };
        // Exclusive: the engine owns the only copy of this graph.
        let mut exclusive = Engine::new(graph.clone(), config());
        // Shared: the same Arc is also held (and read) outside the engine
        // for the whole run.
        let shared_handle = std::sync::Arc::new(graph);
        let mut shared = Engine::from_shared(std::sync::Arc::clone(&shared_handle), config());
        for batch in requests.chunks(3) {
            exclusive.submit_requests(batch);
            shared.submit_requests(batch);
            // Outside reader keeps the Arc busy mid-run.
            prop_assert_eq!(shared_handle.num_edges(), shared.graph().num_edges());
        }
        prop_assert_eq!(exclusive.drain_events(), shared.drain_events());
        prop_assert_eq!(exclusive.admissions().len(), shared.admissions().len());
        for (a, b) in exclusive.admissions().iter().zip(shared.admissions()) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.path.nodes(), b.path.nodes());
            prop_assert_eq!(a.payment.to_bits(), b.payment.to_bits());
        }
        prop_assert_eq!(exclusive.metrics().accepted, shared.metrics().accepted);
        prop_assert_eq!(exclusive.metrics().revenue.to_bits(), shared.metrics().revenue.to_bits());
        // And the shared engine's instance view points at the same graph
        // allocation — no hidden deep copy anywhere in the epoch path.
        prop_assert!(std::ptr::eq(shared.graph(), shared.instance().graph()));
    }

    /// Determinism: identical streams produce identical engines.
    #[test]
    fn replays_are_deterministic((graph, requests, epsilon) in arb_scenario()) {
        let run = || {
            let mut engine = Engine::new(
                graph.clone(),
                EngineConfig::with_epsilon(epsilon),
            );
            for batch in requests.chunks(4) {
                engine.submit_requests(batch);
            }
            engine
                .cumulative_solution()
                .routed
                .iter()
                .map(|(r, p)| (r.0, p.nodes().to_vec()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Global request ids survive multi-epoch submission: the engine's
/// instance view must agree with the concatenated batches.
#[test]
fn global_ids_index_the_full_history() {
    let mut gb = ufp_netgraph::graph::GraphBuilder::directed(3);
    gb.add_edge(NodeId(0), NodeId(1), 50.0);
    gb.add_edge(NodeId(1), NodeId(2), 50.0);
    let mut engine = Engine::new(gb.build(), EngineConfig::with_epsilon(0.5));
    let batch1: Vec<Request> = (0..3)
        .map(|i| Request::new(NodeId(0), NodeId(1), 1.0, 1.0 + i as f64))
        .collect();
    let batch2: Vec<Request> = (0..2)
        .map(|i| Request::new(NodeId(1), NodeId(2), 1.0, 2.0 + i as f64))
        .collect();
    engine.submit_requests(&batch1);
    engine.submit_requests(&batch2);
    let instance = engine.instance();
    assert_eq!(instance.num_requests(), 5);
    assert_eq!(instance.request(RequestId(3)).src, NodeId(1));
    for adm in engine.admissions() {
        let req = instance.request(adm.request);
        assert_eq!(adm.path.source(), req.src);
        assert_eq!(adm.path.target(), req.dst);
    }
}
