//! Crash-recovery integration suite: a killed-and-restored engine must
//! continue **byte-identically** — epochs, critical-value payments,
//! events, and metrics — versus an engine that never died.
//!
//! The scenario mirrors the `engine_sim` driver: a deterministic Poisson
//! trace with TTL churn over a random `G(n, m)` network, replayed
//! through an engine pricing every admission. At several watermarks `k`
//! the run is interrupted, persisted, rebuilt from bytes (or from a
//! [`SnapshotStore`] directory), and continued over the identical trace
//! suffix.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ufp_engine::{Arrival, Engine, EngineConfig, EventLevel, PaymentPolicy, SnapshotStore};
use ufp_netgraph::generators;
use ufp_netgraph::graph::Graph;
use ufp_workloads::arrivals::{arrival_trace, ArrivalProcess, ArrivalTraceConfig};
use ufp_workloads::random_ufp::required_b;

const EPOCHS: usize = 12;

fn scenario() -> (Arc<Graph>, Vec<Vec<Arrival>>) {
    let epsilon = 0.6;
    let b = required_b(160, epsilon).ceil();
    let mut rng = StdRng::seed_from_u64(23);
    let graph = generators::gnm_digraph(48, 160, (b, 2.0 * b), &mut rng);
    let trace = arrival_trace(
        &graph,
        &ArrivalTraceConfig {
            epochs: EPOCHS,
            process: ArrivalProcess::Poisson { mean: 30.0 },
            hotspot_pairs: Some(3),
            demand_range: (0.2, 1.0),
            ttl_range: Some((1, 4)),
            seed: 23,
            ..Default::default()
        },
    );
    (Arc::new(graph), trace)
}

fn config() -> EngineConfig {
    EngineConfig {
        events: EventLevel::Request,
        ..EngineConfig::with_epsilon(0.6).with_payments(PaymentPolicy::critical_value())
    }
}

/// One admission flattened to comparable primitives: request id, path
/// nodes, epoch, expiry, payment bits, released flag.
type AdmissionState = (u32, Vec<u32>, u64, Option<u64>, u64, bool);

/// Deterministic digest of everything observable about an engine run.
/// Latency metrics are wall-clock and deliberately excluded.
fn observable_state(engine: &Engine) -> (Vec<AdmissionState>, u64) {
    let admissions = engine
        .admissions()
        .iter()
        .map(|a| {
            (
                a.request.0,
                a.path.nodes().iter().map(|n| n.0).collect(),
                a.epoch,
                a.expires_at,
                a.payment.to_bits(),
                a.released,
            )
        })
        .collect();
    (admissions, engine.metrics().revenue.to_bits())
}

#[test]
fn restored_runs_continue_byte_identically_for_several_watermarks() {
    let (graph, trace) = scenario();

    // The unbroken reference run, with every per-epoch report recorded.
    let mut reference = Engine::from_shared(Arc::clone(&graph), config());
    let mut reference_reports = Vec::new();
    for batch in &trace {
        let r = reference.submit_batch(batch);
        reference_reports.push(r);
    }
    let reference_events = reference.events().to_vec();

    for k in [1usize, 4, 7, 10] {
        // Run to epoch k, "crash", persist.
        let mut victim = Engine::from_shared(Arc::clone(&graph), config());
        for batch in &trace[..k] {
            victim.submit_batch(batch);
        }
        let bytes = victim.snapshot_bytes();

        // Rebuild a fresh engine from the snapshot and continue.
        let mut restored = Engine::restore_from_bytes(&bytes, Arc::clone(&graph), config())
            .expect("snapshot must restore");
        assert_eq!(restored.epoch(), k as u64);
        for (t, batch) in trace.iter().enumerate().skip(k) {
            let r = restored.submit_batch(batch);
            let want = &reference_reports[t];
            assert_eq!(r.epoch, want.epoch, "k={k} epoch number");
            assert_eq!(r.accepted, want.accepted, "k={k} t={t} accepted");
            assert_eq!(r.rejected, want.rejected, "k={k} t={t} rejected");
            assert_eq!(r.released, want.released, "k={k} t={t} released");
            assert_eq!(r.stop, want.stop, "k={k} t={t} stop reason");
            assert_eq!(
                r.revenue.to_bits(),
                want.revenue.to_bits(),
                "k={k} t={t} revenue diverged: {} vs {}",
                r.revenue,
                want.revenue
            );
            assert_eq!(
                r.value_admitted.to_bits(),
                want.value_admitted.to_bits(),
                "k={k} t={t} value"
            );
            assert_eq!(
                r.min_residual.to_bits(),
                want.min_residual.to_bits(),
                "k={k} t={t} min residual"
            );
            assert_eq!(
                r.total_utilization.to_bits(),
                want.total_utilization.to_bits(),
                "k={k} t={t} utilization"
            );
        }

        // Full-history read-outs agree byte for byte: every admission,
        // every payment bit, every event, the metrics counters.
        assert_eq!(
            observable_state(&restored),
            observable_state(&reference),
            "k={k} observable state diverged"
        );
        assert_eq!(
            restored.events(),
            &reference_events[..],
            "k={k} event log diverged"
        );
        let (m, w) = (restored.metrics(), reference.metrics());
        assert_eq!(m.epochs, w.epochs);
        assert_eq!(m.arrivals, w.arrivals);
        assert_eq!(m.accepted, w.accepted);
        assert_eq!(m.rejected, w.rejected);
        assert_eq!(m.released, w.released);
        assert_eq!(m.value_admitted.to_bits(), w.value_admitted.to_bits());
        assert_eq!(m.revenue.to_bits(), w.revenue.to_bits());
        // Residual loads — the state future epochs allocate against.
        assert_eq!(restored.residual().loads(), reference.residual().loads());
    }
}

#[test]
fn snapshot_store_recovers_newest_and_survives_torn_files() {
    let (graph, trace) = scenario();
    let dir = std::env::temp_dir().join(format!(
        "ufp-snapshot-store-test-{}-{}",
        std::process::id(),
        // Distinguish parallel test binaries reusing a pid.
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::open(&dir).expect("store opens");

    // Snapshot every 3 epochs, crash after 8.
    let mut engine = Engine::from_shared(Arc::clone(&graph), config());
    for (t, batch) in trace.iter().enumerate().take(8) {
        engine.submit_batch(batch);
        if (t + 1) % 3 == 0 {
            store
                .save_with(&engine, format!("driver@{}", t + 1).as_bytes())
                .expect("save succeeds");
        }
    }
    assert_eq!(store.epochs().unwrap(), vec![3, 6]);

    // A half-written file under the newest name (crash mid-save).
    let full = std::fs::read(store.path_for(6)).unwrap();
    std::fs::write(store.path_for(7), &full[..full.len() / 2]).unwrap();

    let recovered = store
        .recover(Arc::clone(&graph), config())
        .expect("recover runs")
        .expect("a snapshot exists");
    assert_eq!(recovered.epoch, 6, "newest *loadable* snapshot wins");
    assert_eq!(recovered.driver, b"driver@6");
    assert_eq!(recovered.skipped.len(), 1, "torn file reported");

    // Continuing from the recovered engine matches the unbroken run.
    let mut reference = Engine::from_shared(Arc::clone(&graph), config());
    for batch in &trace {
        reference.submit_batch(batch);
    }
    let mut resumed = recovered.engine;
    for batch in &trace[6..] {
        resumed.submit_batch(batch);
    }
    assert_eq!(
        observable_state(&resumed),
        observable_state(&reference),
        "store-recovered run diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_refuses_mismatched_graph_and_config() {
    let (graph, trace) = scenario();
    let mut engine = Engine::from_shared(Arc::clone(&graph), config());
    for batch in &trace[..3] {
        engine.submit_batch(batch);
    }
    let bytes = engine.snapshot_bytes();

    // Same sizes, different capacities -> edge digest mismatch.
    let mut rng = StdRng::seed_from_u64(24);
    let other = Arc::new(generators::gnm_digraph(
        graph.num_nodes(),
        graph.num_edges(),
        (10.0, 20.0),
        &mut rng,
    ));
    let err = Engine::restore_from_bytes(&bytes, other, config()).unwrap_err();
    assert!(
        matches!(err, ufp_engine::CodecError::GraphMismatch { .. }),
        "got {err}"
    );

    // Different epsilon -> config mismatch.
    let mut cfg = config();
    cfg.epsilon = 0.5;
    let err = Engine::restore_from_bytes(&bytes, Arc::clone(&graph), cfg).unwrap_err();
    assert!(
        matches!(err, ufp_engine::CodecError::ConfigMismatch { .. }),
        "got {err}"
    );

    // The intended policy swap is allowed: CriticalValue snapshots
    // restore under CriticalValueNaive (payments are bit-identical by
    // contract), which is how the equivalence stays checkable on
    // recovered state.
    let naive = EngineConfig {
        events: EventLevel::Request,
        ..EngineConfig::with_epsilon(0.6).with_payments(PaymentPolicy::critical_value_naive())
    };
    assert!(Engine::restore_from_bytes(&bytes, Arc::clone(&graph), naive).is_ok());
}

/// PR 4: `SelectionStrategy::Incremental` and `::FanOut` share one
/// config-fingerprint class (their outputs are bit-identical by
/// contract), so a snapshot taken under either strategy restores under
/// the other and the continued run is byte-identical to an unbroken run
/// under either — the same cross-restore contract as
/// `CriticalValue` ≡ `CriticalValueNaive`.
#[test]
fn snapshots_restore_across_selection_strategies() {
    use ufp_engine::SelectionStrategy;
    let (graph, trace) = scenario();
    let with = |s: SelectionStrategy| EngineConfig {
        selection: s,
        ..config()
    };

    // Unbroken reference under the default (incremental) strategy.
    let mut reference =
        Engine::from_shared(Arc::clone(&graph), with(SelectionStrategy::Incremental));
    for batch in &trace {
        reference.submit_batch(batch);
    }

    let k = 5usize;
    // Crash a fan-out engine at epoch k...
    let mut victim = Engine::from_shared(Arc::clone(&graph), with(SelectionStrategy::FanOut));
    for batch in &trace[..k] {
        victim.submit_batch(batch);
    }
    let bytes = victim.snapshot_bytes();
    // ...and restore it under the incremental strategy.
    let mut restored = Engine::restore_from_bytes(
        &bytes,
        Arc::clone(&graph),
        with(SelectionStrategy::Incremental),
    )
    .expect("snapshot must restore across the strategy pair");
    for batch in trace.iter().skip(k) {
        restored.submit_batch(batch);
    }
    assert_eq!(
        observable_state(&restored),
        observable_state(&reference),
        "cross-strategy restore diverged"
    );

    // And the reverse direction: incremental snapshot, fan-out restore.
    let mut victim = Engine::from_shared(Arc::clone(&graph), with(SelectionStrategy::Incremental));
    for batch in &trace[..k] {
        victim.submit_batch(batch);
    }
    let bytes = victim.snapshot_bytes();
    let mut restored =
        Engine::restore_from_bytes(&bytes, Arc::clone(&graph), with(SelectionStrategy::FanOut))
            .expect("snapshot must restore across the strategy pair");
    for batch in trace.iter().skip(k) {
        restored.submit_batch(batch);
    }
    assert_eq!(
        observable_state(&restored),
        observable_state(&reference),
        "cross-strategy restore diverged (reverse direction)"
    );
}
