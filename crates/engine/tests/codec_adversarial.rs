//! Adversarial decoding suite: hostile or damaged snapshot bytes must
//! produce **typed errors** — never a panic, and never a silently
//! half-restored engine. Covers the acceptance criteria explicitly:
//! truncated, bit-flipped, wrong-version, and wrong-magic files.

use std::sync::Arc;

use ufp_core::Request;
use ufp_engine::codec::{self, CodecError};
use ufp_engine::{Engine, EngineConfig, EventLevel, PaymentPolicy};
use ufp_netgraph::graph::{Graph, GraphBuilder};
use ufp_netgraph::ids::NodeId;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn diamond() -> Graph {
    let mut gb = GraphBuilder::directed(4);
    gb.add_edge(n(0), n(1), 9.0);
    gb.add_edge(n(1), n(3), 9.0);
    gb.add_edge(n(0), n(2), 8.0);
    gb.add_edge(n(2), n(3), 8.0);
    gb.build()
}

fn config() -> EngineConfig {
    EngineConfig {
        events: EventLevel::Request,
        ..EngineConfig::with_epsilon(0.6).with_payments(PaymentPolicy::critical_value())
    }
}

/// A non-trivial populated engine: several epochs, TTL churn pending,
/// payments charged, events at request granularity.
fn populated() -> (Arc<Graph>, Vec<u8>) {
    let graph = Arc::new(diamond());
    let mut engine = Engine::from_shared(Arc::clone(&graph), config());
    for e in 0..4 {
        let arrivals: Vec<ufp_engine::Arrival> = (0..5)
            .map(|i| {
                let r = Request::new(
                    n(0),
                    n(3),
                    0.4 + 0.1 * ((e + i) % 4) as f64,
                    1.0 + ((2 * e + i) % 5) as f64,
                );
                if i % 2 == 0 {
                    ufp_engine::Arrival::with_ttl(r, 1 + (i % 3) as u32)
                } else {
                    ufp_engine::Arrival::permanent(r)
                }
            })
            .collect();
        engine.submit_batch(&arrivals);
    }
    let bytes = engine.snapshot_bytes_with(b"driver-blob");
    (graph, bytes)
}

fn restore(bytes: &[u8], graph: &Arc<Graph>) -> Result<Engine, CodecError> {
    Engine::restore_from_bytes(bytes, Arc::clone(graph), config())
}

#[test]
fn pristine_snapshot_restores() {
    let (graph, bytes) = populated();
    let engine = restore(&bytes, &graph).expect("control case must decode");
    assert_eq!(engine.epoch(), 4);
    assert!(!engine.admissions().is_empty());
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let (graph, bytes) = populated();
    for len in 0..bytes.len() {
        // Never panics, never Ok: every proper prefix is rejected with a
        // typed reason (magic too short / container or field truncated).
        let err = restore(&bytes[..len], &graph).expect_err("prefix must be rejected");
        assert!(
            matches!(
                err,
                CodecError::BadMagic { .. } | CodecError::Truncated { .. }
            ),
            "prefix of {len} bytes gave unexpected error {err}"
        );
    }
}

#[test]
fn every_bit_flip_is_detected() {
    let (graph, bytes) = populated();
    // Flip one bit in every byte position (all 8 bits for the header and
    // a stride of positions through the body — exhaustive per-byte, one
    // bit each, keeps the test fast while still crossing every section).
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        match restore(&bad, &graph) {
            Err(_) => {}
            Ok(_) => panic!("bit flip at byte {pos} restored successfully"),
        }
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    let (graph, bytes) = populated();
    let mut bad = bytes.clone();
    bad[..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(
        restore(&bad, &graph),
        Err(CodecError::BadMagic { .. })
    ));
    // Empty and sub-magic-length inputs too.
    assert!(matches!(
        restore(&[], &graph),
        Err(CodecError::BadMagic { .. })
    ));
    assert!(matches!(
        restore(&bytes[..5], &graph),
        Err(CodecError::BadMagic { .. })
    ));
}

#[test]
fn wrong_version_is_unsupported_version() {
    let (graph, bytes) = populated();
    let mut bad = bytes.clone();
    // Version field sits right after the 8-byte magic, little-endian.
    bad[8..12].copy_from_slice(&999u32.to_le_bytes());
    match restore(&bad, &graph) {
        Err(CodecError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, codec::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let (graph, bytes) = populated();
    let mut bad = bytes.clone();
    bad.extend_from_slice(b"junk");
    assert!(matches!(
        restore(&bad, &graph),
        Err(CodecError::TrailingBytes { extra: 4 })
    ));
}

#[test]
fn checksum_guards_the_whole_container() {
    let (graph, bytes) = populated();
    // Flip a body byte *and* fix nothing else: checksum mismatch.
    let mut bad = bytes.clone();
    let mid = codec::HEADER_LEN + (bytes.len() - codec::HEADER_LEN - codec::CHECKSUM_LEN) / 2;
    bad[mid] ^= 0x40;
    assert!(matches!(
        restore(&bad, &graph),
        Err(CodecError::ChecksumMismatch { .. })
    ));
    // Flip a checksum byte: also a checksum mismatch (stored != computed).
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        restore(&bad, &graph),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}

// ---------------------------------------------------------------------
// Dynamic-topology records (codec v2): the overlay event log and the
// re-admission queue must survive the same hostility as the rest of the
// container — truncation at every length, bit flips, forged
// fingerprints — with typed errors, never a panic.
// ---------------------------------------------------------------------

/// A populated engine whose snapshot carries a non-trivial topology
/// section: mutations applied (evictions + refunds included) and
/// re-admission candidates still queued.
fn populated_with_topology() -> (Arc<Graph>, Vec<u8>) {
    use ufp_netgraph::ids::EdgeId;
    use ufp_netgraph::topology::TopologyEvent;
    let graph = Arc::new(diamond());
    let mut engine = Engine::from_shared(Arc::clone(&graph), config());
    for e in 0..3 {
        let arrivals: Vec<ufp_engine::Arrival> = (0..5)
            .map(|i| {
                let r = Request::new(
                    n(0),
                    n(3),
                    0.4 + 0.1 * ((e + i) % 4) as f64,
                    1.0 + ((2 * e + i) % 5) as f64,
                );
                if i % 2 == 0 {
                    ufp_engine::Arrival::with_ttl(r, 2 + (i % 3) as u32)
                } else {
                    ufp_engine::Arrival::permanent(r)
                }
            })
            .collect();
        engine.submit_batch(&arrivals);
    }
    engine
        .apply_topology(&[
            TopologyEvent::SetCapacity {
                edge: EdgeId(0),
                capacity: 1.5,
            },
            TopologyEvent::LinkDown { edge: EdgeId(2) },
            TopologyEvent::DrainNode { node: n(1) },
        ])
        .expect("valid mutation burst");
    assert!(
        !engine.topology().is_pristine(),
        "topology section must be non-trivial"
    );
    let bytes = engine.snapshot_bytes_with(b"driver-blob");
    (graph, bytes)
}

#[test]
fn topology_snapshot_restores_and_round_trips() {
    let (graph, bytes) = populated_with_topology();
    let engine = restore(&bytes, &graph).expect("control case must decode");
    assert_eq!(engine.topology().version(), 3);
    assert_eq!(engine.topology().links_down(), 1);
    assert_eq!(engine.snapshot_bytes_with(b"driver-blob"), bytes);
}

#[test]
fn topology_snapshot_truncation_at_every_length_is_a_typed_error() {
    let (graph, bytes) = populated_with_topology();
    for len in 0..bytes.len() {
        let err = restore(&bytes[..len], &graph).expect_err("prefix must be rejected");
        assert!(
            matches!(
                err,
                CodecError::BadMagic { .. } | CodecError::Truncated { .. }
            ),
            "prefix of {len} bytes gave unexpected error {err}"
        );
    }
}

#[test]
fn topology_snapshot_every_bit_flip_is_detected() {
    let (graph, bytes) = populated_with_topology();
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        match restore(&bad, &graph) {
            Err(_) => {}
            Ok(_) => panic!("bit flip at byte {pos} restored successfully"),
        }
    }
}

#[test]
fn forged_topology_fingerprint_is_malformed() {
    // A hostile writer rewrites the stored topology fingerprint (and
    // recomputes the container checksum, so the frame itself is valid):
    // the decoder must cross-check the fingerprint against the replayed
    // event log and refuse with a typed Malformed, never trust the
    // stored value.
    let (graph, bytes) = populated_with_topology();
    let control = restore(&bytes, &graph).expect("control decodes");
    let fingerprint = control.topology().fingerprint().to_le_bytes();
    let body = codec::open_container(&bytes)
        .expect("control decodes")
        .to_vec();
    let reframe = |body: &[u8]| {
        let mut out = Vec::new();
        out.extend_from_slice(&codec::MAGIC);
        out.extend_from_slice(&codec::FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        let checksum = codec::fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    };
    let positions: Vec<usize> = (0..body.len().saturating_sub(8))
        .filter(|&i| body[i..i + 8] == fingerprint)
        .collect();
    assert!(
        !positions.is_empty(),
        "stored fingerprint not found in the body"
    );
    let mut malformed = 0usize;
    for pos in positions {
        let mut evil = body.clone();
        // Flip the high byte: a syntactically valid but wrong u64.
        evil[pos + 7] ^= 0xFF;
        match restore(&reframe(&evil), &graph) {
            Err(CodecError::Malformed { .. }) => malformed += 1,
            Err(_) => {}
            Ok(_) => panic!("forged fingerprint at byte {pos} restored successfully"),
        }
    }
    assert!(
        malformed > 0,
        "fingerprint cross-check never fired on a forged value"
    );
}

#[test]
fn version_one_snapshots_are_refused_not_partially_read() {
    // Codec v2 added the topology overlay + re-admission sections; a v1
    // snapshot cannot be partially understood and must be refused with
    // the typed version error, not misparsed.
    let (graph, bytes) = populated_with_topology();
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&1u32.to_le_bytes());
    match restore(&bad, &graph) {
        Err(CodecError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 1);
            assert_eq!(supported, codec::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn forged_checksum_still_hits_structural_validation() {
    // A hostile writer can recompute the checksum after corrupting the
    // body, so structural validation must not rely on it. Corrupt a
    // request's demand into a negative number, re-frame with a valid
    // checksum, and decode: the typed Malformed error fires.
    let (graph, bytes) = populated();
    let body = codec::open_container(&bytes)
        .expect("control decodes")
        .to_vec();

    // Find the first request demand: walk sections 1..3 then into 4.
    // Rather than re-implement the walk, corrupt bytes one at a time
    // with a *valid* checksum and assert we only ever see typed errors
    // (or an Ok whose re-encoding differs benignly in the driver blob /
    // latency ring — both excluded from engine semantics).
    let reframe = |body: &[u8]| {
        let mut out = Vec::new();
        out.extend_from_slice(&codec::MAGIC);
        out.extend_from_slice(&codec::FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        let checksum = codec::fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    };
    let mut typed_rejections = 0usize;
    for pos in (0..body.len()).step_by(7) {
        let mut evil = body.clone();
        evil[pos] = evil[pos].wrapping_add(0x91);
        let framed = reframe(&evil);
        // A typed Err (not a panic) is the point; an Ok means the byte
        // belonged to a benign field (latency sample, driver blob, …).
        if restore(&framed, &graph).is_err() {
            typed_rejections += 1;
        }
    }
    assert!(
        typed_rejections > 0,
        "structural validation never fired across forged-checksum corruptions"
    );
}
