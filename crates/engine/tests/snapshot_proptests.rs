//! Property-based snapshot coverage:
//!
//! * **Round-trip identity** — `restore(snapshot(engine))` reproduces
//!   every observable: residual loads and carry to the bit, admissions,
//!   requests, events + dropped cursor, and the metrics latency
//!   percentiles — including snapshots taken mid-TTL-churn with pending
//!   expiries.
//! * **Continuation equivalence** — a restored engine and the original
//!   produce bit-identical epochs on any continuation stream.
//! * **Policy-swap equivalence** — epochs priced with prefix-resumed
//!   [`PaymentPolicy::CriticalValue`] *after a restore* stay
//!   bit-identical to a restored engine running
//!   [`PaymentPolicy::CriticalValueNaive`]: persistence does not break
//!   the resumed/naive payment contract.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

use ufp_core::Request;
use ufp_engine::{Arrival, Engine, EngineConfig, EventLevel, PaymentPolicy, ResidualFloor};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::{bfs, generators};

/// Random small network plus connected requests (normalized demands) —
/// the same scenario family as the engine equivalence proptests.
fn arb_scenario() -> impl Strategy<Value = (Graph, Vec<Request>, f64)> {
    (3usize..8, 4usize..16, any::<u64>(), 1usize..10).prop_map(|(n, requests, seed, eps_decile)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_edges = n * (n - 1);
        let m = (max_edges / 2).clamp(2, max_edges);
        let cap = 3.0 + (seed % 9) as f64;
        let graph = generators::gnm_digraph(n, m, (cap, cap * 2.0), &mut rng);
        let mut reqs = Vec::new();
        let mut attempts = 0;
        while reqs.len() < requests && attempts < 2000 {
            attempts += 1;
            let src = NodeId(rng.random_range(0..n as u32));
            let dst = NodeId(rng.random_range(0..n as u32));
            if src == dst || !bfs::is_reachable(&graph, src, dst) {
                continue;
            }
            reqs.push(Request::new(
                src,
                dst,
                rng.random_range(0.3..=1.0),
                rng.random_range(0.5..4.0),
            ));
        }
        let epsilon = 0.1 * eps_decile as f64;
        (graph, reqs, epsilon)
    })
}

/// Drive `engine` over `requests` in churned batches of 3 (alternating
/// TTLs, so snapshots land mid-churn with pending expiries).
fn churned_batches(requests: &[Request], ttl: u32) -> Vec<Vec<Arrival>> {
    requests
        .chunks(3)
        .enumerate()
        .map(|(i, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, &r)| {
                    if (i + j) % 2 == 0 {
                        Arrival::with_ttl(r, ttl)
                    } else {
                        Arrival::permanent(r)
                    }
                })
                .collect()
        })
        .collect()
}

/// One admission flattened to comparable primitives: request id, path
/// nodes, epoch, expiry, payment bits, released flag.
type AdmissionState = (u32, Vec<u32>, u64, Option<u64>, u64, bool);

fn full_observable(engine: &Engine) -> Vec<AdmissionState> {
    engine
        .admissions()
        .iter()
        .map(|a| {
            (
                a.request.0,
                a.path.nodes().iter().map(|n| n.0).collect(),
                a.epoch,
                a.expires_at,
                a.payment.to_bits(),
                a.released,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// snapshot -> restore is the identity on every observable,
    /// including snapshots taken mid-TTL-churn.
    #[test]
    fn round_trip_is_identity(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        decay in 0.0..=1.0f64,
        cut in 1usize..5,
    ) {
        let config = EngineConfig {
            carry_decay: decay,
            residual_floor: ResidualFloor::Permissive,
            events: EventLevel::Request,
            ..EngineConfig::with_epsilon(epsilon)
                .with_payments(PaymentPolicy::critical_value())
        };
        let graph = Arc::new(graph);
        let mut engine = Engine::from_shared(Arc::clone(&graph), config.clone());
        let batches = churned_batches(&requests, ttl);
        let cut = cut.min(batches.len());
        for batch in &batches[..cut] {
            engine.submit_batch(batch);
        }

        let restored = Engine::restore_from_bytes(
            &engine.snapshot_bytes(),
            Arc::clone(&graph),
            config,
        ).expect("round trip must decode");

        prop_assert_eq!(restored.epoch(), engine.epoch());
        // Residual loads and carried exponents: exact bits.
        let loads: Vec<u64> =
            engine.residual().loads().iter().map(|l| l.to_bits()).collect();
        let rloads: Vec<u64> =
            restored.residual().loads().iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(loads, rloads);
        // Requests registry.
        let (ei, ri) = (engine.instance(), restored.instance());
        prop_assert_eq!(ei.requests(), ri.requests());
        // Admissions (paths, payments, TTL bookkeeping).
        prop_assert_eq!(full_observable(&engine), full_observable(&restored));
        // Event log + rotation cursor.
        prop_assert_eq!(engine.events(), restored.events());
        prop_assert_eq!(engine.events_dropped(), restored.events_dropped());
        // Metrics, including percentile read-outs over the latency ring.
        let (m, r) = (engine.metrics(), restored.metrics());
        prop_assert_eq!(m.epochs, r.epochs);
        prop_assert_eq!(m.arrivals, r.arrivals);
        prop_assert_eq!(m.accepted, r.accepted);
        prop_assert_eq!(m.released, r.released);
        prop_assert_eq!(m.value_admitted.to_bits(), r.value_admitted.to_bits());
        prop_assert_eq!(m.revenue.to_bits(), r.revenue.to_bits());
        for p in [0.0, 50.0, 99.0, 100.0] {
            prop_assert_eq!(m.latency_percentile_us(p), r.latency_percentile_us(p));
        }
        // And the snapshot encoding itself is deterministic: the restored
        // engine re-serializes to the same bytes (latency ring included —
        // it was restored, not re-measured).
        prop_assert_eq!(engine.snapshot_bytes(), restored.snapshot_bytes());
    }

    /// The original and the restored engine stay in lockstep over any
    /// continuation of the stream.
    #[test]
    fn continuation_is_bit_identical(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        cut in 1usize..4,
    ) {
        let config = EngineConfig {
            residual_floor: ResidualFloor::Permissive,
            ..EngineConfig::with_epsilon(epsilon)
                .with_payments(PaymentPolicy::critical_value())
        };
        let graph = Arc::new(graph);
        let mut original = Engine::from_shared(Arc::clone(&graph), config.clone());
        let batches = churned_batches(&requests, ttl);
        let cut = cut.min(batches.len());
        for batch in &batches[..cut] {
            original.submit_batch(batch);
        }
        let mut restored = Engine::restore_from_bytes(
            &original.snapshot_bytes(),
            Arc::clone(&graph),
            config,
        ).expect("decodes");
        for batch in &batches[cut..] {
            let a = original.submit_batch(batch);
            let b = restored.submit_batch(batch);
            prop_assert_eq!(a.accepted, b.accepted);
            prop_assert_eq!(a.released, b.released);
            prop_assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
            prop_assert_eq!(a.min_residual.to_bits(), b.min_residual.to_bits());
        }
        prop_assert_eq!(full_observable(&original), full_observable(&restored));
    }

    /// After a restore, prefix-resumed critical-value epochs remain
    /// bit-identical to the naive full-rerun baseline — the PR 2 payment
    /// contract survives persistence (including the deliberate
    /// CriticalValue -> CriticalValueNaive restore that the shared
    /// config fingerprint class permits).
    #[test]
    fn restored_critical_value_epochs_match_naive(
        (graph, requests, epsilon) in arb_scenario(),
        ttl in 1u32..4,
        cut in 1usize..4,
    ) {
        let config = |payments| EngineConfig {
            residual_floor: ResidualFloor::Permissive,
            ..EngineConfig::with_epsilon(epsilon).with_payments(payments)
        };
        let graph = Arc::new(graph);
        let mut seed_engine = Engine::from_shared(
            Arc::clone(&graph),
            config(PaymentPolicy::critical_value()),
        );
        let batches = churned_batches(&requests, ttl);
        let cut = cut.min(batches.len());
        for batch in &batches[..cut] {
            seed_engine.submit_batch(batch);
        }
        let bytes = seed_engine.snapshot_bytes();
        // One snapshot, two futures: resumed pricing vs naive pricing.
        let mut fast = Engine::restore_from_bytes(
            &bytes,
            Arc::clone(&graph),
            config(PaymentPolicy::critical_value()),
        ).expect("decodes under the resumed policy");
        let mut slow = Engine::restore_from_bytes(
            &bytes,
            Arc::clone(&graph),
            config(PaymentPolicy::critical_value_naive()),
        ).expect("decodes under the naive policy");
        for batch in &batches[cut..] {
            let a = fast.submit_batch(batch);
            let b = slow.submit_batch(batch);
            prop_assert_eq!(a.accepted, b.accepted);
            prop_assert_eq!(
                a.revenue.to_bits(), b.revenue.to_bits(),
                "restored resumed/naive revenue diverged: {} vs {}",
                a.revenue, b.revenue
            );
        }
        prop_assert_eq!(fast.admissions().len(), slow.admissions().len());
        for (a, b) in fast.admissions().iter().zip(slow.admissions()) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.payment.to_bits(), b.payment.to_bits());
        }
    }
}
