//! Property-based tests for the LP substrate: the two solvers must
//! bracket each other on random inputs, and simplex optima must satisfy
//! strong duality and complementary slackness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_lp::duality::{dual_objective, is_dual_feasible};
use ufp_lp::packing::{solve_packing, Column, ColumnOracle, PackingConfig};
use ufp_lp::simplex::{solve, LpOutcome, LpProblem, Relation};

/// Random bounded packing LP with explicit columns.
fn arb_packing() -> impl Strategy<Value = (LpProblem, Vec<f64>, Vec<Column>)> {
    (2usize..6, 1usize..5, any::<u64>()).prop_map(|(ncols, rows, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..rows).map(|_| rng.random_range(1.0..9.0)).collect();
        let mut lp = LpProblem::new(ncols);
        let mut cols = Vec::new();
        for j in 0..ncols {
            let value = rng.random_range(0.2..4.0);
            lp.objective[j] = value;
            let mut entries = Vec::new();
            for i in 0..rows {
                if rng.random_range(0.0..1.0) < 0.8 {
                    entries.push((i, rng.random_range(0.2..2.0)));
                }
            }
            if entries.is_empty() {
                entries.push((rng.random_range(0..rows), 1.0));
            }
            cols.push(Column {
                value,
                entries,
                tag: j as u64,
            });
        }
        for (i, &bi) in b.iter().enumerate() {
            let terms: Vec<(usize, f64)> = cols
                .iter()
                .enumerate()
                .flat_map(|(j, c)| {
                    c.entries
                        .iter()
                        .filter(move |&&(r, _)| r == i)
                        .map(move |&(_, a)| (j, a))
                })
                .collect();
            lp.add_constraint(terms, Relation::Le, bi);
        }
        (lp, b, cols)
    })
}

struct Explicit {
    b: Vec<f64>,
    cols: Vec<Column>,
}

impl ColumnOracle for Explicit {
    fn num_rows(&self) -> usize {
        self.b.len()
    }
    fn row_limit(&self, i: usize) -> f64 {
        self.b[i]
    }
    fn best_column(&self, y: &[f64]) -> Option<Column> {
        self.cols
            .iter()
            .map(|c| {
                let w: f64 = c.entries.iter().map(|&(i, a)| a * y[i]).sum();
                (w / c.value, c)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .map(|(_, c)| c.clone())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strong_duality_and_certificates((lp, _b, _cols) in arb_packing()) {
        let sol = match solve(&lp) {
            LpOutcome::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("not optimal: {other:?}"))),
        };
        prop_assert!(lp.is_primal_feasible(&sol.x, 1e-7));
        prop_assert!(is_dual_feasible(&lp, &sol.duals, 1e-6));
        let gap = dual_objective(&lp, &sol.duals) - sol.objective;
        prop_assert!(gap.abs() < 1e-6, "strong duality gap {gap}");
    }

    #[test]
    fn packing_brackets_simplex((lp, b, cols) in arb_packing()) {
        let exact = match solve(&lp) {
            LpOutcome::Optimal(s) => s.objective,
            other => return Err(TestCaseError::fail(format!("not optimal: {other:?}"))),
        };
        let oracle = Explicit { b, cols };
        let approx = solve_packing(&oracle, PackingConfig {
            epsilon: 0.03,
            max_iterations: 300_000,
        });
        prop_assert!(approx.primal_value <= exact + 1e-6,
            "primal {} exceeds exact {exact}", approx.primal_value);
        prop_assert!(approx.dual_bound >= exact - 1e-6,
            "dual bound {} below exact {exact}", approx.dual_bound);
        if exact > 1e-9 {
            prop_assert!(approx.primal_value >= exact / 1.07,
                "primal {} too far below exact {exact}", approx.primal_value);
        }
    }

    #[test]
    fn complementary_slackness((lp, _b, _cols) in arb_packing()) {
        let sol = match solve(&lp) {
            LpOutcome::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("not optimal: {other:?}"))),
        };
        // y_i > 0 ⇒ row i is tight.
        for (c, &y) in lp.constraints.iter().zip(&sol.duals) {
            if y > 1e-7 {
                let lhs: f64 = c.terms.iter().map(|&(j, a)| a * sol.x[j]).sum();
                prop_assert!((lhs - c.rhs).abs() < 1e-6,
                    "positive dual on a slack row: y={y}, slack={}", c.rhs - lhs);
            }
        }
        // x_j > 0 ⇒ dual constraint j is tight.
        let mut covered = vec![0.0f64; lp.num_vars()];
        for (c, &y) in lp.constraints.iter().zip(&sol.duals) {
            for &(j, a) in &c.terms {
                covered[j] += a * y;
            }
        }
        for (j, &cov) in covered.iter().enumerate() {
            if sol.x[j] > 1e-7 {
                prop_assert!((cov - lp.objective[j]).abs() < 1e-6,
                    "x_{j} basic but reduced cost {}", cov - lp.objective[j]);
            }
        }
    }
}
