//! Flat row-major dense matrix used by the simplex tableau.

/// Row-major dense `f64` matrix. One contiguous allocation; row slices are
/// handed out for the pivot loops so the compiler can elide bounds checks.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Add `v` to element `(r, c)`.
    #[inline(always)]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two distinct rows, the first mutable — the shape of a pivot update
    /// (`row_i -= factor * pivot_row`). Panics if `r1 == r2`.
    pub fn row_pair_mut(&mut self, r1: usize, r2: usize) -> (&mut [f64], &[f64]) {
        assert_ne!(r1, r2, "row_pair_mut needs distinct rows");
        let cols = self.cols;
        if r1 < r2 {
            let (lo, hi) = self.data.split_at_mut(r2 * cols);
            (&mut lo[r1 * cols..(r1 + 1) * cols], &hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(r1 * cols);
            (&mut hi[..cols], &lo[r2 * cols..(r2 + 1) * cols])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(0, 1, 4.0);
        m.add(0, 1, 0.5);
        assert_eq!(m.get(0, 1), 4.5);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn row_slices() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn row_pair_both_orders() {
        let mut m = Matrix::zeros(3, 2);
        m.set(0, 0, 1.0);
        m.set(2, 0, 5.0);
        {
            let (a, b) = m.row_pair_mut(0, 2);
            a[1] = b[0];
        }
        assert_eq!(m.get(0, 1), 5.0);
        {
            let (a, b) = m.row_pair_mut(2, 0);
            a[1] = b[0];
        }
        assert_eq!(m.get(2, 1), 1.0);
    }

    #[test]
    #[should_panic]
    fn row_pair_same_row_panics() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.row_pair_mut(1, 1);
    }
}
