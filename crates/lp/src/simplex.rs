//! Two-phase dense primal simplex with dual extraction.
//!
//! This is the *exact* solver of the LP substrate: small and medium
//! instances of the Figure 1 / Figure 5 linear programs are solved to
//! optimality so that experiments can report exact fractional optima and
//! integrality gaps. Bland's rule guarantees termination (no cycling);
//! a dense tableau keeps the implementation short and auditable. Large
//! instances use the approximate Garg–Könemann solver instead
//! ([`crate::packing`]).

use crate::dense::Matrix;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j = b`
    Eq,
    /// `Σ a_j x_j ≥ b`
    Ge,
}

/// One sparse constraint row.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; duplicate indices are summed.
    pub terms: Vec<(usize, f64)>,
    /// Sense of the row.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `maximize c·x  s.t.  constraints, x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    /// Objective coefficients; its length fixes the variable count.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

impl LpProblem {
    /// New problem over `num_vars` variables with zero objective.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Add a constraint; returns its row index (= dual variable index).
    pub fn add_constraint(
        &mut self,
        terms: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> usize {
        for &(j, _) in &terms {
            assert!(
                j < self.num_vars(),
                "constraint references variable {j} out of range"
            );
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// Evaluate the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check `x ≥ 0` and every constraint within `tol`.
    pub fn is_primal_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Optimal solution with dual values.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Primal assignment.
    pub x: Vec<f64>,
    /// One dual value per constraint row (sign convention: duals of a
    /// maximization are ≥ 0 for `Le` rows, ≤ 0 for `Ge` rows, free for
    /// `Eq` rows).
    pub duals: Vec<f64>,
}

/// Outcome of [`solve`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Finite optimum found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded above.
    Unbounded,
}

impl LpOutcome {
    /// Unwrap the optimal solution; panics otherwise.
    pub fn expect_optimal(self, msg: &str) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: LP outcome was {other:?}"),
        }
    }
}

const TOL: f64 = 1e-9;
/// Hard cap on pivots, far above what Bland's rule needs on our sizes;
/// protects against pathological numerics looping forever.
const MAX_PIVOTS: usize = 2_000_000;

struct Tableau {
    t: Matrix,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    n_rows: usize,
    rhs_col: usize,
    /// Per-row bookkeeping for dual extraction.
    row_flip: Vec<bool>,
    row_relation: Vec<Relation>,
    /// Column carrying the dual of each row (slack, surplus, or
    /// artificial column, all unit columns in the original basis).
    row_dual_col: Vec<usize>,
    row_dual_sign: Vec<f64>,
}

/// A constraint row normalized to `rhs >= 0`:
/// `(terms, relation, rhs, flipped)`.
type NormalizedRow = (Vec<(usize, f64)>, Relation, f64, bool);

/// Solve the LP to optimality with the two-phase primal simplex.
pub fn solve(lp: &LpProblem) -> LpOutcome {
    let m = lp.constraints.len();
    let n = lp.num_vars();

    // --- Count auxiliary columns -----------------------------------------
    // After normalizing rhs ≥ 0: Le rows get a slack (basic), Ge rows get a
    // surplus plus an artificial (basic), Eq rows get an artificial (basic).
    let mut n_slack = 0;
    let mut n_art = 0;
    let mut normalized: Vec<NormalizedRow> = Vec::with_capacity(m);
    for c in &lp.constraints {
        let mut terms = c.terms.clone();
        let mut rel = c.relation;
        let mut rhs = c.rhs;
        let mut flipped = false;
        if rhs < 0.0 {
            for t in &mut terms {
                t.1 = -t.1;
            }
            rhs = -rhs;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            flipped = true;
        }
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
        normalized.push((terms, rel, rhs, flipped));
    }

    let art_start = n + n_slack;
    let rhs_col = art_start + n_art;
    let cols = rhs_col + 1;

    // Rows 0..m are constraints; row m is the objective row (z_j − c_j).
    let mut t = Matrix::zeros(m + 1, cols);
    let mut basis = vec![0usize; m];
    let mut row_flip = vec![false; m];
    let mut row_relation = vec![Relation::Le; m];
    let mut row_dual_col = vec![0usize; m];
    let mut row_dual_sign = vec![1.0f64; m];

    let mut slack_cursor = n;
    let mut art_cursor = art_start;
    for (i, (terms, rel, rhs, flipped)) in normalized.iter().enumerate() {
        for &(j, a) in terms {
            t.add(i, j, a);
        }
        t.set(i, rhs_col, *rhs);
        row_flip[i] = *flipped;
        row_relation[i] = *rel;
        match rel {
            Relation::Le => {
                t.set(i, slack_cursor, 1.0);
                basis[i] = slack_cursor;
                row_dual_col[i] = slack_cursor;
                row_dual_sign[i] = 1.0;
                slack_cursor += 1;
            }
            Relation::Ge => {
                t.set(i, slack_cursor, -1.0);
                row_dual_col[i] = slack_cursor;
                row_dual_sign[i] = -1.0;
                slack_cursor += 1;
                t.set(i, art_cursor, 1.0);
                basis[i] = art_cursor;
                art_cursor += 1;
            }
            Relation::Eq => {
                t.set(i, art_cursor, 1.0);
                basis[i] = art_cursor;
                // Dual readable from the artificial's reduced cost.
                row_dual_col[i] = art_cursor;
                row_dual_sign[i] = 1.0;
                art_cursor += 1;
            }
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        n_rows: m,
        rhs_col,
        row_flip,
        row_relation,
        row_dual_col,
        row_dual_sign,
    };

    // --- Phase 1: maximize −Σ artificials --------------------------------
    if n_art > 0 {
        // Objective row for cost c = −1 on artificials: z_j − c_j.
        // Basis contains the artificials, so z_j = −Σ_{art rows} a_ij.
        for i in 0..m {
            if tab.basis[i] >= art_start {
                let (obj, row) = tab.t.row_pair_mut(m, i);
                for (o, r) in obj.iter_mut().zip(row) {
                    *o -= r;
                }
            }
        }
        // Column z−c of each artificial itself must be 0, which the
        // subtraction achieved for basic ones; also add back c_j = −1:
        for j in art_start..rhs_col {
            tab.t.add(m, j, 1.0);
        }
        if !run_simplex(&mut tab, rhs_col) {
            // Phase 1 is always bounded (objective ≤ 0).
            unreachable!("phase 1 cannot be unbounded");
        }
        let phase1 = tab.t.get(m, rhs_col);
        // We maximize −Σ art; stored objective value is +Σ c_B b = value.
        if phase1 < -1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still basic (at value 0) out of the basis
        // if possible; if its row is all-zero over structural+slack
        // columns, the row is redundant and can stay (pivoting is blocked
        // by banning artificial entry in phase 2).
        for i in 0..m {
            if tab.basis[i] >= art_start {
                let mut pivot_col = None;
                for j in 0..art_start {
                    if tab.t.get(i, j).abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    pivot(&mut tab, i, j);
                }
            }
        }
    }

    // --- Phase 2: original objective --------------------------------------
    // Rebuild objective row: z_j − c_j with c = lp.objective on structural
    // columns, 0 elsewhere (artificials get cost 0 but are banned from
    // entering, keeping their reduced costs = dual values for Eq rows).
    for j in 0..cols {
        tab.t.set(m, j, 0.0);
    }
    for j in 0..n {
        tab.t.set(m, j, -lp.objective[j]);
    }
    for i in 0..m {
        let b = tab.basis[i];
        let cb = if b < n { lp.objective[b] } else { 0.0 };
        if cb != 0.0 {
            let (obj, row) = tab.t.row_pair_mut(m, i);
            for (o, r) in obj.iter_mut().zip(row) {
                *o += cb * r;
            }
        }
    }
    if !run_simplex(&mut tab, art_start) {
        return LpOutcome::Unbounded;
    }

    // --- Extract solution --------------------------------------------------
    let mut x = vec![0.0; n];
    for i in 0..m {
        if tab.basis[i] < n {
            x[tab.basis[i]] = tab.t.get(i, rhs_col);
        }
    }
    let mut duals = vec![0.0; m];
    for (i, d) in duals.iter_mut().enumerate() {
        let raw = tab.t.get(m, tab.row_dual_col[i]) * tab.row_dual_sign[i];
        *d = if tab.row_flip[i] { -raw } else { raw };
        let _ = tab.row_relation[i];
    }
    let objective = tab.t.get(m, rhs_col);
    LpOutcome::Optimal(LpSolution {
        objective,
        x,
        duals,
    })
}

/// Run primal simplex pivots until optimal (true) or unbounded (false).
/// Columns `>= enter_limit` are banned from entering the basis.
fn run_simplex(tab: &mut Tableau, enter_limit: usize) -> bool {
    let m = tab.n_rows;
    let obj_row = m;
    for _ in 0..MAX_PIVOTS {
        // Bland: entering column = smallest index with negative reduced cost.
        let mut entering = None;
        for j in 0..enter_limit {
            if tab.t.get(obj_row, j) < -TOL {
                entering = Some(j);
                break;
            }
        }
        let Some(col) = entering else {
            return true; // optimal
        };
        // Ratio test; Bland tie-break on smallest basis index.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            let a = tab.t.get(i, col);
            if a > TOL {
                let ratio = tab.t.get(i, tab.rhs_col) / a;
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - TOL || (ratio < lr + TOL && tab.basis[i] < tab.basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((row, _)) = leave else {
            return false; // unbounded direction
        };
        pivot(tab, row, col);
    }
    panic!("simplex exceeded {MAX_PIVOTS} pivots — numerical trouble");
}

/// Pivot on (row, col): scale pivot row to 1, eliminate the column from
/// every other row including the objective row.
fn pivot(tab: &mut Tableau, row: usize, col: usize) {
    let p = tab.t.get(row, col);
    debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
    let inv = 1.0 / p;
    for v in tab.t.row_mut(row).iter_mut() {
        *v *= inv;
    }
    // Clean up the pivot element exactly.
    tab.t.set(row, col, 1.0);
    for i in 0..=tab.n_rows {
        if i == row {
            continue;
        }
        let factor = tab.t.get(i, col);
        if factor.abs() <= 1e-13 {
            continue;
        }
        let (target, source) = tab.t.row_pair_mut(i, row);
        for (tv, sv) in target.iter_mut().zip(source) {
            *tv -= factor * sv;
        }
        target[col] = 0.0;
    }
    tab.basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn simple_le_lp() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, obj 12
        let mut lp = LpProblem::new(2);
        lp.objective = vec![3.0, 2.0];
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 3.0)], Relation::Le, 6.0);
        let s = solve(&lp).expect_optimal("simple");
        assert_close(s.objective, 12.0);
        assert_close(s.x[0], 4.0);
        assert_close(s.x[1], 0.0);
        // duals: y1 = 3, y2 = 0 (only the first constraint binds usefully)
        assert_close(s.duals[0], 3.0);
        assert_close(s.duals[1], 0.0);
        assert!(lp.is_primal_feasible(&s.x, 1e-9));
    }

    #[test]
    fn interior_optimum_with_both_binding() {
        // max x + y s.t. 2x + y <= 4, x + 2y <= 4 => x=y=4/3, obj 8/3
        let mut lp = LpProblem::new(2);
        lp.objective = vec![1.0, 1.0];
        lp.add_constraint(vec![(0, 2.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0);
        let s = solve(&lp).expect_optimal("both binding");
        assert_close(s.objective, 8.0 / 3.0);
        assert_close(s.x[0], 4.0 / 3.0);
        assert_close(s.x[1], 4.0 / 3.0);
        assert_close(s.duals[0], 1.0 / 3.0);
        assert_close(s.duals[1], 1.0 / 3.0);
    }

    #[test]
    fn equality_constraint() {
        // max x + 2y s.t. x + y = 3, y <= 2 => x=1, y=2, obj 5
        let mut lp = LpProblem::new(2);
        lp.objective = vec![1.0, 2.0];
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 2.0);
        let s = solve(&lp).expect_optimal("eq");
        assert_close(s.objective, 5.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 2.0);
        // dual of the equality row: 1 (marginal value of raising rhs)
        assert_close(s.duals[0], 1.0);
        assert_close(s.duals[1], 1.0);
    }

    #[test]
    fn ge_constraint() {
        // max -x  s.t. x >= 2  (i.e. min x) => x=2, obj -2
        let mut lp = LpProblem::new(1);
        lp.objective = vec![-1.0];
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0);
        let s = solve(&lp).expect_optimal("ge");
        assert_close(s.objective, -2.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.duals[0], -1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new(1);
        lp.objective = vec![1.0];
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert!(matches!(solve(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new(2);
        lp.objective = vec![1.0, 0.0];
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert!(matches!(solve(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalization() {
        // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 => x=5
        let mut lp = LpProblem::new(1);
        lp.objective = vec![1.0];
        lp.add_constraint(vec![(0, -1.0)], Relation::Le, -2.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 5.0);
        let s = solve(&lp).expect_optimal("neg rhs");
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints meeting at a vertex.
        let mut lp = LpProblem::new(2);
        lp.objective = vec![1.0, 1.0];
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Le, 1.0);
        let s = solve(&lp).expect_optimal("degenerate");
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn zero_rhs_equality() {
        // max y s.t. x - y = 0, x <= 3 => x=y=3
        let mut lp = LpProblem::new(2);
        lp.objective = vec![0.0, 1.0];
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        let s = solve(&lp).expect_optimal("zero eq");
        assert_close(s.objective, 3.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // max x s.t. 0.5x + 0.5x <= 2 => x = 2
        let mut lp = LpProblem::new(1);
        lp.objective = vec![1.0];
        lp.add_constraint(vec![(0, 0.5), (0, 0.5)], Relation::Le, 2.0);
        let s = solve(&lp).expect_optimal("dup terms");
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn strong_duality_on_random_packing_lps() {
        // For packing LPs, primal optimum == dual objective (b·y).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.random_range(2..6);
            let m = rng.random_range(1..5);
            let mut lp = LpProblem::new(n);
            lp.objective = (0..n).map(|_| rng.random_range(0.1..5.0)).collect();
            for _ in 0..m {
                let mut terms: Vec<(usize, f64)> = Vec::new();
                for j in 0..n {
                    if rng.random_range(0.0..1.0) < 0.7 {
                        terms.push((j, rng.random_range(0.1..3.0)));
                    }
                }
                let rhs = rng.random_range(1.0..10.0);
                lp.add_constraint(terms, Relation::Le, rhs);
            }
            // cap each var to keep it bounded
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 10.0);
            }
            let s = solve(&lp).expect_optimal("random packing");
            assert!(lp.is_primal_feasible(&s.x, 1e-7));
            let dual_obj: f64 = lp
                .constraints
                .iter()
                .zip(&s.duals)
                .map(|(c, y)| c.rhs * y)
                .sum();
            assert!(
                (dual_obj - s.objective).abs() < 1e-6,
                "strong duality violated: primal {} dual {}",
                s.objective,
                dual_obj
            );
            // dual feasibility: for each var j, sum_i a_ij y_i >= c_j
            for j in 0..n {
                let mut lhs = 0.0;
                for (c, y) in lp.constraints.iter().zip(&s.duals) {
                    for &(jj, a) in &c.terms {
                        if jj == j {
                            lhs += a * y;
                        }
                    }
                }
                assert!(
                    lhs >= lp.objective[j] - 1e-6,
                    "dual constraint {j} violated: {lhs} < {}",
                    lp.objective[j]
                );
            }
        }
    }
}
