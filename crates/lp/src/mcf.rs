//! Fractional unsplittable flow (= value-maximizing multicommodity flow
//! with per-request caps) via the packing solver with a Dijkstra oracle.
//!
//! This is the exact relaxation from the paper's Figure 1: variables are
//! (request, path) pairs, a capacity row per edge (`b_e = c_e`, entry
//! `d_r`), and a selection row per request (`b_r = 1`, entry `1`,
//! realizing `Σ_{s∈S_r} x_s ≤ 1`). The oracle that finds the most-violated
//! dual constraint is a shortest-path query per commodity — the same
//! structural fact Algorithm 1 exploits.

use std::cell::RefCell;

use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::path::Path;

use crate::duality::weak_duality_gap;
use crate::packing::{solve_packing, Column, ColumnOracle, PackingConfig, PackingSolution};
use crate::simplex::{LpProblem, Relation};

/// An edge participates in the oracle only with a positive, finite
/// capacity; everything else (failed links, exhausted residuals, NaN)
/// is treated as absent.
#[inline]
fn usable_cap(c: f64) -> bool {
    c.is_finite() && c > 0.0
}

/// A commodity: the LP-substrate view of a connection request.
/// (`ufp-core` converts its richer request type into this.)
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Commodity {
    /// Source vertex.
    pub src: NodeId,
    /// Target vertex.
    pub dst: NodeId,
    /// Demand `d_r > 0`.
    pub demand: f64,
    /// Value `v_r > 0`.
    pub value: f64,
}

/// One fractional flow: `amount` ∈ \[0,1\] of `commodity` routed on `path`.
#[derive(Clone, Debug)]
pub struct FracFlow {
    /// Index into the commodity slice.
    pub commodity: usize,
    /// The routing path.
    pub path: Path,
    /// Fraction of the request routed along this path.
    pub amount: f64,
}

/// Output of [`solve_fractional_ufp`]. `value ≤ OPT_frac ≤ upper_bound`.
#[derive(Clone, Debug)]
pub struct FracUfpSolution {
    /// Certified feasible fractional objective.
    pub value: f64,
    /// Certified upper bound on the fractional optimum (hence also on the
    /// integral optimum — this is the bound experiments compare against).
    pub upper_bound: f64,
    /// Path flows, already scaled to feasibility.
    pub flows: Vec<FracFlow>,
    /// Oracle iterations used.
    pub iterations: usize,
    /// Dual certificate behind `upper_bound`, expanded to the full row
    /// space: `m` edge rows (graph edge order; `0.0` at edges with no
    /// usable capacity) followed by one selection row per commodity.
    /// `Σ b_i·duals[i] == upper_bound` and the vector prices every
    /// (request, path) column — see [`certified_duality_gap`]. Empty
    /// when the oracle never produced a column (nothing routable).
    pub duals: Vec<f64>,
}

struct UfpOracle<'a> {
    graph: &'a Graph,
    /// Per-edge capacities (the oracle's `b_e`); may differ from the
    /// graph's built-in capacities when solving over residuals.
    capacities: &'a [f64],
    commodities: &'a [Commodity],
    /// Dense packing-row index per edge, `usize::MAX` for edges with no
    /// usable capacity. Dead edges get *no* row at all — a zero row
    /// limit would blow up the solver's `1/b_i` weight initialisation.
    row_of_edge: Vec<usize>,
    /// Edge index per dense edge row (inverse of `row_of_edge`).
    edge_of_row: Vec<usize>,
    /// Commodity indices grouped by source vertex: one Dijkstra per
    /// distinct source per oracle call instead of one per commodity.
    by_source: Vec<(NodeId, Vec<usize>)>,
    // Interior mutability: the oracle trait takes &self, but we reuse one
    // Dijkstra workspace, a per-edge weight scratch, and accumulate
    // discovered paths for tag lookup.
    dijkstra: RefCell<Dijkstra>,
    weights: RefCell<Vec<f64>>,
    paths: RefCell<Vec<(usize, Path)>>,
}

impl<'a> UfpOracle<'a> {
    fn new(graph: &'a Graph, capacities: &'a [f64], commodities: &'a [Commodity]) -> Self {
        assert_eq!(capacities.len(), graph.num_edges(), "one capacity per edge");
        let mut row_of_edge = vec![usize::MAX; graph.num_edges()];
        let mut edge_of_row = Vec::new();
        for (e, &cap) in capacities.iter().enumerate() {
            if usable_cap(cap) {
                row_of_edge[e] = edge_of_row.len();
                edge_of_row.push(e);
            }
        }
        let mut by_source: Vec<(NodeId, Vec<usize>)> = Vec::new();
        let mut order: Vec<usize> = (0..commodities.len()).collect();
        order.sort_unstable_by_key(|&r| (commodities[r].src, r));
        for r in order {
            let src = commodities[r].src;
            match by_source.last_mut() {
                Some((s, members)) if *s == src => members.push(r),
                _ => by_source.push((src, vec![r])),
            }
        }
        UfpOracle {
            graph,
            capacities,
            commodities,
            row_of_edge,
            edge_of_row,
            by_source,
            dijkstra: RefCell::new(Dijkstra::new(graph.num_nodes())),
            weights: RefCell::new(vec![f64::INFINITY; graph.num_edges()]),
            paths: RefCell::new(Vec::new()),
        }
    }
}

impl<'a> ColumnOracle for UfpOracle<'a> {
    fn num_rows(&self) -> usize {
        self.edge_of_row.len() + self.commodities.len()
    }

    fn row_limit(&self, i: usize) -> f64 {
        let nu = self.edge_of_row.len();
        if i < nu {
            self.capacities[self.edge_of_row[i]]
        } else {
            1.0
        }
    }

    fn best_column(&self, y: &[f64]) -> Option<Column> {
        let nu = self.edge_of_row.len();
        // Scatter the dense edge-row weights back to per-edge indices
        // for Dijkstra; dead edges keep ∞ and are filtered out anyway.
        let mut weights = self.weights.borrow_mut();
        for (row, &e) in self.edge_of_row.iter().enumerate() {
            weights[e] = y[row];
        }
        let alive = |e: ufp_netgraph::ids::EdgeId| self.row_of_edge[e.index()] != usize::MAX;
        let mut dij = self.dijkstra.borrow_mut();
        let mut best: Option<(f64, usize)> = None;
        // One shortest-path tree per distinct source covers all of its
        // commodities.
        for (src, members) in &self.by_source {
            let targets: Vec<NodeId> = members.iter().map(|&r| self.commodities[r].dst).collect();
            dij.run(self.graph, &weights, *src, Targets::Set(&targets), alive);
            for &r in members {
                let c = &self.commodities[r];
                let Some(dist) = dij.distance(c.dst) else {
                    continue;
                };
                // Ratio of the (request, path) column: (d_r·|p| + z_r)/v_r.
                let ratio = (c.demand * dist + y[nu + r]) / c.value;
                let better = match &best {
                    None => true,
                    Some((b, _)) => ratio < *b,
                };
                if better {
                    best = Some((ratio, r));
                }
            }
        }
        let (_, r) = best?;
        // Re-run the winner's source to extract its path (the workspace
        // was clobbered by later groups).
        let c = &self.commodities[r];
        let path = dij
            .shortest_path(self.graph, &weights, c.src, c.dst, alive)
            .expect("winner was reachable a moment ago")
            .path;
        let mut entries: Vec<(usize, f64)> = path
            .edges()
            .iter()
            .map(|e| (self.row_of_edge[e.index()], c.demand))
            .collect();
        entries.push((nu + r, 1.0));
        let mut paths = self.paths.borrow_mut();
        let tag = paths.len() as u64;
        paths.push((r, path));
        Some(Column {
            value: c.value,
            entries,
            tag,
        })
    }
}

/// Solve the fractional UFP relaxation to a certified `(1+ε)` bracket,
/// using the graph's built-in edge capacities.
pub fn solve_fractional_ufp(
    graph: &Graph,
    commodities: &[Commodity],
    epsilon: f64,
    max_iterations: usize,
) -> FracUfpSolution {
    let capacities: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
    solve_fractional_ufp_with_caps(graph, &capacities, commodities, epsilon, max_iterations)
}

/// [`solve_fractional_ufp`] over caller-supplied per-edge capacities —
/// the regret oracle's entry point, where `capacities` is a frozen copy
/// of the engine's pre-epoch residuals. Edges with zero, negative, or
/// non-finite capacity are treated as absent (no packing row, excluded
/// from routing), so failed links and exhausted residuals are handled
/// without perturbing the solver's `1/b_i` weight initialisation.
pub fn solve_fractional_ufp_with_caps(
    graph: &Graph,
    capacities: &[f64],
    commodities: &[Commodity],
    epsilon: f64,
    max_iterations: usize,
) -> FracUfpSolution {
    for c in commodities {
        assert!(
            c.demand > 0.0 && c.value > 0.0,
            "commodities must be positive"
        );
    }
    let oracle = UfpOracle::new(graph, capacities, commodities);
    let cfg = PackingConfig {
        epsilon,
        max_iterations,
    };
    let sol: PackingSolution = solve_packing(&oracle, cfg);
    // Expand the dense dual vector back to the full (m edges + nc
    // selection rows) space; dead edges price at zero, which is dual
    // feasible because no column can touch them.
    let m = graph.num_edges();
    let duals = if sol.duals.is_empty() {
        Vec::new()
    } else {
        let nu = oracle.edge_of_row.len();
        let mut full = vec![0.0; m + commodities.len()];
        for (row, &e) in oracle.edge_of_row.iter().enumerate() {
            full[e] = sol.duals[row];
        }
        full[m..].copy_from_slice(&sol.duals[nu..]);
        full
    };
    let paths = oracle.paths.into_inner();
    let flows = sol
        .columns
        .into_iter()
        .filter(|(_, amt)| *amt > 0.0)
        .map(|(col, amount)| {
            let (commodity, path) = paths[col.tag as usize].clone();
            FracFlow {
                commodity,
                path,
                amount,
            }
        })
        .collect();
    FracUfpSolution {
        value: sol.primal_value,
        upper_bound: sol.dual_bound,
        flows,
        iterations: sol.iterations,
        duals,
    }
}

/// Drop commodities the oracle cannot price: non-positive or non-finite
/// demand/value, and degenerate self-loops (`src == dst`, which would
/// admit value over an empty path). Returns the surviving commodities
/// plus their indices into the input slice, so callers can map oracle
/// results back to their own request identifiers.
pub fn sanitize_commodities(raw: &[Commodity]) -> (Vec<Commodity>, Vec<usize>) {
    let mut kept = Vec::with_capacity(raw.len());
    let mut index = Vec::with_capacity(raw.len());
    for (i, c) in raw.iter().enumerate() {
        let positive = c.demand > 0.0 && c.value > 0.0;
        let finite = c.demand.is_finite() && c.value.is_finite();
        if positive && finite && c.src != c.dst {
            kept.push(*c);
            index.push(i);
        }
    }
    (kept, index)
}

/// Mechanical weak-duality witness for a [`FracUfpSolution`]: rebuild
/// the restricted LP over exactly the returned flows (all `m` edge
/// capacity rows in graph order — dead edges get `b_i = 0` — followed
/// by one selection row per commodity), then price the primal flows
/// against the solution's dual vector via
/// [`weak_duality_gap`](crate::duality::weak_duality_gap). The result
/// is `upper_bound − value` recomputed through the generic checker
/// (non-negative up to tolerance); `None` when the solve produced no
/// dual certificate (nothing was ever routable).
pub fn certified_duality_gap(
    graph: &Graph,
    capacities: &[f64],
    commodities: &[Commodity],
    sol: &FracUfpSolution,
    tol: f64,
) -> Option<f64> {
    if sol.duals.is_empty() {
        return None;
    }
    let m = graph.num_edges();
    assert_eq!(capacities.len(), m, "one capacity per edge");
    assert_eq!(sol.duals.len(), m + commodities.len());
    let mut lp = LpProblem::new(sol.flows.len());
    let mut edge_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    let mut selection_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); commodities.len()];
    for (j, f) in sol.flows.iter().enumerate() {
        let c = &commodities[f.commodity];
        lp.objective[j] = c.value;
        for e in f.path.edges() {
            edge_terms[e.index()].push((j, c.demand));
        }
        selection_terms[f.commodity].push((j, 1.0));
    }
    for (i, terms) in edge_terms.into_iter().enumerate() {
        let cap = capacities[i];
        let rhs = if usable_cap(cap) { cap } else { 0.0 };
        lp.add_constraint(terms, Relation::Le, rhs);
    }
    for terms in selection_terms {
        lp.add_constraint(terms, Relation::Le, 1.0);
    }
    let x: Vec<f64> = sol.flows.iter().map(|f| f.amount).collect();
    Some(weak_duality_gap(&lp, &x, &sol.duals, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_edge_single_commodity() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 10.0);
        let g = b.build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(1),
            demand: 1.0,
            value: 5.0,
        }];
        let sol = solve_fractional_ufp(&g, &c, 0.02, 100_000);
        // Request fully routable: OPT = 5 (bounded by the x_r <= 1 row).
        assert!(sol.value <= 5.0 + 1e-9);
        assert!(sol.upper_bound >= 5.0 - 1e-9);
        assert!(sol.value >= 5.0 / 1.05, "value {}", sol.value);
    }

    #[test]
    fn capacity_binds_fractional_share() {
        // Edge capacity 1, two unit-demand commodities of values 3 and 1:
        // fractional OPT routes all of the valuable one => 3 + 0 ... but
        // x_r <= 1 caps each, capacity 1 total => OPT = 3.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 1.0);
        let g = b.build();
        let c = vec![
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 3.0,
            },
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 1.0,
            },
        ];
        let sol = solve_fractional_ufp(&g, &c, 0.02, 200_000);
        assert!(sol.value <= 3.0 + 1e-9);
        assert!(sol.upper_bound >= 3.0 - 1e-6);
        assert!(sol.value >= 3.0 / 1.05);
    }

    #[test]
    fn splits_across_parallel_paths() {
        // Two disjoint 2-hop paths of capacity 1 each; one commodity of
        // demand 1, value 1 => it can route at most 1 unit; but capacity
        // lets fractional OPT = 1 (x_r <= 1 binds first).
        let mut b = GraphBuilder::directed(4);
        b.add_edge(n(0), n(1), 1.0);
        b.add_edge(n(1), n(3), 1.0);
        b.add_edge(n(0), n(2), 1.0);
        b.add_edge(n(2), n(3), 1.0);
        let g = b.build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(3),
            demand: 2.0,
            value: 4.0,
        }];
        // demand 2 > capacity 1 per path: fractional routes 0.5 on each
        // path => x_r = 1 total? Load on each edge = 2 * 0.5 = 1 ok.
        let sol = solve_fractional_ufp(&g, &c, 0.02, 200_000);
        assert!(sol.value <= 4.0 + 1e-9);
        assert!(sol.value >= 4.0 / 1.1, "value {}", sol.value);
    }

    #[test]
    fn flows_are_feasible() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(n(0), n(1), 2.0);
        b.add_edge(n(1), n(2), 1.0);
        let g = b.build();
        let c = vec![
            Commodity {
                src: n(0),
                dst: n(2),
                demand: 1.0,
                value: 2.0,
            },
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 1.0,
            },
        ];
        let sol = solve_fractional_ufp(&g, &c, 0.05, 100_000);
        let mut loads = vec![0.0; g.num_edges()];
        let mut per_req = vec![0.0; c.len()];
        for f in &sol.flows {
            assert!(f.path.validate(&g).is_ok());
            assert_eq!(f.path.source(), c[f.commodity].src);
            assert_eq!(f.path.target(), c[f.commodity].dst);
            per_req[f.commodity] += f.amount;
            for e in f.path.edges() {
                loads[e.index()] += c[f.commodity].demand * f.amount;
            }
        }
        for (e, &l) in loads.iter().enumerate() {
            assert!(
                l <= g.edges()[e].capacity + 1e-7,
                "edge {e} overloaded: {l}"
            );
        }
        for (r, &t) in per_req.iter().enumerate() {
            assert!(t <= 1.0 + 1e-7, "request {r} routed more than once: {t}");
        }
    }

    #[test]
    fn disconnected_commodity_contributes_nothing() {
        let g = GraphBuilder::directed(3).build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(2),
            demand: 1.0,
            value: 9.0,
        }];
        let sol = solve_fractional_ufp(&g, &c, 0.05, 1000);
        assert_eq!(sol.value, 0.0);
        assert!(sol.flows.is_empty());
        assert!(sol.duals.is_empty(), "no column ever priced");
    }

    #[test]
    fn residual_caps_override_graph_capacities() {
        // Two parallel 1-hop routes; residuals kill the direct edge and
        // shrink the detour, so the solve must respect the residual
        // view, not the built-in capacities.
        let mut b = GraphBuilder::directed(3);
        b.add_edge(n(0), n(2), 10.0); // edge 0: direct, residual 0
        b.add_edge(n(0), n(1), 10.0); // edge 1: detour hop, residual 2
        b.add_edge(n(1), n(2), 10.0); // edge 2: detour hop, residual 2
        let g = b.build();
        let caps = vec![0.0, 2.0, 2.0];
        let c = vec![Commodity {
            src: n(0),
            dst: n(2),
            demand: 4.0,
            value: 8.0,
        }];
        let sol = solve_fractional_ufp_with_caps(&g, &caps, &c, 0.02, 200_000);
        // Only the detour is open: 2 of 4 units fit => x_r = 1/2 => value 4.
        assert!(sol.value <= 4.0 + 1e-9, "value {}", sol.value);
        assert!(sol.value >= 4.0 / 1.05, "value {}", sol.value);
        assert!(sol.upper_bound >= 4.0 - 1e-6);
        for f in &sol.flows {
            for e in f.path.edges() {
                assert_ne!(e.index(), 0, "routed over a zero-residual edge");
            }
        }
    }

    #[test]
    fn all_edges_dead_is_a_clean_zero() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 5.0);
        let g = b.build();
        let caps = vec![0.0];
        let c = vec![Commodity {
            src: n(0),
            dst: n(1),
            demand: 1.0,
            value: 3.0,
        }];
        let sol = solve_fractional_ufp_with_caps(&g, &caps, &c, 0.05, 1000);
        assert_eq!(sol.value, 0.0);
        assert!(sol.flows.is_empty());
        assert!(sol.upper_bound.is_infinite() || sol.upper_bound >= 0.0);
        assert!(certified_duality_gap(&g, &caps, &c, &sol, 1e-9).is_none());
    }

    #[test]
    fn sanitize_drops_degenerates_and_keeps_indices() {
        let raw = vec![
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 2.0,
            },
            Commodity {
                src: n(1),
                dst: n(1), // self-loop
                demand: 1.0,
                value: 2.0,
            },
            Commodity {
                src: n(0),
                dst: n(2),
                demand: 0.0, // no demand
                value: 2.0,
            },
            Commodity {
                src: n(0),
                dst: n(2),
                demand: 1.0,
                value: f64::NAN, // non-finite
            },
            Commodity {
                src: n(2),
                dst: n(0),
                demand: 0.5,
                value: 1.0,
            },
        ];
        let (kept, index) = sanitize_commodities(&raw);
        assert_eq!(index, vec![0, 4]);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[1], raw[4]);
    }

    #[test]
    fn duals_certify_the_upper_bound_through_the_generic_checker() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(n(0), n(1), 2.0);
        b.add_edge(n(1), n(2), 1.0);
        b.add_edge(n(0), n(2), 1.5);
        let g = b.build();
        let caps = vec![2.0, 1.0, 0.0]; // direct edge exhausted
        let c = vec![
            Commodity {
                src: n(0),
                dst: n(2),
                demand: 1.0,
                value: 2.0,
            },
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 1.0,
            },
        ];
        let sol = solve_fractional_ufp_with_caps(&g, &caps, &c, 0.02, 400_000);
        assert_eq!(sol.duals.len(), g.num_edges() + c.len());
        assert_eq!(sol.duals[2], 0.0, "dead edge priced at zero");
        // b·y over the full row space reproduces the reported bound.
        let objective: f64 = caps
            .iter()
            .zip(&sol.duals)
            .map(|(&cap, &y)| if cap > 0.0 { cap * y } else { 0.0 })
            .sum::<f64>()
            + sol.duals[g.num_edges()..].iter().sum::<f64>();
        assert!(
            (objective - sol.upper_bound).abs() <= 1e-6 * sol.upper_bound.max(1.0),
            "b·y = {objective} vs upper_bound = {}",
            sol.upper_bound
        );
        // And the generic weak-duality checker agrees: gap == upper − value.
        let gap = certified_duality_gap(&g, &caps, &c, &sol, 1e-6).unwrap();
        assert!(gap >= -1e-9, "negative duality gap {gap}");
        assert!(
            (gap - (sol.upper_bound - sol.value)).abs() <= 1e-6 * sol.upper_bound.max(1.0),
            "gap {gap} vs bracket width {}",
            sol.upper_bound - sol.value
        );
    }
}
