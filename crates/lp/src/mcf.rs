//! Fractional unsplittable flow (= value-maximizing multicommodity flow
//! with per-request caps) via the packing solver with a Dijkstra oracle.
//!
//! This is the exact relaxation from the paper's Figure 1: variables are
//! (request, path) pairs, a capacity row per edge (`b_e = c_e`, entry
//! `d_r`), and a selection row per request (`b_r = 1`, entry `1`,
//! realizing `Σ_{s∈S_r} x_s ≤ 1`). The oracle that finds the most-violated
//! dual constraint is a shortest-path query per commodity — the same
//! structural fact Algorithm 1 exploits.

use std::cell::RefCell;

use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::graph::Graph;
use ufp_netgraph::ids::NodeId;
use ufp_netgraph::path::Path;

use crate::packing::{solve_packing, Column, ColumnOracle, PackingConfig, PackingSolution};

/// A commodity: the LP-substrate view of a connection request.
/// (`ufp-core` converts its richer request type into this.)
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Commodity {
    /// Source vertex.
    pub src: NodeId,
    /// Target vertex.
    pub dst: NodeId,
    /// Demand `d_r > 0`.
    pub demand: f64,
    /// Value `v_r > 0`.
    pub value: f64,
}

/// One fractional flow: `amount` ∈ \[0,1\] of `commodity` routed on `path`.
#[derive(Clone, Debug)]
pub struct FracFlow {
    /// Index into the commodity slice.
    pub commodity: usize,
    /// The routing path.
    pub path: Path,
    /// Fraction of the request routed along this path.
    pub amount: f64,
}

/// Output of [`solve_fractional_ufp`]. `value ≤ OPT_frac ≤ upper_bound`.
#[derive(Clone, Debug)]
pub struct FracUfpSolution {
    /// Certified feasible fractional objective.
    pub value: f64,
    /// Certified upper bound on the fractional optimum (hence also on the
    /// integral optimum — this is the bound experiments compare against).
    pub upper_bound: f64,
    /// Path flows, already scaled to feasibility.
    pub flows: Vec<FracFlow>,
    /// Oracle iterations used.
    pub iterations: usize,
}

struct UfpOracle<'a> {
    graph: &'a Graph,
    commodities: &'a [Commodity],
    /// Commodity indices grouped by source vertex: one Dijkstra per
    /// distinct source per oracle call instead of one per commodity.
    by_source: Vec<(NodeId, Vec<usize>)>,
    // Interior mutability: the oracle trait takes &self, but we reuse one
    // Dijkstra workspace and accumulate discovered paths for tag lookup.
    dijkstra: RefCell<Dijkstra>,
    paths: RefCell<Vec<(usize, Path)>>,
}

impl<'a> ColumnOracle for UfpOracle<'a> {
    fn num_rows(&self) -> usize {
        self.graph.num_edges() + self.commodities.len()
    }

    fn row_limit(&self, i: usize) -> f64 {
        let m = self.graph.num_edges();
        if i < m {
            self.graph.edges()[i].capacity
        } else {
            1.0
        }
    }

    fn best_column(&self, y: &[f64]) -> Option<Column> {
        let m = self.graph.num_edges();
        let mut dij = self.dijkstra.borrow_mut();
        let mut best: Option<(f64, usize)> = None;
        // One shortest-path tree per distinct source covers all of its
        // commodities.
        for (src, members) in &self.by_source {
            let targets: Vec<NodeId> = members.iter().map(|&r| self.commodities[r].dst).collect();
            dij.run(self.graph, &y[..m], *src, Targets::Set(&targets), |_| true);
            for &r in members {
                let c = &self.commodities[r];
                let Some(dist) = dij.distance(c.dst) else {
                    continue;
                };
                // Ratio of the (request, path) column: (d_r·|p| + z_r)/v_r.
                let ratio = (c.demand * dist + y[m + r]) / c.value;
                let better = match &best {
                    None => true,
                    Some((b, _)) => ratio < *b,
                };
                if better {
                    best = Some((ratio, r));
                }
            }
        }
        let (_, r) = best?;
        // Re-run the winner's source to extract its path (the workspace
        // was clobbered by later groups).
        let c = &self.commodities[r];
        let path = dij
            .shortest_path(self.graph, &y[..m], c.src, c.dst, |_| true)
            .expect("winner was reachable a moment ago")
            .path;
        let c = &self.commodities[r];
        let mut entries: Vec<(usize, f64)> =
            path.edges().iter().map(|e| (e.index(), c.demand)).collect();
        entries.push((m + r, 1.0));
        let mut paths = self.paths.borrow_mut();
        let tag = paths.len() as u64;
        paths.push((r, path));
        Some(Column {
            value: c.value,
            entries,
            tag,
        })
    }
}

/// Solve the fractional UFP relaxation to a certified `(1+ε)` bracket.
pub fn solve_fractional_ufp(
    graph: &Graph,
    commodities: &[Commodity],
    epsilon: f64,
    max_iterations: usize,
) -> FracUfpSolution {
    for c in commodities {
        assert!(
            c.demand > 0.0 && c.value > 0.0,
            "commodities must be positive"
        );
    }
    let mut by_source: Vec<(NodeId, Vec<usize>)> = Vec::new();
    {
        let mut order: Vec<usize> = (0..commodities.len()).collect();
        order.sort_unstable_by_key(|&r| (commodities[r].src, r));
        for r in order {
            let src = commodities[r].src;
            match by_source.last_mut() {
                Some((s, members)) if *s == src => members.push(r),
                _ => by_source.push((src, vec![r])),
            }
        }
    }
    let oracle = UfpOracle {
        graph,
        commodities,
        by_source,
        dijkstra: RefCell::new(Dijkstra::new(graph.num_nodes())),
        paths: RefCell::new(Vec::new()),
    };
    let cfg = PackingConfig {
        epsilon,
        max_iterations,
    };
    let sol: PackingSolution = solve_packing(&oracle, cfg);
    let paths = oracle.paths.into_inner();
    let flows = sol
        .columns
        .into_iter()
        .filter(|(_, amt)| *amt > 0.0)
        .map(|(col, amount)| {
            let (commodity, path) = paths[col.tag as usize].clone();
            FracFlow {
                commodity,
                path,
                amount,
            }
        })
        .collect();
    FracUfpSolution {
        value: sol.primal_value,
        upper_bound: sol.dual_bound,
        flows,
        iterations: sol.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_edge_single_commodity() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 10.0);
        let g = b.build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(1),
            demand: 1.0,
            value: 5.0,
        }];
        let sol = solve_fractional_ufp(&g, &c, 0.02, 100_000);
        // Request fully routable: OPT = 5 (bounded by the x_r <= 1 row).
        assert!(sol.value <= 5.0 + 1e-9);
        assert!(sol.upper_bound >= 5.0 - 1e-9);
        assert!(sol.value >= 5.0 / 1.05, "value {}", sol.value);
    }

    #[test]
    fn capacity_binds_fractional_share() {
        // Edge capacity 1, two unit-demand commodities of values 3 and 1:
        // fractional OPT routes all of the valuable one => 3 + 0 ... but
        // x_r <= 1 caps each, capacity 1 total => OPT = 3.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 1.0);
        let g = b.build();
        let c = vec![
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 3.0,
            },
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 1.0,
            },
        ];
        let sol = solve_fractional_ufp(&g, &c, 0.02, 200_000);
        assert!(sol.value <= 3.0 + 1e-9);
        assert!(sol.upper_bound >= 3.0 - 1e-6);
        assert!(sol.value >= 3.0 / 1.05);
    }

    #[test]
    fn splits_across_parallel_paths() {
        // Two disjoint 2-hop paths of capacity 1 each; one commodity of
        // demand 1, value 1 => it can route at most 1 unit; but capacity
        // lets fractional OPT = 1 (x_r <= 1 binds first).
        let mut b = GraphBuilder::directed(4);
        b.add_edge(n(0), n(1), 1.0);
        b.add_edge(n(1), n(3), 1.0);
        b.add_edge(n(0), n(2), 1.0);
        b.add_edge(n(2), n(3), 1.0);
        let g = b.build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(3),
            demand: 2.0,
            value: 4.0,
        }];
        // demand 2 > capacity 1 per path: fractional routes 0.5 on each
        // path => x_r = 1 total? Load on each edge = 2 * 0.5 = 1 ok.
        let sol = solve_fractional_ufp(&g, &c, 0.02, 200_000);
        assert!(sol.value <= 4.0 + 1e-9);
        assert!(sol.value >= 4.0 / 1.1, "value {}", sol.value);
    }

    #[test]
    fn flows_are_feasible() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(n(0), n(1), 2.0);
        b.add_edge(n(1), n(2), 1.0);
        let g = b.build();
        let c = vec![
            Commodity {
                src: n(0),
                dst: n(2),
                demand: 1.0,
                value: 2.0,
            },
            Commodity {
                src: n(0),
                dst: n(1),
                demand: 1.0,
                value: 1.0,
            },
        ];
        let sol = solve_fractional_ufp(&g, &c, 0.05, 100_000);
        let mut loads = vec![0.0; g.num_edges()];
        let mut per_req = vec![0.0; c.len()];
        for f in &sol.flows {
            assert!(f.path.validate(&g).is_ok());
            assert_eq!(f.path.source(), c[f.commodity].src);
            assert_eq!(f.path.target(), c[f.commodity].dst);
            per_req[f.commodity] += f.amount;
            for e in f.path.edges() {
                loads[e.index()] += c[f.commodity].demand * f.amount;
            }
        }
        for (e, &l) in loads.iter().enumerate() {
            assert!(
                l <= g.edges()[e].capacity + 1e-7,
                "edge {e} overloaded: {l}"
            );
        }
        for (r, &t) in per_req.iter().enumerate() {
            assert!(t <= 1.0 + 1e-7, "request {r} routed more than once: {t}");
        }
    }

    #[test]
    fn disconnected_commodity_contributes_nothing() {
        let g = GraphBuilder::directed(3).build();
        let c = vec![Commodity {
            src: n(0),
            dst: n(2),
            demand: 1.0,
            value: 9.0,
        }];
        let sol = solve_fractional_ufp(&g, &c, 0.05, 1000);
        assert_eq!(sol.value, 0.0);
        assert!(sol.flows.is_empty());
    }
}
