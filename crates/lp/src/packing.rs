//! Width-independent approximate packing-LP solver (Garg–Könemann /
//! multiplicative weights) with a column oracle.
//!
//! Solves `max Σ_j c_j x_j  s.t.  Σ_j A_ij x_j ≤ b_i, x ≥ 0` where the
//! (possibly exponential) column set is only accessible through a
//! minimum-ratio oracle — exactly the structure of the paper's Figure 1
//! relaxation, where columns are (request, path) pairs and the oracle is a
//! shortest-path computation. This is the machinery of Garg–Könemann \[9\]
//! and Fleischer \[8\], which the paper cites as the combinatorial
//! (1+ε)-approximation for the *fractional* problem.
//!
//! Rather than trusting the textbook constants, the solver is
//! **self-certifying**: every iteration derives
//!
//! * a feasible primal (raw column amounts scaled down by the maximum row
//!   overload), and
//! * a feasible dual (oracle weights scaled up by the minimum column
//!   ratio α, giving the upper bound `Σ b_i y_i / α`),
//!
//! and it stops when the certified gap reaches the target. The returned
//! bounds are therefore unconditionally valid regardless of floating-point
//! drift.

/// One column of the packing LP, produced by the oracle.
#[derive(Clone, Debug)]
pub struct Column {
    /// Objective coefficient `c_j` (> 0).
    pub value: f64,
    /// Non-zero matrix entries `(row, A_ij)` with `A_ij > 0`.
    pub entries: Vec<(usize, f64)>,
    /// Caller-defined identity (e.g. an index into a side table of paths).
    pub tag: u64,
}

/// Access to the packing LP: row limits plus a best-ratio column oracle.
pub trait ColumnOracle {
    /// Number of packing rows.
    fn num_rows(&self) -> usize;

    /// Row limit `b_i` (> 0).
    fn row_limit(&self, i: usize) -> f64;

    /// The column minimizing `(Σ_i A_ij y_i) / c_j` under weights `y`,
    /// or `None` when the column set is empty. Any column is acceptable
    /// for correctness (certificates are checked), but convergence speed
    /// follows the quality of minimization.
    fn best_column(&self, y: &[f64]) -> Option<Column>;
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct PackingConfig {
    /// Multiplicative-weights step size *and* target certified gap:
    /// the solver stops once `dual_bound ≤ (1 + epsilon) · primal_value`.
    pub epsilon: f64,
    /// Safety cap on iterations (the loop always terminates by itself in
    /// `O(rows · ln(rows) / ε²)` oracle calls; the cap guards pathology).
    pub max_iterations: usize,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            epsilon: 0.05,
            max_iterations: 200_000,
        }
    }
}

/// Result of [`solve_packing`]. `primal_value` and `dual_bound` bracket the
/// LP optimum: `primal_value ≤ OPT ≤ dual_bound`.
#[derive(Clone, Debug)]
pub struct PackingSolution {
    /// Certified feasible primal objective.
    pub primal_value: f64,
    /// Certified upper bound on the LP optimum.
    pub dual_bound: f64,
    /// Selected columns with **feasible** (already scaled) amounts.
    pub columns: Vec<(Column, f64)>,
    /// Oracle calls performed.
    pub iterations: usize,
    /// The dual certificate behind `dual_bound`: the per-row weights
    /// `y/α` of the iteration that realized the best bound. Feasible
    /// for *every* column the oracle can produce (α is the global
    /// minimum ratio when the oracle minimizes exactly), so
    /// `Σ b_i · duals[i] == dual_bound` is a mechanical weak-duality
    /// witness. Empty when the oracle never returned a column.
    pub duals: Vec<f64>,
}

impl PackingSolution {
    /// Certified optimality ratio `dual_bound / primal_value` (≥ 1).
    pub fn certified_ratio(&self) -> f64 {
        if self.primal_value <= 0.0 {
            f64::INFINITY
        } else {
            self.dual_bound / self.primal_value
        }
    }
}

/// Run the multiplicative-weights packing solver against `oracle`.
pub fn solve_packing<O: ColumnOracle>(oracle: &O, config: PackingConfig) -> PackingSolution {
    let rows = oracle.num_rows();
    let eps = config.epsilon.clamp(1e-4, 0.5);
    let mut y: Vec<f64> = (0..rows).map(|i| 1.0 / oracle.row_limit(i)).collect();
    let mut raw: Vec<(Column, f64)> = Vec::new();
    let mut loads = vec![0.0f64; rows];
    let mut raw_value = 0.0f64;
    let mut best_dual = f64::INFINITY;
    let mut best_duals: Vec<f64> = Vec::new();
    let mut iterations = 0;

    loop {
        if iterations >= config.max_iterations {
            break;
        }
        let Some(col) = oracle.best_column(&y) else {
            break;
        };
        debug_assert!(col.value > 0.0, "columns must have positive value");
        iterations += 1;

        // Dual certificate: α = min_j (A_j·y)/c_j is realized by this
        // column; y/α is dual feasible with objective (Σ b_i y_i)/α.
        let weighted: f64 = col.entries.iter().map(|&(i, a)| a * y[i]).sum();
        let alpha = weighted / col.value;
        if alpha > 0.0 {
            let dual_sum: f64 = y
                .iter()
                .enumerate()
                .map(|(i, &yi)| oracle.row_limit(i) * yi)
                .sum();
            let bound = dual_sum / alpha;
            if bound < best_dual {
                best_dual = bound;
                // Snapshot the feasible dual y/α behind this bound; the
                // clone is immune to the renormalization below.
                best_duals = y.iter().map(|&yi| yi / alpha).collect();
            }
        } else {
            // Zero-weight column: unbounded growth direction would mean
            // the LP is unbounded, impossible for positive y. Defensive:
            break;
        }

        // Primal step: push the column's bottleneck amount.
        let delta = col
            .entries
            .iter()
            .map(|&(i, a)| oracle.row_limit(i) / a)
            .fold(f64::INFINITY, f64::min);
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }
        raw_value += col.value * delta;
        for &(i, a) in &col.entries {
            loads[i] += delta * a;
            // Multiplicative update; exponent ≤ eps because of bottleneck Δ.
            y[i] *= (eps * delta * a / oracle.row_limit(i)).exp();
        }
        raw.push((col, delta));

        // Certified primal value: scale by max overload.
        let overload = loads
            .iter()
            .enumerate()
            .map(|(i, &l)| l / oracle.row_limit(i))
            .fold(0.0f64, f64::max);
        let primal = if overload > 1.0 {
            raw_value / overload
        } else {
            raw_value
        };
        if primal > 0.0 && best_dual <= (1.0 + eps) * primal {
            break;
        }

        // Renormalize y to dodge overflow; all certificates are
        // scale-invariant in y.
        let ysum: f64 = y.iter().sum();
        if ysum > 1e140 {
            let inv = 1.0 / ysum;
            y.iter_mut().for_each(|v| *v *= inv);
        }
    }

    // Final scaling to a feasible primal.
    let overload = loads
        .iter()
        .enumerate()
        .map(|(i, &l)| l / oracle.row_limit(i))
        .fold(0.0f64, f64::max);
    let scale = if overload > 1.0 { 1.0 / overload } else { 1.0 };
    let primal_value = raw_value * scale;
    let columns = raw.into_iter().map(|(c, amt)| (c, amt * scale)).collect();
    PackingSolution {
        primal_value,
        dual_bound: best_dual,
        columns,
        iterations,
        duals: best_duals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Explicit small packing LP as an oracle (scans all columns).
    struct Explicit {
        b: Vec<f64>,
        cols: Vec<Column>,
    }

    impl ColumnOracle for Explicit {
        fn num_rows(&self) -> usize {
            self.b.len()
        }
        fn row_limit(&self, i: usize) -> f64 {
            self.b[i]
        }
        fn best_column(&self, y: &[f64]) -> Option<Column> {
            self.cols
                .iter()
                .map(|c| {
                    let w: f64 = c.entries.iter().map(|&(i, a)| a * y[i]).sum();
                    (w / c.value, c)
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .map(|(_, c)| c.clone())
        }
    }

    fn col(value: f64, entries: Vec<(usize, f64)>, tag: u64) -> Column {
        Column {
            value,
            entries,
            tag,
        }
    }

    #[test]
    fn single_row_knapsack_relaxation() {
        // max 3a + 1b s.t. a + b <= 10 => put all 10 into a => 30
        let oracle = Explicit {
            b: vec![10.0],
            cols: vec![col(3.0, vec![(0, 1.0)], 0), col(1.0, vec![(0, 1.0)], 1)],
        };
        let sol = solve_packing(&oracle, PackingConfig::default());
        assert!(sol.primal_value <= 30.0 + 1e-9);
        assert!(sol.dual_bound >= 30.0 - 1e-9);
        assert!(
            sol.certified_ratio() <= 1.06,
            "ratio {}",
            sol.certified_ratio()
        );
        assert!(sol.primal_value >= 30.0 / 1.06);
    }

    #[test]
    fn two_row_lp_brackets_optimum() {
        // max a + b s.t. a <= 4 (row0), b <= 2 (row1), a + b <= 5 (row2)
        // optimum: a=3.. a+b<=5 binding with b=2 => obj 5
        let oracle = Explicit {
            b: vec![4.0, 2.0, 5.0],
            cols: vec![
                col(1.0, vec![(0, 1.0), (2, 1.0)], 0),
                col(1.0, vec![(1, 1.0), (2, 1.0)], 1),
            ],
        };
        let cfg = PackingConfig {
            epsilon: 0.02,
            max_iterations: 500_000,
        };
        let sol = solve_packing(&oracle, cfg);
        assert!(sol.primal_value <= 5.0 + 1e-9);
        assert!(sol.dual_bound >= 5.0 - 1e-9);
        assert!(sol.certified_ratio() <= 1.03);
    }

    #[test]
    fn feasibility_of_returned_columns() {
        let oracle = Explicit {
            b: vec![3.0, 7.0],
            cols: vec![
                col(2.0, vec![(0, 1.0), (1, 2.0)], 0),
                col(1.0, vec![(1, 1.0)], 1),
            ],
        };
        let sol = solve_packing(&oracle, PackingConfig::default());
        let mut loads = [0.0; 2];
        let mut value = 0.0;
        for (c, amt) in &sol.columns {
            value += c.value * amt;
            for &(i, a) in &c.entries {
                loads[i] += a * amt;
            }
        }
        assert!(loads[0] <= 3.0 + 1e-7 && loads[1] <= 7.0 + 1e-7);
        assert!((value - sol.primal_value).abs() < 1e-7);
    }

    #[test]
    fn empty_column_set() {
        let oracle = Explicit {
            b: vec![1.0],
            cols: vec![],
        };
        let sol = solve_packing(&oracle, PackingConfig::default());
        assert_eq!(sol.primal_value, 0.0);
        assert_eq!(sol.iterations, 0);
        assert!(sol.duals.is_empty(), "no iteration, no certificate");
    }

    #[test]
    fn returned_duals_certify_the_dual_bound() {
        let oracle = Explicit {
            b: vec![4.0, 2.0, 5.0],
            cols: vec![
                col(1.0, vec![(0, 1.0), (2, 1.0)], 0),
                col(1.0, vec![(1, 1.0), (2, 1.0)], 1),
            ],
        };
        let sol = solve_packing(&oracle, PackingConfig::default());
        assert_eq!(sol.duals.len(), 3);
        // b·y reproduces the reported bound exactly (same arithmetic).
        let objective: f64 = sol
            .duals
            .iter()
            .enumerate()
            .map(|(i, &y)| oracle.b[i] * y)
            .sum();
        assert!(
            (objective - sol.dual_bound).abs() <= 1e-9 * sol.dual_bound.abs(),
            "b·y = {objective} vs dual_bound = {}",
            sol.dual_bound
        );
        // Dual feasibility: y ≥ 0 and every column is covered.
        assert!(sol.duals.iter().all(|&y| y >= 0.0));
        for c in &oracle.cols {
            let covered: f64 = c.entries.iter().map(|&(i, a)| a * sol.duals[i]).sum();
            assert!(
                covered >= c.value - 1e-9,
                "column {} uncovered: {covered} < {}",
                c.tag,
                c.value
            );
        }
    }

    #[test]
    fn agrees_with_simplex_on_random_lps() {
        use crate::simplex::{solve, LpProblem, Relation};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let rows = rng.random_range(2..5);
            let ncols = rng.random_range(2..6);
            let b: Vec<f64> = (0..rows).map(|_| rng.random_range(1.0..8.0)).collect();
            let mut cols = Vec::new();
            let mut lp = LpProblem::new(ncols);
            for j in 0..ncols {
                let value = rng.random_range(0.5..4.0);
                let mut entries = Vec::new();
                for i in 0..rows {
                    if rng.random_range(0.0..1.0) < 0.8 {
                        entries.push((i, rng.random_range(0.2..2.0)));
                    }
                }
                if entries.is_empty() {
                    entries.push((0, 1.0));
                }
                lp.objective[j] = value;
                cols.push(col(value, entries, j as u64));
            }
            for (i, &cap) in b.iter().enumerate().take(rows) {
                let terms: Vec<(usize, f64)> = cols
                    .iter()
                    .enumerate()
                    .flat_map(|(j, c)| {
                        c.entries
                            .iter()
                            .filter(move |&&(r, _)| r == i)
                            .map(move |&(_, a)| (j, a))
                    })
                    .collect();
                lp.add_constraint(terms, Relation::Le, cap);
            }
            let exact = solve(&lp).expect_optimal("random packing LP");
            let oracle = Explicit { b, cols };
            let cfg = PackingConfig {
                epsilon: 0.02,
                max_iterations: 400_000,
            };
            let approx = solve_packing(&oracle, cfg);
            assert!(
                approx.primal_value <= exact.objective + 1e-6,
                "trial {trial}: primal exceeds optimum"
            );
            assert!(
                approx.dual_bound >= exact.objective - 1e-6,
                "trial {trial}: dual bound below optimum"
            );
            assert!(
                approx.primal_value >= exact.objective / 1.05,
                "trial {trial}: primal {} too far from optimum {}",
                approx.primal_value,
                exact.objective
            );
        }
    }
}
