//! Explicit edge-flow formulation of the Figure 1 linear program, solved
//! exactly with the simplex.
//!
//! The path formulation has exponentially many variables; the equivalent
//! compact edge formulation has, per commodity `r`, a flow variable
//! `f_{r,e}` per (directed) edge plus a routed-fraction variable `x_r`,
//! joined by flow conservation. On directed graphs both formulations have
//! equal optima (flow decomposition); for undirected graphs each edge gets
//! two direction variables that share the capacity row.
//!
//! Used for *exact* fractional optima on small/medium instances —
//! ground truth for approximation-ratio and integrality-gap experiments.

use ufp_netgraph::graph::{Graph, GraphKind};

use crate::mcf::Commodity;
use crate::simplex::{solve, LpOutcome, LpProblem, Relation};

/// Variable layout of the edge formulation.
#[derive(Clone, Copy, Debug)]
pub struct UfpLpLayout {
    num_edges: usize,
    num_commodities: usize,
    directions: usize,
}

impl UfpLpLayout {
    /// Index of flow variable of commodity `r` on edge `e` in direction
    /// `dir` (0 = as stored, 1 = reversed; directed graphs only use 0).
    pub fn flow_var(&self, r: usize, e: usize, dir: usize) -> usize {
        debug_assert!(dir < self.directions);
        r * self.num_edges * self.directions + e * self.directions + dir
    }

    /// Index of the routed-fraction variable `x_r`.
    pub fn x_var(&self, r: usize) -> usize {
        self.num_commodities * self.num_edges * self.directions + r
    }

    /// Total number of LP variables.
    pub fn num_vars(&self) -> usize {
        self.num_commodities * self.num_edges * self.directions + self.num_commodities
    }
}

/// Build the exact LP relaxation (Figure 1 of the paper, edge form).
pub fn build_ufp_lp(graph: &Graph, commodities: &[Commodity]) -> (LpProblem, UfpLpLayout) {
    let m = graph.num_edges();
    let nc = commodities.len();
    let directions = match graph.kind() {
        GraphKind::Directed => 1,
        GraphKind::Undirected => 2,
    };
    let layout = UfpLpLayout {
        num_edges: m,
        num_commodities: nc,
        directions,
    };
    let mut lp = LpProblem::new(layout.num_vars());

    // Objective: Σ v_r x_r.
    for (r, c) in commodities.iter().enumerate() {
        lp.objective[layout.x_var(r)] = c.value;
    }

    // Flow conservation per commodity and vertex (skip the target vertex;
    // its row is implied by the others, dropping it removes the rank
    // deficiency). Net outflow = x_r at the source, 0 elsewhere.
    for (r, c) in commodities.iter().enumerate() {
        for v in graph.node_ids() {
            if v == c.dst {
                continue;
            }
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for (e, edge) in graph.edges().iter().enumerate() {
                // direction 0: src -> dst; direction 1 (undirected): dst -> src
                if edge.src == v {
                    terms.push((layout.flow_var(r, e, 0), 1.0));
                    if directions == 2 {
                        terms.push((layout.flow_var(r, e, 1), -1.0));
                    }
                } else if edge.dst == v {
                    terms.push((layout.flow_var(r, e, 0), -1.0));
                    if directions == 2 {
                        terms.push((layout.flow_var(r, e, 1), 1.0));
                    }
                }
            }
            if v == c.src {
                terms.push((layout.x_var(r), -1.0));
            }
            if !terms.is_empty() {
                lp.add_constraint(terms, Relation::Eq, 0.0);
            }
        }
    }

    // Capacity: Σ_r d_r (f_{r,e,0} + f_{r,e,1}) ≤ c_e.
    for (e, edge) in graph.edges().iter().enumerate() {
        let mut terms = Vec::with_capacity(nc * directions);
        for (r, c) in commodities.iter().enumerate() {
            for dir in 0..directions {
                terms.push((layout.flow_var(r, e, dir), c.demand));
            }
        }
        lp.add_constraint(terms, Relation::Le, edge.capacity);
    }

    // Selection: x_r ≤ 1.
    for r in 0..nc {
        lp.add_constraint(vec![(layout.x_var(r), 1.0)], Relation::Le, 1.0);
    }

    (lp, layout)
}

/// Build the Figure 5 linear program: the repetitions variant, identical
/// to Figure 1 except that requests may be satisfied any number of times
/// (`x_s ∈ N` relaxes to `x ≥ 0` with **no** `x_r ≤ 1` selection rows).
/// Its optimum upper-bounds the repetition problem and is what Claim 5.2's
/// dual certificate is measured against.
pub fn build_ufp_repetition_lp(
    graph: &Graph,
    commodities: &[Commodity],
) -> (LpProblem, UfpLpLayout) {
    let (mut lp, layout) = build_ufp_lp(graph, commodities);
    // Drop the trailing `x_r ≤ 1` rows; everything else (conservation,
    // capacity) is shared with Figure 1. The x_r variables stay, now
    // unbounded above — exactly the Figure 5 relaxation.
    let selection_rows = commodities.len();
    lp.constraints
        .truncate(lp.constraints.len() - selection_rows);
    (lp, layout)
}

/// Solve the Figure 5 relaxation exactly; returns the optimal objective
/// and the per-commodity satisfaction counts `x_r ≥ 0`.
pub fn solve_ufp_repetition_lp_exact(
    graph: &Graph,
    commodities: &[Commodity],
) -> ExactFracSolution {
    let (lp, layout) = build_ufp_repetition_lp(graph, commodities);
    match solve(&lp) {
        LpOutcome::Optimal(sol) => ExactFracSolution {
            objective: sol.objective,
            routed_fraction: (0..commodities.len())
                .map(|r| sol.x[layout.x_var(r)])
                .collect(),
        },
        other => panic!("Figure 5 relaxation must be solvable, got {other:?}"),
    }
}

/// Exact fractional optimum of the UFP relaxation.
#[derive(Clone, Debug)]
pub struct ExactFracSolution {
    /// Optimal objective `Σ v_r x_r`.
    pub objective: f64,
    /// Per-commodity routed fraction `x_r ∈ [0, 1]`.
    pub routed_fraction: Vec<f64>,
}

/// Solve the relaxation exactly. Panics on infeasible/unbounded, which
/// cannot occur for well-formed instances (x = 0 is always feasible and
/// the objective is bounded by Σ v_r).
pub fn solve_ufp_lp_exact(graph: &Graph, commodities: &[Commodity]) -> ExactFracSolution {
    let (lp, layout) = build_ufp_lp(graph, commodities);
    match solve(&lp) {
        LpOutcome::Optimal(sol) => ExactFracSolution {
            objective: sol.objective,
            routed_fraction: (0..commodities.len())
                .map(|r| sol.x[layout.x_var(r)])
                .collect(),
        },
        other => panic!("UFP relaxation must be solvable, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufp_netgraph::graph::GraphBuilder;
    use ufp_netgraph::ids::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn commodity(src: u32, dst: u32, demand: f64, value: f64) -> Commodity {
        Commodity {
            src: n(src),
            dst: n(dst),
            demand,
            value,
        }
    }

    #[test]
    fn single_edge_exact() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 1.0);
        let g = b.build();
        // Two unit-demand commodities, capacity 1: fractional optimum
        // routes the valuable one fully.
        let c = vec![commodity(0, 1, 1.0, 3.0), commodity(0, 1, 1.0, 1.0)];
        let sol = solve_ufp_lp_exact(&g, &c);
        assert!((sol.objective - 3.0).abs() < 1e-7);
        assert!((sol.routed_fraction[0] - 1.0).abs() < 1e-7);
        assert!(sol.routed_fraction[1].abs() < 1e-7);
    }

    #[test]
    fn fractional_split_beats_integral() {
        // Capacity 1.5, two unit-demand value-1 commodities: fractional
        // OPT = 1.5 (route 1 + 0.5), integral OPT = 1.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 1.5);
        let g = b.build();
        let c = vec![commodity(0, 1, 1.0, 1.0), commodity(0, 1, 1.0, 1.0)];
        let sol = solve_ufp_lp_exact(&g, &c);
        assert!((sol.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn multipath_splitting() {
        // Demand 2 over two capacity-1 disjoint paths: x_r = 1 via split.
        let mut b = GraphBuilder::directed(4);
        b.add_edge(n(0), n(1), 1.0);
        b.add_edge(n(1), n(3), 1.0);
        b.add_edge(n(0), n(2), 1.0);
        b.add_edge(n(2), n(3), 1.0);
        let g = b.build();
        let c = vec![commodity(0, 3, 2.0, 4.0)];
        let sol = solve_ufp_lp_exact(&g, &c);
        assert!((sol.objective - 4.0).abs() < 1e-7);
    }

    #[test]
    fn undirected_edge_shared_capacity() {
        // One undirected edge capacity 1; two opposite-direction
        // unit-demand commodities: they share the capacity.
        let mut b = GraphBuilder::undirected(2);
        b.add_edge(n(0), n(1), 1.0);
        let g = b.build();
        let c = vec![commodity(0, 1, 1.0, 1.0), commodity(1, 0, 1.0, 1.0)];
        let sol = solve_ufp_lp_exact(&g, &c);
        assert!(
            (sol.objective - 1.0).abs() < 1e-7,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn unreachable_commodity_is_zero() {
        let g = GraphBuilder::directed(3).build();
        let c = vec![commodity(0, 2, 1.0, 5.0)];
        let sol = solve_ufp_lp_exact(&g, &c);
        assert!(sol.objective.abs() < 1e-9);
        assert!(sol.routed_fraction[0].abs() < 1e-9);
    }

    #[test]
    fn repetition_lp_drops_the_selection_cap() {
        // Single edge capacity 5, one unit-demand request of value 1:
        // Figure 1 optimum = 1 (x_r <= 1), Figure 5 optimum = 5.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(n(0), n(1), 5.0);
        let g = b.build();
        let c = vec![commodity(0, 1, 1.0, 1.0)];
        let fig1 = solve_ufp_lp_exact(&g, &c);
        assert!((fig1.objective - 1.0).abs() < 1e-7);
        let fig5 = solve_ufp_repetition_lp_exact(&g, &c);
        assert!(
            (fig5.objective - 5.0).abs() < 1e-7,
            "got {}",
            fig5.objective
        );
        assert!((fig5.routed_fraction[0] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn agrees_with_garg_konemann() {
        use crate::mcf::solve_fractional_ufp;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use ufp_netgraph::generators::gnm_digraph;
        let mut rng = StdRng::seed_from_u64(11);
        let g = gnm_digraph(8, 24, (1.0, 3.0), &mut rng);
        let c = vec![
            commodity(0, 7, 0.8, 2.0),
            commodity(1, 6, 0.5, 1.0),
            commodity(2, 5, 1.0, 3.0),
        ];
        let exact = solve_ufp_lp_exact(&g, &c);
        let approx = solve_fractional_ufp(&g, &c, 0.02, 400_000);
        assert!(
            approx.value <= exact.objective + 1e-6,
            "GK primal {} above exact {}",
            approx.value,
            exact.objective
        );
        assert!(
            approx.upper_bound >= exact.objective - 1e-6,
            "GK bound {} below exact {}",
            approx.upper_bound,
            exact.objective
        );
        if exact.objective > 1e-9 {
            assert!(
                approx.value >= exact.objective / 1.05,
                "GK primal {} too far below exact {}",
                approx.value,
                exact.objective
            );
        }
    }
}
