//! Weak-duality utilities for the Figure 1 / Figure 5 linear programs.
//!
//! The paper's analysis (Claims 3.6, 5.2) hinges on exhibiting feasible
//! dual solutions whose objective upper-bounds OPT. These helpers verify
//! such certificates mechanically for any [`LpProblem`]: dual feasibility
//! of a candidate `y` and the weak-duality inequality
//! `c·x ≤ b·y` for every feasible primal/dual pair.

use crate::simplex::{LpProblem, Relation};

/// The dual objective `b·y`.
pub fn dual_objective(lp: &LpProblem, duals: &[f64]) -> f64 {
    lp.constraints
        .iter()
        .zip(duals)
        .map(|(c, y)| c.rhs * y)
        .sum()
}

/// Dual feasibility for `maximize c·x s.t. Ax {≤,=,≥} b, x ≥ 0`:
/// sign conditions per row (`≤` ⇒ y ≥ 0, `≥` ⇒ y ≤ 0, `=` ⇒ free) and
/// covering conditions per variable (`Σ_i a_ij y_i ≥ c_j`).
pub fn is_dual_feasible(lp: &LpProblem, duals: &[f64], tol: f64) -> bool {
    if duals.len() != lp.constraints.len() {
        return false;
    }
    for (c, &y) in lp.constraints.iter().zip(duals) {
        let sign_ok = match c.relation {
            Relation::Le => y >= -tol,
            Relation::Ge => y <= tol,
            Relation::Eq => true,
        };
        if !sign_ok {
            return false;
        }
    }
    let mut covered = vec![0.0f64; lp.num_vars()];
    for (c, &y) in lp.constraints.iter().zip(duals) {
        for &(j, a) in &c.terms {
            covered[j] += a * y;
        }
    }
    covered
        .iter()
        .zip(&lp.objective)
        .all(|(&lhs, &cj)| lhs >= cj - tol)
}

/// The weak-duality gap `b·y − c·x` for a feasible pair; panics (debug) if
/// either side is infeasible — the caller is asserting a certificate.
pub fn weak_duality_gap(lp: &LpProblem, x: &[f64], duals: &[f64], tol: f64) -> f64 {
    debug_assert!(lp.is_primal_feasible(x, tol), "primal certificate invalid");
    debug_assert!(is_dual_feasible(lp, duals, tol), "dual certificate invalid");
    dual_objective(lp, duals) - lp.objective_value(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{solve, LpProblem, Relation};

    fn knapsack_lp() -> LpProblem {
        // max 3a + 2b s.t. a + b <= 4, a <= 3
        let mut lp = LpProblem::new(2);
        lp.objective = vec![3.0, 2.0];
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        lp
    }

    #[test]
    fn optimal_duals_are_feasible_with_zero_gap() {
        let lp = knapsack_lp();
        let s = solve(&lp).expect_optimal("knapsack");
        assert!(is_dual_feasible(&lp, &s.duals, 1e-7));
        let gap = weak_duality_gap(&lp, &s.x, &s.duals, 1e-7);
        assert!(
            gap.abs() < 1e-6,
            "strong duality should give zero gap, got {gap}"
        );
    }

    #[test]
    fn scaled_up_duals_stay_feasible_with_positive_gap() {
        let lp = knapsack_lp();
        let s = solve(&lp).expect_optimal("knapsack");
        let inflated: Vec<f64> = s.duals.iter().map(|y| y * 2.0).collect();
        assert!(is_dual_feasible(&lp, &inflated, 1e-7));
        let gap = weak_duality_gap(&lp, &s.x, &inflated, 1e-7);
        assert!(gap > 0.0);
    }

    #[test]
    fn undercovering_duals_rejected() {
        let lp = knapsack_lp();
        assert!(!is_dual_feasible(&lp, &[0.0, 0.0], 1e-9));
        assert!(!is_dual_feasible(&lp, &[2.0], 1e-9)); // wrong length
        assert!(!is_dual_feasible(&lp, &[-1.0, 5.0], 1e-9)); // sign violation
    }

    #[test]
    fn dual_objective_linear_in_rhs() {
        let lp = knapsack_lp();
        assert!((dual_objective(&lp, &[1.0, 2.0]) - 10.0).abs() < 1e-12);
    }
}
