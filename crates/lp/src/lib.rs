//! # ufp-lp
//!
//! Linear-programming substrate for the truthful unsplittable-flow
//! library. Two complementary solvers:
//!
//! * [`simplex`] — an exact dense two-phase primal simplex with dual
//!   extraction, for ground-truth fractional optima on small and medium
//!   instances (the paper's Figure 1 and Figure 5 programs, built
//!   explicitly by [`ufp_lp`]).
//! * [`packing`] — a self-certifying Garg–Könemann multiplicative-weights
//!   solver for packing LPs accessed through a column oracle, scaling to
//!   large instances; [`mcf`] instantiates it for the fractional UFP
//!   relaxation with a Dijkstra oracle (the machinery of [9, 8] in the
//!   paper's bibliography).
//!
//! Both report primal *and* dual certificates, so every approximation
//! ratio computed elsewhere in the workspace is certified rather than
//! assumed. [`duality`] provides the weak-duality checkers used in tests.

pub mod dense;
pub mod duality;
pub mod mcf;
pub mod packing;
pub mod simplex;
pub mod ufp_lp;

pub use mcf::{
    certified_duality_gap, sanitize_commodities, solve_fractional_ufp,
    solve_fractional_ufp_with_caps, Commodity, FracFlow, FracUfpSolution,
};
pub use packing::{solve_packing, Column, ColumnOracle, PackingConfig, PackingSolution};
pub use simplex::{solve, LpOutcome, LpProblem, LpSolution, Relation};
pub use ufp_lp::{
    build_ufp_lp, build_ufp_repetition_lp, solve_ufp_lp_exact, solve_ufp_repetition_lp_exact,
    ExactFracSolution,
};
