//! Reasonable iterative *bundle*-minimizing algorithms (Definitions
//! 4.3/4.4) — the auction analog of the path-minimizing family, used to
//! reproduce the 4/3 lower bound of Theorem 4.5.
//!
//! An algorithm in this family repeatedly selects, among unsatisfied bids
//! whose bundles still fit in the residual multiplicities, one minimizing
//! a reasonable priority of the current allocation counts, and allocates
//! it. Like the flow version, the lower bound is tie-break-adversarial:
//! on the Figure 4 instance all bundles have identical size and value, so
//! the tie-break alone dictates the schedule; listing the type-1 requests
//! first and breaking ties toward lower bid ids realizes the adversary.

use crate::instance::{AuctionInstance, AuctionSolution, Bid, BidId};

/// Allocation-state context for bundle scores.
pub struct BundleCtx<'a> {
    /// The auction.
    pub instance: &'a AuctionInstance,
    /// Copies of each item allocated so far (`f_u`).
    pub allocated: &'a [f64],
    /// ε for exponential scores.
    pub epsilon: f64,
    /// `B = min_u c_u`.
    pub b: f64,
}

/// A reasonable bundle priority (Definition 4.3). Lower is better.
pub trait BundleScore: Sync {
    /// Name for tables.
    fn name(&self) -> &'static str;
    /// Score the bundle; the engine minimizes.
    fn score(&self, ctx: &BundleCtx<'_>, bid: &Bid) -> f64;
}

/// `h(s) = (1/v_s)·Σ_{u∈s} (1/c_u)·e^{εB f_u/c_u}` — Algorithm 2's
/// function (shown reasonable in §4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct MucaPrimalDualScore;

impl BundleScore for MucaPrimalDualScore {
    fn name(&self) -> &'static str {
        "h (primal-dual)"
    }
    fn score(&self, ctx: &BundleCtx<'_>, bid: &Bid) -> f64 {
        let sum: f64 = bid
            .bundle
            .iter()
            .map(|u| {
                let c = ctx.instance.multiplicity(*u);
                (ctx.epsilon * ctx.b * ctx.allocated[u.index()] / c).exp() / c
            })
            .sum();
        sum / bid.value
    }
}

/// `(1/v)·|U_r|` — congestion-blind bundle size.
#[derive(Clone, Copy, Debug, Default)]
pub struct BundleSizeScore;

impl BundleScore for BundleSizeScore {
    fn name(&self) -> &'static str {
        "bundle size"
    }
    fn score(&self, _ctx: &BundleCtx<'_>, bid: &Bid) -> f64 {
        bid.size() as f64 / bid.value
    }
}

/// `(1/v)·Σ_u f_u/c_u` — linear congestion (also reasonable).
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearCongestionScore;

impl BundleScore for LinearCongestionScore {
    fn name(&self) -> &'static str {
        "linear congestion"
    }
    fn score(&self, ctx: &BundleCtx<'_>, bid: &Bid) -> f64 {
        let sum: f64 = bid
            .bundle
            .iter()
            .map(|u| ctx.allocated[u.index()] / ctx.instance.multiplicity(*u))
            .sum();
        (sum + bid.size() as f64 * 1e-12) / bid.value
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BundleEngineConfig {
    /// ε for exponential scores.
    pub epsilon: f64,
}

impl Default for BundleEngineConfig {
    fn default() -> Self {
        BundleEngineConfig { epsilon: 0.5 }
    }
}

/// Result of a bundle-engine run.
#[derive(Clone, Debug)]
pub struct BundleEngineResult {
    /// The allocation.
    pub solution: AuctionSolution,
}

/// Run a reasonable iterative bundle-minimizing algorithm: allocate until
/// no unsatisfied bid fits in the residual multiplicities. Ties break to
/// the lowest bid id (the Figure 4 adversary's schedule when type-1
/// requests are listed first).
pub fn iterative_bundle_minimizer(
    instance: &AuctionInstance,
    score: &dyn BundleScore,
    config: &BundleEngineConfig,
) -> BundleEngineResult {
    let b = instance.bound_b();
    let mut allocated = vec![0.0f64; instance.num_items()];
    let mut remaining: Vec<BidId> = instance.bid_ids().collect();
    let mut solution = AuctionSolution::empty();

    loop {
        let ctx = BundleCtx {
            instance,
            allocated: &allocated,
            epsilon: config.epsilon,
            b,
        };
        // Feasible candidates under residual multiplicities.
        let mut best: Option<(f64, usize)> = None;
        for (i, &bid) in remaining.iter().enumerate() {
            let br = instance.bid(bid);
            let fits = br
                .bundle
                .iter()
                .all(|u| allocated[u.index()] + 1.0 <= instance.multiplicity(*u) + 1e-9);
            if !fits {
                continue;
            }
            let s = score.score(&ctx, br);
            let better = match best {
                None => true,
                Some((bs, _)) => s < bs,
            };
            if better {
                best = Some((s, i));
            }
        }
        let Some((_, idx)) = best else {
            break;
        };
        let chosen = remaining.remove(idx);
        for u in &instance.bid(chosen).bundle {
            allocated[u.index()] += 1.0;
        }
        solution.winners.push(chosen);
    }
    BundleEngineResult { solution }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ItemId;

    fn u(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn fills_to_multiplicity() {
        let a = AuctionInstance::new(
            vec![3.0],
            (0..5).map(|_| Bid::new(vec![u(0)], 1.0)).collect(),
        );
        let res =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        assert_eq!(res.solution.len(), 3);
        assert!(res.solution.check_feasible(&a).is_ok());
    }

    #[test]
    fn ties_break_to_lowest_bid() {
        let a = AuctionInstance::new(
            vec![1.0, 1.0],
            vec![Bid::new(vec![u(0)], 1.0), Bid::new(vec![u(1)], 1.0)],
        );
        let res =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        assert_eq!(res.solution.winners[0], BidId(0));
        assert_eq!(res.solution.len(), 2);
    }

    #[test]
    fn all_scores_feasible_and_saturating() {
        let a = AuctionInstance::new(
            vec![2.0, 2.0, 2.0],
            vec![
                Bid::new(vec![u(0), u(1)], 2.0),
                Bid::new(vec![u(1), u(2)], 1.0),
                Bid::new(vec![u(0)], 1.0),
                Bid::new(vec![u(2)], 3.0),
                Bid::new(vec![u(0), u(1), u(2)], 2.0),
            ],
        );
        let scores: Vec<Box<dyn BundleScore>> = vec![
            Box::new(MucaPrimalDualScore),
            Box::new(BundleSizeScore),
            Box::new(LinearCongestionScore),
        ];
        for s in &scores {
            let res = iterative_bundle_minimizer(&a, s.as_ref(), &BundleEngineConfig::default());
            assert!(res.solution.check_feasible(&a).is_ok(), "{}", s.name());
            // engine must be maximal: no remaining bid fits afterwards
            let loads = res.solution.item_loads(&a);
            for bid in a.bid_ids() {
                if res.solution.contains(bid) {
                    continue;
                }
                let fits = a
                    .bid(bid)
                    .bundle
                    .iter()
                    .all(|it| loads[it.index()] + 1.0 <= a.multiplicity(*it) + 1e-9);
                assert!(
                    !fits,
                    "score {} left {bid} unallocated but feasible",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn prefers_value_density() {
        let a = AuctionInstance::new(
            vec![1.0],
            vec![Bid::new(vec![u(0)], 1.0), Bid::new(vec![u(0)], 5.0)],
        );
        let res =
            iterative_bundle_minimizer(&a, &MucaPrimalDualScore, &BundleEngineConfig::default());
        assert_eq!(res.solution.winners, vec![BidId(1)]);
    }
}
