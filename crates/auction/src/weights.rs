//! Log-space item weights `y_u` — the auction analog of the UFP dual
//! weights, with the same overflow-proof representation (see the
//! `ufp-core::weights` docs for the full rationale; the auction guard
//! `e^{ε(B−1)}` overflows `f64` just as easily).

use crate::instance::ItemId;

const RECENTER_AT: f64 = 600.0;

/// Dual item weights for Algorithm 2, kept in log space.
#[derive(Clone, Debug)]
pub struct ItemWeights {
    ln_y: Vec<f64>,
    w: Vec<f64>,
    shift: f64,
    max_ln_y: f64,
    mults: Vec<f64>,
}

impl ItemWeights {
    /// Initialize `y_u = 1/c_u` (line 2 of Algorithm 2).
    pub fn new(multiplicities: &[f64]) -> Self {
        let mults = multiplicities.to_vec();
        let ln_y: Vec<f64> = mults.iter().map(|c| -(c.ln())).collect();
        let max_ln_y = ln_y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let shift = if max_ln_y.is_finite() { max_ln_y } else { 0.0 };
        let w = ln_y.iter().map(|l| (l - shift).exp()).collect();
        ItemWeights {
            ln_y,
            w,
            shift,
            max_ln_y,
            mults,
        }
    }

    /// Materialized weights (`∝ y_u`), for bundle scoring.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Scale: `y_u = weights()[u] · e^{shift}`.
    #[inline]
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// `y_u ← y_u · e^{exponent}` (line 5: `exponent = εB/c_u`).
    pub fn bump(&mut self, u: ItemId, exponent: f64) {
        debug_assert!(exponent >= 0.0);
        let i = u.index();
        self.ln_y[i] += exponent;
        if self.ln_y[i] > self.max_ln_y {
            self.max_ln_y = self.ln_y[i];
        }
        if self.max_ln_y - self.shift > RECENTER_AT {
            self.shift = self.max_ln_y;
            for (w, l) in self.w.iter_mut().zip(&self.ln_y) {
                *w = (l - self.shift).exp();
            }
        } else {
            self.w[i] = (self.ln_y[i] - self.shift).exp();
        }
    }

    /// `ln Σ_u c_u y_u` — the guard quantity, via stable log-sum-exp.
    pub fn ln_dual_sum(&self) -> f64 {
        let sum: f64 = self.w.iter().zip(&self.mults).map(|(w, c)| w * c).sum();
        sum.ln() + self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_dual_sum_is_item_count() {
        let w = ItemWeights::new(&[2.0, 5.0, 9.0]);
        assert!((w.ln_dual_sum() - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn bump_and_ratio() {
        let mut w = ItemWeights::new(&[1.0, 1.0]);
        w.bump(ItemId(0), 2.0);
        let r = w.weights()[0] / w.weights()[1];
        assert!((r - (2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn survives_huge_exponents() {
        let mut w = ItemWeights::new(&[1.0, 1.0]);
        for _ in 0..50 {
            w.bump(ItemId(0), 200.0);
        }
        assert!((w.ln_dual_sum() - 10_000.0).abs() < 1e-6);
        assert!(w.weights()[0].is_finite());
    }
}
