//! Single-minded multi-unit combinatorial auction instances.
//!
//! `m` non-identical items with multiplicities `c_u`; each bid names a
//! bundle `U_r ⊆ U` and a value `v_r`. A feasible allocation selects bids
//! so that no item is allocated beyond its multiplicity. The paper's
//! bound parameter is `B = min_u c_u`.

use std::fmt;

/// Identifier of an item (index into the multiplicity vector).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// Identifier of a bid (index into the bid vector).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BidId(pub u32);

impl ItemId {
    /// Index for `Vec` access.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BidId {
    /// Index for `Vec` access.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for BidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A single-minded bid `(U_r, v_r)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Bid {
    /// The desired bundle, kept sorted and duplicate-free.
    pub bundle: Vec<ItemId>,
    /// The declared value `v_r > 0`.
    pub value: f64,
}

impl Bid {
    /// Construct a bid; the bundle is sorted and deduplicated.
    pub fn new(mut bundle: Vec<ItemId>, value: f64) -> Self {
        assert!(!bundle.is_empty(), "bundles must be non-empty");
        assert!(
            value.is_finite() && value > 0.0,
            "bid value must be positive and finite, got {value}"
        );
        bundle.sort_unstable();
        bundle.dedup();
        Bid { bundle, value }
    }

    /// Bundle size `|U_r|`.
    pub fn size(&self) -> usize {
        self.bundle.len()
    }
}

/// An auction instance.
#[derive(Clone, Debug)]
pub struct AuctionInstance {
    multiplicities: Vec<f64>,
    bids: Vec<Bid>,
}

impl AuctionInstance {
    /// Build an instance, validating item references and multiplicities.
    pub fn new(multiplicities: Vec<f64>, bids: Vec<Bid>) -> Self {
        for (u, &c) in multiplicities.iter().enumerate() {
            assert!(
                c.is_finite() && c >= 1.0,
                "item {u} multiplicity must be >= 1, got {c}"
            );
        }
        for (i, b) in bids.iter().enumerate() {
            for u in &b.bundle {
                assert!(
                    u.index() < multiplicities.len(),
                    "bid {i} references item {u:?} out of range"
                );
            }
        }
        AuctionInstance {
            multiplicities,
            bids,
        }
    }

    /// Number of distinct items `m`.
    pub fn num_items(&self) -> usize {
        self.multiplicities.len()
    }

    /// Number of bids `|R|`.
    pub fn num_bids(&self) -> usize {
        self.bids.len()
    }

    /// Multiplicity `c_u`.
    #[inline]
    pub fn multiplicity(&self, u: ItemId) -> f64 {
        self.multiplicities[u.index()]
    }

    /// All multiplicities.
    pub fn multiplicities(&self) -> &[f64] {
        &self.multiplicities
    }

    /// All bids, indexed by [`BidId`].
    pub fn bids(&self) -> &[Bid] {
        &self.bids
    }

    /// The bid behind `id`.
    #[inline]
    pub fn bid(&self, id: BidId) -> &Bid {
        &self.bids[id.index()]
    }

    /// Iterator over bid ids.
    pub fn bid_ids(&self) -> impl Iterator<Item = BidId> + '_ {
        (0..self.bids.len() as u32).map(BidId)
    }

    /// The paper's bound `B = min_u c_u`.
    pub fn bound_b(&self) -> f64 {
        self.multiplicities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether `B ≥ ln(m)/ε²` holds for the given ε.
    pub fn meets_large_multiplicity_bound(&self, epsilon: f64) -> bool {
        let m = self.num_items().max(2) as f64;
        self.bound_b() >= m.ln() / (epsilon * epsilon)
    }

    /// Sum of all bid values.
    pub fn total_value(&self) -> f64 {
        self.bids.iter().map(|b| b.value).sum()
    }

    /// Clone with bid `id` declaring a different value (mechanism probes).
    pub fn with_declared_value(&self, id: BidId, value: f64) -> AuctionInstance {
        let mut bids = self.bids.clone();
        bids[id.index()] = Bid::new(bids[id.index()].bundle.clone(), value);
        AuctionInstance {
            multiplicities: self.multiplicities.clone(),
            bids,
        }
    }

    /// Clone with bid `id` declaring a different bundle (the *unknown
    /// single-minded* setting of Corollary 4.2, where agents may lie about
    /// the bundle too).
    pub fn with_declared_bundle(&self, id: BidId, bundle: Vec<ItemId>) -> AuctionInstance {
        let mut bids = self.bids.clone();
        bids[id.index()] = Bid::new(bundle, bids[id.index()].value);
        AuctionInstance {
            multiplicities: self.multiplicities.clone(),
            bids,
        }
    }
}

/// An allocation: the set of winning bids.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuctionSolution {
    /// Winning bids in selection order.
    pub winners: Vec<BidId>,
}

/// Feasibility violations for auction allocations.
#[derive(Clone, Debug, PartialEq)]
pub enum AuctionFeasibilityError {
    /// The same bid appears twice.
    DuplicateWinner(BidId),
    /// An item is allocated beyond its multiplicity.
    MultiplicityExceeded {
        /// The overloaded item.
        item: ItemId,
        /// Copies allocated.
        load: f64,
        /// Its multiplicity.
        multiplicity: f64,
    },
}

impl AuctionSolution {
    /// Empty allocation.
    pub fn empty() -> Self {
        AuctionSolution::default()
    }

    /// Total value of the winners.
    pub fn value(&self, instance: &AuctionInstance) -> f64 {
        self.winners.iter().map(|w| instance.bid(*w).value).sum()
    }

    /// Number of winners.
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// True when no bid won.
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// Whether `id` won.
    pub fn contains(&self, id: BidId) -> bool {
        self.winners.contains(&id)
    }

    /// Copies of each item allocated.
    pub fn item_loads(&self, instance: &AuctionInstance) -> Vec<f64> {
        let mut loads = vec![0.0; instance.num_items()];
        for w in &self.winners {
            for u in &instance.bid(*w).bundle {
                loads[u.index()] += 1.0;
            }
        }
        loads
    }

    /// Full feasibility check.
    pub fn check_feasible(
        &self,
        instance: &AuctionInstance,
    ) -> Result<(), AuctionFeasibilityError> {
        let mut seen = vec![false; instance.num_bids()];
        for w in &self.winners {
            if seen[w.index()] {
                return Err(AuctionFeasibilityError::DuplicateWinner(*w));
            }
            seen[w.index()] = true;
        }
        let loads = self.item_loads(instance);
        for (u, &load) in loads.iter().enumerate() {
            let multiplicity = instance.multiplicities[u];
            if load > multiplicity + 1e-9 {
                return Err(AuctionFeasibilityError::MultiplicityExceeded {
                    item: ItemId(u as u32),
                    load,
                    multiplicity,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> ItemId {
        ItemId(i)
    }

    fn small_auction() -> AuctionInstance {
        AuctionInstance::new(
            vec![2.0, 3.0, 2.0],
            vec![
                Bid::new(vec![u(0), u(1)], 4.0),
                Bid::new(vec![u(1), u(2)], 3.0),
                Bid::new(vec![u(0)], 1.0),
            ],
        )
    }

    #[test]
    fn accessors() {
        let a = small_auction();
        assert_eq!(a.num_items(), 3);
        assert_eq!(a.num_bids(), 3);
        assert_eq!(a.bound_b(), 2.0);
        assert_eq!(a.total_value(), 8.0);
        assert_eq!(a.bid(BidId(0)).size(), 2);
    }

    #[test]
    fn bundles_are_sorted_and_deduped() {
        let b = Bid::new(vec![u(2), u(0), u(2), u(1)], 1.0);
        assert_eq!(b.bundle, vec![u(0), u(1), u(2)]);
    }

    #[test]
    fn solution_value_and_loads() {
        let a = small_auction();
        let sol = AuctionSolution {
            winners: vec![BidId(0), BidId(1)],
        };
        assert_eq!(sol.value(&a), 7.0);
        assert_eq!(sol.item_loads(&a), vec![1.0, 2.0, 1.0]);
        assert!(sol.check_feasible(&a).is_ok());
    }

    #[test]
    fn multiplicity_violation_detected() {
        let a = AuctionInstance::new(
            vec![1.0],
            vec![Bid::new(vec![u(0)], 1.0), Bid::new(vec![u(0)], 1.0)],
        );
        let sol = AuctionSolution {
            winners: vec![BidId(0), BidId(1)],
        };
        assert!(matches!(
            sol.check_feasible(&a),
            Err(AuctionFeasibilityError::MultiplicityExceeded { .. })
        ));
    }

    #[test]
    fn duplicate_winner_detected() {
        let a = small_auction();
        let sol = AuctionSolution {
            winners: vec![BidId(0), BidId(0)],
        };
        assert_eq!(
            sol.check_feasible(&a),
            Err(AuctionFeasibilityError::DuplicateWinner(BidId(0)))
        );
    }

    #[test]
    fn declaration_probes() {
        let a = small_auction();
        let a2 = a.with_declared_value(BidId(1), 99.0);
        assert_eq!(a2.bid(BidId(1)).value, 99.0);
        assert_eq!(a.bid(BidId(1)).value, 3.0);
        let a3 = a.with_declared_bundle(BidId(1), vec![u(2)]);
        assert_eq!(a3.bid(BidId(1)).bundle, vec![u(2)]);
        assert_eq!(a3.bid(BidId(1)).value, 3.0);
    }

    #[test]
    fn large_multiplicity_bound() {
        let a = AuctionInstance::new(vec![50.0, 60.0], vec![Bid::new(vec![u(0)], 1.0)]);
        assert!(a.meets_large_multiplicity_bound(0.2)); // needs ln(2)/0.04 ≈ 17.3
        assert!(!a.meets_large_multiplicity_bound(0.1)); // needs 69.3
    }

    #[test]
    #[should_panic]
    fn empty_bundle_rejected() {
        Bid::new(vec![], 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_item_rejected() {
        AuctionInstance::new(vec![1.0], vec![Bid::new(vec![u(5)], 1.0)]);
    }
}
