//! Algorithm 2 — `Bounded-MUCA(ε)`: the monotone deterministic
//! `((1+ε)·e/(e−1))`-approximation for the `Ω(ln m / ε²)`-bounded
//! multi-unit combinatorial auction (Theorem 4.1).
//!
//! This is Algorithm 1 with the path-selection step collapsed: bundles are
//! fixed, so the "shortest path" of a request is just its bundle, and the
//! selection rule is `min_r (1/v_r)·Σ_{u∈U_r} y_u`. The same log-space
//! weight treatment and the same Claim 3.6 dual certificate apply (the
//! auction LP is the special case of Figure 1 with `S_r = {U_r}` and unit
//! demands).

use crate::instance::{AuctionInstance, AuctionSolution, BidId};
use crate::weights::ItemWeights;

/// Why the auction loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McaStopReason {
    /// All bids were satisfied — the outcome is optimal.
    Exhausted,
    /// The dual guard `Σ c_u y_u > e^{ε(B−1)}` tripped.
    Guard,
}

/// Per-iteration analysis record (the auction analog of the UFP trace).
#[derive(Clone, Copy, Debug)]
pub struct McaIterationRecord {
    /// Selected bid.
    pub selected: BidId,
    /// `ln α(i)` — log of the winning normalized bundle weight.
    pub ln_alpha: f64,
    /// `ln D₁(i)` before the update.
    pub ln_d1: f64,
    /// Value allocated before this iteration (`D₂(i)`).
    pub allocated_value_before: f64,
}

impl McaIterationRecord {
    /// Claim 3.6-style bound: `D₁(i)/α(i) + D₂(i)`.
    pub fn dual_candidate(&self) -> f64 {
        (self.ln_d1 - self.ln_alpha).exp() + self.allocated_value_before
    }
}

/// Configuration for [`bounded_muca`].
#[derive(Clone, Copy, Debug)]
pub struct BoundedMucaConfig {
    /// Accuracy parameter ε ∈ (0, 1]; Theorem 4.1 calls the algorithm
    /// with ε/6.
    pub epsilon: f64,
}

impl Default for BoundedMucaConfig {
    fn default() -> Self {
        BoundedMucaConfig { epsilon: 0.1 }
    }
}

impl BoundedMucaConfig {
    /// Configuration with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must lie in (0,1]");
        BoundedMucaConfig { epsilon }
    }
}

/// Result of a [`bounded_muca`] run.
#[derive(Clone, Debug)]
pub struct MucaRunResult {
    /// Winning bids.
    pub solution: AuctionSolution,
    /// Per-iteration records.
    pub records: Vec<McaIterationRecord>,
    /// Stop reason.
    pub stop_reason: McaStopReason,
}

impl MucaRunResult {
    /// Certified upper bound on the optimal allocation value.
    pub fn dual_upper_bound(&self) -> Option<f64> {
        let best = self
            .records
            .iter()
            .map(McaIterationRecord::dual_candidate)
            .fold(f64::INFINITY, f64::min);
        best.is_finite().then_some(best)
    }

    /// Certified upper bound tightened with the trivial `OPT ≤ Σ v_r`
    /// (exhausted runs certify ratio 1 — the paper's `L = ∅` case).
    pub fn tight_upper_bound(&self, instance: &AuctionInstance) -> Option<f64> {
        self.dual_upper_bound()
            .map(|d| d.min(instance.total_value()))
    }

    /// Certified ratio `bound / value`.
    pub fn certified_ratio(&self, instance: &AuctionInstance) -> Option<f64> {
        let v = self.solution.value(instance);
        if v <= 0.0 {
            return None;
        }
        self.tight_upper_bound(instance).map(|d| d / v)
    }
}

/// Run Algorithm 2.
pub fn bounded_muca(instance: &AuctionInstance, config: &BoundedMucaConfig) -> MucaRunResult {
    assert!(
        config.epsilon > 0.0 && config.epsilon <= 1.0,
        "epsilon must lie in (0, 1]"
    );
    let eps = config.epsilon;
    let b = instance.bound_b();
    let ln_guard = eps * (b - 1.0);

    let mut weights = ItemWeights::new(instance.multiplicities());
    let mut remaining: Vec<BidId> = instance.bid_ids().collect();
    let mut solution = AuctionSolution::empty();
    let mut allocated_value = 0.0f64;
    let mut records = Vec::with_capacity(remaining.len());

    let stop_reason = loop {
        if remaining.is_empty() {
            break McaStopReason::Exhausted;
        }
        let ln_d1 = weights.ln_dual_sum();
        if ln_d1 > ln_guard {
            break McaStopReason::Guard;
        }

        // Line 4: r̂ = argmin (1/v_r)·Σ_{u∈U_r} y_u, ties to lowest id
        // (remaining is kept sorted ascending).
        let w = weights.weights();
        let mut best: Option<(f64, usize)> = None;
        for (i, &bid) in remaining.iter().enumerate() {
            let br = instance.bid(bid);
            let sum: f64 = br.bundle.iter().map(|u| w[u.index()]).sum();
            let score = sum / br.value;
            let better = match best {
                None => true,
                Some((bs, _)) => score < bs,
            };
            if better {
                best = Some((score, i));
            }
        }
        let (score, idx) = best.expect("remaining is non-empty");
        let chosen = remaining.remove(idx);

        let ln_alpha = if score > 0.0 {
            score.ln() + weights.shift()
        } else {
            f64::NEG_INFINITY
        };
        records.push(McaIterationRecord {
            selected: chosen,
            ln_alpha,
            ln_d1,
            allocated_value_before: allocated_value,
        });

        // Line 5: y_u ← y_u · e^{εB/c_u} over the bundle.
        for u in &instance.bid(chosen).bundle {
            let c = instance.multiplicity(*u);
            weights.bump(*u, eps * b / c);
        }
        allocated_value += instance.bid(chosen).value;
        solution.winners.push(chosen);
    };

    MucaRunResult {
        solution,
        records,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bid, ItemId};

    fn u(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn allocates_everything_with_abundant_multiplicity() {
        let a = AuctionInstance::new(
            vec![100.0, 100.0],
            (0..10).map(|_| Bid::new(vec![u(0), u(1)], 1.0)).collect(),
        );
        let res = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.3));
        assert_eq!(res.solution.len(), 10);
        assert_eq!(res.stop_reason, McaStopReason::Exhausted);
        assert!(res.solution.check_feasible(&a).is_ok());
    }

    #[test]
    fn output_is_always_feasible_under_pressure() {
        // 40 bids on an item with multiplicity 8: Lemma 3.3's argument.
        let a = AuctionInstance::new(
            vec![8.0],
            (0..40)
                .map(|i| Bid::new(vec![u(0)], 1.0 + (i % 5) as f64))
                .collect(),
        );
        for eps in [0.1, 0.3, 0.5, 1.0] {
            let res = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
            assert!(res.solution.check_feasible(&a).is_ok(), "eps={eps}");
            assert!(res.solution.len() <= 8);
        }
    }

    #[test]
    fn prefers_high_value_per_bundle_weight() {
        // B must clear ln(m)/eps^2 or the guard trips before iteration 1.
        let a = AuctionInstance::new(
            vec![4.0, 4.0],
            vec![
                Bid::new(vec![u(0), u(1)], 1.0),
                Bid::new(vec![u(0), u(1)], 10.0),
                Bid::new(vec![u(0)], 3.0),
            ],
        );
        let res = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.5));
        assert_eq!(res.solution.winners[0], BidId(1));
    }

    #[test]
    fn dual_certificate_bounds_opt() {
        // multiplicity 10, unit bids on a single item: OPT = 10.
        let a = AuctionInstance::new(
            vec![10.0],
            (0..30).map(|_| Bid::new(vec![u(0)], 1.0)).collect(),
        );
        let res = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.4));
        let bound = res.dual_upper_bound().expect("certificate");
        assert!(bound >= 10.0 - 1e-6, "bound {bound} under OPT 10");
        assert!(res.certified_ratio(&a).unwrap() >= 1.0 - 1e-9);
    }

    #[test]
    fn theorem41_ratio_on_large_b() {
        // B = 200, m = 4: comfortably in the large-multiplicity regime for
        // eps = 0.3. Certified ratio must be within (1+6ε)·e/(e−1).
        let a = AuctionInstance::new(
            vec![200.0, 200.0, 200.0, 200.0],
            (0..600)
                .map(|i| {
                    let items = match i % 3 {
                        0 => vec![u(0), u(1)],
                        1 => vec![u(1), u(2)],
                        _ => vec![u(2), u(3)],
                    };
                    Bid::new(items, 1.0 + (i % 4) as f64)
                })
                .collect(),
        );
        let eps = 0.3;
        assert!(a.meets_large_multiplicity_bound(eps));
        let res = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps / 6.0));
        let ratio = res.certified_ratio(&a).expect("ratio");
        let e = std::f64::consts::E;
        let target = (1.0 + 6.0 * (eps / 6.0)) * e / (e - 1.0);
        assert!(
            ratio <= target + 0.05,
            "certified ratio {ratio} above theorem bound {target}"
        );
    }

    #[test]
    fn monotone_in_value_spot_check() {
        let a = AuctionInstance::new(
            vec![3.0, 3.0],
            vec![
                Bid::new(vec![u(0)], 2.0),
                Bid::new(vec![u(0), u(1)], 3.0),
                Bid::new(vec![u(1)], 1.0),
                Bid::new(vec![u(0)], 2.5),
            ],
        );
        let cfg = BoundedMucaConfig::with_epsilon(0.4);
        let base = bounded_muca(&a, &cfg);
        for bid in a.bid_ids() {
            if !base.solution.contains(bid) {
                continue;
            }
            for factor in [1.5, 4.0] {
                let probe = a.with_declared_value(bid, a.bid(bid).value * factor);
                let res = bounded_muca(&probe, &cfg);
                assert!(res.solution.contains(bid), "raising {bid} dropped it");
            }
        }
    }

    #[test]
    fn unknown_single_minded_bundle_shrink_monotone() {
        // Corollary 4.2: shrinking the bundle (subset) keeps a winner
        // winning, since Σ_{u∈Ũ} y_u ≤ Σ_{u∈U} y_u.
        let a = AuctionInstance::new(
            vec![5.0, 5.0, 5.0],
            vec![
                Bid::new(vec![u(0), u(1), u(2)], 3.0),
                Bid::new(vec![u(0), u(1)], 2.0),
                Bid::new(vec![u(2)], 1.0),
            ],
        );
        let cfg = BoundedMucaConfig::with_epsilon(0.5);
        let base = bounded_muca(&a, &cfg);
        assert!(base.solution.contains(BidId(0)));
        let probe = a.with_declared_bundle(BidId(0), vec![u(0), u(2)]);
        let res = bounded_muca(&probe, &cfg);
        assert!(res.solution.contains(BidId(0)));
    }

    #[test]
    fn empty_auction() {
        let a = AuctionInstance::new(vec![5.0], vec![]);
        let res = bounded_muca(&a, &BoundedMucaConfig::default());
        assert!(res.solution.is_empty());
        assert_eq!(res.stop_reason, McaStopReason::Exhausted);
    }
}
