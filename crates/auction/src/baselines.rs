//! Auction baselines: greedy heuristics, a one-pass threshold
//! primal–dual (the BKV-style comparator), and exact LP-based rounding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_lp::simplex::{solve, LpOutcome, LpProblem, Relation};

use crate::instance::{AuctionInstance, AuctionSolution, BidId};
use crate::weights::ItemWeights;

/// Greedy ordering for [`greedy_auction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuctionGreedyOrder {
    /// Descending value.
    ByValue,
    /// Descending value per bundle item (`v_r/|U_r|`).
    ByDensity,
    /// Descending `v_r/√|U_r|` — the Lehmann–O'Callaghan–Shoham rule.
    BySqrtDensity,
}

/// One-pass greedy allocation in the chosen order.
pub fn greedy_auction(instance: &AuctionInstance, order: AuctionGreedyOrder) -> AuctionSolution {
    let mut ids: Vec<BidId> = instance.bid_ids().collect();
    let key = |id: &BidId| -> f64 {
        let b = instance.bid(*id);
        match order {
            AuctionGreedyOrder::ByValue => b.value,
            AuctionGreedyOrder::ByDensity => b.value / b.size() as f64,
            AuctionGreedyOrder::BySqrtDensity => b.value / (b.size() as f64).sqrt(),
        }
    };
    ids.sort_by(|a, b| key(b).partial_cmp(&key(a)).unwrap().then_with(|| a.cmp(b)));

    let mut residual: Vec<f64> = instance.multiplicities().to_vec();
    let mut solution = AuctionSolution::empty();
    for id in ids {
        let bid = instance.bid(id);
        if bid.bundle.iter().all(|u| residual[u.index()] >= 1.0 - 1e-9) {
            for u in &bid.bundle {
                residual[u.index()] -= 1.0;
            }
            solution.winners.push(id);
        }
    }
    solution
}

/// One-pass threshold primal–dual (BKV-style, ratio → e): process bids in
/// declaration order, accept when the dual constraint is violated at the
/// current prices (`v_r ≥ Σ_{u∈U_r} y_u`), with the same guard as
/// Algorithm 2.
pub fn bkv_auction(instance: &AuctionInstance, epsilon: f64) -> AuctionSolution {
    assert!(epsilon > 0.0 && epsilon <= 1.0);
    let b = instance.bound_b();
    let ln_guard = epsilon * (b - 1.0);
    let mut weights = ItemWeights::new(instance.multiplicities());
    let mut solution = AuctionSolution::empty();
    for id in instance.bid_ids() {
        if weights.ln_dual_sum() > ln_guard {
            break;
        }
        let bid = instance.bid(id);
        let w = weights.weights();
        let sum: f64 = bid.bundle.iter().map(|u| w[u.index()]).sum();
        let score = sum / bid.value;
        let accept = if score <= 0.0 {
            true
        } else {
            score.ln() + weights.shift() <= 0.0
        };
        if !accept {
            continue;
        }
        for u in &bid.bundle {
            let c = instance.multiplicity(*u);
            weights.bump(*u, epsilon * b / c);
        }
        solution.winners.push(id);
    }
    solution
}

/// Exact LP relaxation of the auction (`max Σ v_r x_r`, `Σ_{r∋u} x_r ≤
/// c_u`, `0 ≤ x_r ≤ 1`) solved with the simplex. Returns `(objective,
/// x)`.
pub fn auction_lp(instance: &AuctionInstance) -> (f64, Vec<f64>) {
    let n = instance.num_bids();
    let mut lp = LpProblem::new(n);
    for (j, b) in instance.bids().iter().enumerate() {
        lp.objective[j] = b.value;
    }
    for u in 0..instance.num_items() {
        let terms: Vec<(usize, f64)> = instance
            .bids()
            .iter()
            .enumerate()
            .filter(|(_, b)| b.bundle.iter().any(|it| it.index() == u))
            .map(|(j, _)| (j, 1.0))
            .collect();
        if !terms.is_empty() {
            lp.add_constraint(terms, Relation::Le, instance.multiplicities()[u]);
        }
    }
    for j in 0..n {
        lp.add_constraint(vec![(j, 1.0)], Relation::Le, 1.0);
    }
    match solve(&lp) {
        LpOutcome::Optimal(s) => (s.objective, s.x),
        other => panic!("auction LP must be solvable, got {other:?}"),
    }
}

/// Randomized rounding with alteration on the exact LP solution — the
/// non-monotone near-optimal comparator for the auction experiments.
pub fn rounding_auction(instance: &AuctionInstance, epsilon: f64, seed: u64) -> AuctionSolution {
    let (_, x) = auction_lp(instance);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampled: Vec<BidId> = Vec::new();
    for (j, &xj) in x.iter().enumerate() {
        let p = ((1.0 - epsilon) * xj).clamp(0.0, 1.0);
        if p > 0.0 && rng.random_range(0.0..1.0) < p {
            sampled.push(BidId(j as u32));
        }
    }
    // Alteration: keep greedily by value density.
    sampled.sort_by(|a, b| {
        let (ba, bb) = (instance.bid(*a), instance.bid(*b));
        (bb.value / bb.size() as f64)
            .partial_cmp(&(ba.value / ba.size() as f64))
            .unwrap()
            .then_with(|| a.cmp(b))
    });
    let mut residual: Vec<f64> = instance.multiplicities().to_vec();
    let mut solution = AuctionSolution::empty();
    for id in sampled {
        let bid = instance.bid(id);
        if bid.bundle.iter().all(|u| residual[u.index()] >= 1.0 - 1e-9) {
            for u in &bid.bundle {
                residual[u.index()] -= 1.0;
            }
            solution.winners.push(id);
        }
    }
    solution
}

/// Exact integral optimum by branch-and-bound (small instances only).
pub fn exact_auction_optimum(instance: &AuctionInstance) -> (f64, AuctionSolution) {
    // Order by descending value for pruning.
    let mut order: Vec<BidId> = instance.bid_ids().collect();
    order.sort_by(|a, b| {
        instance
            .bid(*b)
            .value
            .partial_cmp(&instance.bid(*a).value)
            .unwrap()
            .then_with(|| a.cmp(b))
    });
    let mut suffix = vec![0.0; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] + instance.bid(order[i]).value;
    }

    struct Search<'a> {
        instance: &'a AuctionInstance,
        order: &'a [BidId],
        suffix: &'a [f64],
        residual: Vec<f64>,
        chosen: Vec<BidId>,
        best_value: f64,
        best: Vec<BidId>,
    }
    impl Search<'_> {
        fn go(&mut self, depth: usize, value: f64) {
            if value > self.best_value {
                self.best_value = value;
                self.best = self.chosen.clone();
            }
            if depth == self.order.len() || value + self.suffix[depth] <= self.best_value + 1e-12 {
                return;
            }
            let id = self.order[depth];
            let bundle = &self.instance.bid(id).bundle;
            let fits = bundle
                .iter()
                .all(|u| self.residual[u.index()] >= 1.0 - 1e-9);
            if fits {
                for u in bundle {
                    self.residual[u.index()] -= 1.0;
                }
                self.chosen.push(id);
                self.go(depth + 1, value + self.instance.bid(id).value);
                self.chosen.pop();
                for u in bundle {
                    self.residual[u.index()] += 1.0;
                }
            }
            self.go(depth + 1, value);
        }
    }
    let mut s = Search {
        instance,
        order: &order,
        suffix: &suffix,
        residual: instance.multiplicities().to_vec(),
        chosen: Vec::new(),
        best_value: 0.0,
        best: Vec::new(),
    };
    s.go(0, 0.0);
    let sol = AuctionSolution { winners: s.best };
    (s.best_value, sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_muca::{bounded_muca, BoundedMucaConfig};
    use crate::instance::{Bid, ItemId};

    fn u(i: u32) -> ItemId {
        ItemId(i)
    }

    fn sample_auction() -> AuctionInstance {
        AuctionInstance::new(
            vec![2.0, 2.0, 2.0],
            vec![
                Bid::new(vec![u(0), u(1)], 4.0),
                Bid::new(vec![u(1), u(2)], 3.0),
                Bid::new(vec![u(0)], 2.0),
                Bid::new(vec![u(2)], 2.5),
                Bid::new(vec![u(0), u(1), u(2)], 5.0),
            ],
        )
    }

    #[test]
    fn greedy_variants_feasible() {
        let a = sample_auction();
        for order in [
            AuctionGreedyOrder::ByValue,
            AuctionGreedyOrder::ByDensity,
            AuctionGreedyOrder::BySqrtDensity,
        ] {
            let sol = greedy_auction(&a, order);
            assert!(sol.check_feasible(&a).is_ok(), "{order:?}");
            assert!(!sol.is_empty());
        }
    }

    #[test]
    fn exact_dominates_heuristics() {
        let a = sample_auction();
        let (opt, sol) = exact_auction_optimum(&a);
        assert!(sol.check_feasible(&a).is_ok());
        assert!((sol.value(&a) - opt).abs() < 1e-9);
        for order in [
            AuctionGreedyOrder::ByValue,
            AuctionGreedyOrder::ByDensity,
            AuctionGreedyOrder::BySqrtDensity,
        ] {
            assert!(greedy_auction(&a, order).value(&a) <= opt + 1e-9);
        }
        let muca = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(0.5));
        assert!(muca.solution.value(&a) <= opt + 1e-9);
    }

    #[test]
    fn lp_upper_bounds_integral_optimum() {
        let a = sample_auction();
        let (lp_opt, x) = auction_lp(&a);
        let (int_opt, _) = exact_auction_optimum(&a);
        assert!(lp_opt >= int_opt - 1e-7);
        assert!(x.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn exact_value_hand_checked() {
        // multiplicities 2 each: optimum takes bids 0,1,2,3 = 11.5
        // (bid 4 overlaps everything and only displaces value).
        let a = sample_auction();
        let (opt, _) = exact_auction_optimum(&a);
        assert!((opt - 11.5).abs() < 1e-9, "opt {opt}");
    }

    #[test]
    fn bkv_auction_feasible_and_monotone_spotcheck() {
        let a = sample_auction();
        let sol = bkv_auction(&a, 0.4);
        assert!(sol.check_feasible(&a).is_ok());
        for id in a.bid_ids() {
            if !sol.contains(id) {
                continue;
            }
            let probe = a.with_declared_value(id, a.bid(id).value * 3.0);
            let sol2 = bkv_auction(&probe, 0.4);
            assert!(sol2.contains(id));
        }
    }

    #[test]
    fn rounding_feasible_across_seeds() {
        let a = sample_auction();
        for seed in 0..8 {
            let sol = rounding_auction(&a, 0.1, seed);
            assert!(sol.check_feasible(&a).is_ok(), "seed {seed}");
        }
    }
}
