//! Property-based tests for the auction stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ufp_auction::{
    auction_lp, bkv_auction, bounded_muca, exact_auction_optimum, greedy_auction,
    iterative_bundle_minimizer, AuctionGreedyOrder, AuctionInstance, Bid, BoundedMucaConfig,
    BundleEngineConfig, ItemId, MucaPrimalDualScore,
};

fn arb_auction() -> impl Strategy<Value = (AuctionInstance, f64)> {
    (2usize..8, 1usize..12, any::<u64>(), 1usize..10).prop_map(|(items, bids, seed, eps_decile)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mults: Vec<f64> = (0..items)
            .map(|_| rng.random_range(1.0..8.0f64).floor())
            .collect();
        let bid_list: Vec<Bid> = (0..bids)
            .map(|_| {
                let size = rng.random_range(1..=items);
                let mut bundle: Vec<u32> = (0..items as u32).collect();
                for i in (1..bundle.len()).rev() {
                    bundle.swap(i, rng.random_range(0..=i));
                }
                let bundle = bundle[..size].iter().map(|&u| ItemId(u)).collect();
                Bid::new(bundle, rng.random_range(0.1..5.0))
            })
            .collect();
        let eps = eps_decile as f64 / 10.0;
        (AuctionInstance::new(mults, bid_list), eps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn muca_always_feasible((a, eps) in arb_auction()) {
        let run = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
        prop_assert!(run.solution.check_feasible(&a).is_ok());
    }

    #[test]
    fn sandwich_alg_exact_lp((a, eps) in arb_auction()) {
        let run = bounded_muca(&a, &BoundedMucaConfig::with_epsilon(eps));
        let alg = run.solution.value(&a);
        let (opt, sol) = exact_auction_optimum(&a);
        prop_assert!(sol.check_feasible(&a).is_ok());
        prop_assert!(alg <= opt + 1e-9, "ALG {alg} beats optimum {opt}");
        let (lp_opt, _) = auction_lp(&a);
        prop_assert!(opt <= lp_opt + 1e-6, "integral {opt} above LP {lp_opt}");
        if let Some(bound) = run.dual_upper_bound() {
            prop_assert!(bound >= lp_opt - 1e-6,
                "dual certificate {bound} below LP {lp_opt}");
        }
    }

    #[test]
    fn all_heuristics_below_exact((a, eps) in arb_auction()) {
        let (opt, _) = exact_auction_optimum(&a);
        for order in [AuctionGreedyOrder::ByValue, AuctionGreedyOrder::ByDensity,
                      AuctionGreedyOrder::BySqrtDensity] {
            let g = greedy_auction(&a, order);
            prop_assert!(g.check_feasible(&a).is_ok());
            prop_assert!(g.value(&a) <= opt + 1e-9);
        }
        let b = bkv_auction(&a, eps);
        prop_assert!(b.check_feasible(&a).is_ok());
        prop_assert!(b.value(&a) <= opt + 1e-9);
        let e = iterative_bundle_minimizer(&a, &MucaPrimalDualScore,
                                           &BundleEngineConfig::default());
        prop_assert!(e.solution.check_feasible(&a).is_ok());
        prop_assert!(e.solution.value(&a) <= opt + 1e-9);
    }

    #[test]
    fn muca_value_monotone((a, eps) in arb_auction()) {
        let cfg = BoundedMucaConfig::with_epsilon(eps);
        let base = bounded_muca(&a, &cfg);
        for bid in a.bid_ids() {
            if !base.solution.contains(bid) {
                continue;
            }
            let probe = a.with_declared_value(bid, a.bid(bid).value * 3.0);
            let run = bounded_muca(&probe, &cfg);
            prop_assert!(run.solution.contains(bid),
                "winner {bid} evicted after tripling its value");
        }
    }

    #[test]
    fn muca_bundle_shrink_monotone((a, eps) in arb_auction()) {
        // Corollary 4.2 (unknown single-minded): dropping items from a
        // winning bundle keeps it winning.
        let cfg = BoundedMucaConfig::with_epsilon(eps);
        let base = bounded_muca(&a, &cfg);
        for bid in a.bid_ids() {
            if !base.solution.contains(bid) || a.bid(bid).bundle.len() < 2 {
                continue;
            }
            let shrunk = a.bid(bid).bundle[1..].to_vec();
            let probe = a.with_declared_bundle(bid, shrunk);
            let run = bounded_muca(&probe, &cfg);
            prop_assert!(run.solution.contains(bid),
                "winner {bid} evicted after shrinking its bundle");
        }
    }

    #[test]
    fn bundle_engine_is_maximal((a, _eps) in arb_auction()) {
        let run = iterative_bundle_minimizer(&a, &MucaPrimalDualScore,
                                             &BundleEngineConfig::default());
        let loads = run.solution.item_loads(&a);
        for bid in a.bid_ids() {
            if run.solution.contains(bid) {
                continue;
            }
            let fits = a.bid(bid).bundle.iter()
                .all(|u| loads[u.index()] + 1.0 <= a.multiplicity(*u) + 1e-9);
            prop_assert!(!fits, "engine stopped while {bid} still fit");
        }
    }
}
