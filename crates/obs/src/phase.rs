//! The span taxonomy: every phase the pipeline can spend time in.
//!
//! Phases are a closed enum rather than free-form strings so the hot
//! path can accumulate into a fixed-size atomic array (no hashing, no
//! locking) and so the set of observable phases is reviewable in one
//! place. The dotted names mirror the layer that owns each phase:
//!
//! | prefix       | layer        | what it measures                         |
//! |--------------|--------------|------------------------------------------|
//! | `epoch.*`    | `ufp_engine` | the three stages of one engine epoch     |
//! | `selection.*`| `ufp_core`   | the incremental selection loop internals |
//! | `payment.*`  | `ufp_engine` | one critical-value bisection probe       |
//! | `shard.*`    | `ufp_shard`  | the sharded pipeline's own stages        |
//! | `par.*`      | `ufp_par`    | pool fan-out and help-first stealing     |
//! | `topology.*` | `ufp_engine` | one between-epochs topology repair pass  |
//! | `repair.*`   | `ufp_engine` | eviction / re-admission inside a repair  |
//! | `health.*`   | `ufp_engine` | out-of-band auction-health work          |
//!
//! `epoch.open/plan/commit` partition an engine epoch end to end (the
//! other phases nest inside them or, for `shard.*`, run between per-
//! shard epochs), so `Σ epoch.* ≈ epoch wall time` is the profile
//! invariant `engine_sim --profile` reports against. The `topology.*` /
//! `repair.*` phases run strictly *between* epoch brackets (a repair
//! pass is not part of any epoch), so they are deliberately excluded
//! from [`Phase::is_epoch_stage`] and the coverage invariant survives
//! failure injection unchanged.

/// One pipeline phase. `as usize` is a dense index into per-phase
/// accumulator arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// TTL releases + residual re-derivation at the top of an epoch.
    EpochOpen,
    /// The Bounded-UFP(ε) allocation loop over the epoch's batch.
    EpochPlan,
    /// Payments, residual commit, events, metrics at the epoch tail.
    EpochCommit,
    /// One grouped shortest-path recomputation (lazy, per heap top).
    SelectionDijkstra,
    /// Lazy-heap maintenance in the incremental selection loop.
    SelectionHeap,
    /// One eager grouped refresh of the dirty set (parallel fan-out).
    SelectionDirtyRefresh,
    /// One critical-value bisection probe (attr: resumed suffix length).
    PaymentProbe,
    /// Boundary-edge lease computation before parallel shard epochs.
    ShardLease,
    /// Deterministic merge-replay of shard plans into the global order.
    ShardMergeReplay,
    /// Cross-shard request routing against full global residuals.
    ShardCrossRoute,
    /// One pool fan-out (`map`/`map_mut`/... dispatch + join).
    ParDispatch,
    /// One job executed by a waiter via help-first stealing.
    ParSteal,
    /// One between-epochs topology repair pass (event application,
    /// violation scan, residual rebuild).
    TopologyApply,
    /// Evicting the admissions a mutation displaced (refund + events).
    RepairEvict,
    /// Queueing evicted flows for re-admission in the next epoch.
    RepairReadmit,
    /// One fractional-UFP regret-oracle solve over a frozen epoch
    /// snapshot (runs strictly after the epoch bracket closes).
    HealthRegretOracle,
}

/// Number of phases (size of the dense accumulator arrays).
pub const PHASE_COUNT: usize = 16;

impl Phase {
    /// Every phase, in dense-index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EpochOpen,
        Phase::EpochPlan,
        Phase::EpochCommit,
        Phase::SelectionDijkstra,
        Phase::SelectionHeap,
        Phase::SelectionDirtyRefresh,
        Phase::PaymentProbe,
        Phase::ShardLease,
        Phase::ShardMergeReplay,
        Phase::ShardCrossRoute,
        Phase::ParDispatch,
        Phase::ParSteal,
        Phase::TopologyApply,
        Phase::RepairEvict,
        Phase::RepairReadmit,
        Phase::HealthRegretOracle,
    ];

    /// Dense index (0-based, stable across a build).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The dotted external name used in every export format.
    pub fn name(self) -> &'static str {
        match self {
            Phase::EpochOpen => "epoch.open",
            Phase::EpochPlan => "epoch.plan",
            Phase::EpochCommit => "epoch.commit",
            Phase::SelectionDijkstra => "selection.dijkstra",
            Phase::SelectionHeap => "selection.heap",
            Phase::SelectionDirtyRefresh => "selection.dirty_refresh",
            Phase::PaymentProbe => "payment.probe",
            Phase::ShardLease => "shard.lease",
            Phase::ShardMergeReplay => "shard.merge_replay",
            Phase::ShardCrossRoute => "shard.cross_route",
            Phase::ParDispatch => "par.dispatch",
            Phase::ParSteal => "par.steal",
            Phase::TopologyApply => "topology.apply",
            Phase::RepairEvict => "repair.evict",
            Phase::RepairReadmit => "repair.readmit",
            Phase::HealthRegretOracle => "health.regret_oracle",
        }
    }

    /// True for the three phases that partition an engine epoch end to
    /// end (the profile-coverage trio; everything else nests inside
    /// them or runs at the sharded layer between them).
    #[inline]
    pub fn is_epoch_stage(self) -> bool {
        matches!(
            self,
            Phase::EpochOpen | Phase::EpochPlan | Phase::EpochCommit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(p.name().contains('.'), "{}", p.name());
            assert!(seen.insert(p.name()), "duplicate name {}", p.name());
        }
    }

    #[test]
    fn repair_phases_stay_outside_the_epoch_coverage_trio() {
        // The profile-coverage invariant sums exactly the epoch trio;
        // topology repair runs between epoch brackets and must never
        // join it, or Σ epoch.* would overshoot the epoch wall time
        // whenever failures are injected.
        for p in [
            Phase::TopologyApply,
            Phase::RepairEvict,
            Phase::RepairReadmit,
            Phase::HealthRegretOracle,
        ] {
            assert!(!p.is_epoch_stage(), "{}", p.name());
        }
        assert_eq!(Phase::ALL.iter().filter(|p| p.is_epoch_stage()).count(), 3);
    }
}
