//! `ufp_obs` — observability substrate for the UFP stack.
//!
//! One cloneable [`Recorder`] handle carries everything: a metrics
//! [`registry`] (counters, gauges, log₂-bucketed histograms), structured
//! phase [spans](trace::SpanRecord) with lock-free per-phase time
//! accumulators, and per-epoch [profiles](trace::EpochProfile). The
//! default handle is **off** — a `None` inside — and every recording
//! method starts with that check, so a disabled recorder never reads
//! the clock, touches an atomic, or takes a lock: the hot path of an
//! uninstrumented run is a branch on an already-loaded option.
//!
//! ## Determinism contract
//!
//! The recorder is strictly **out-of-band**: it observes the pipeline
//! but feeds nothing back. No allocation, payment, guard, or ordering
//! decision may read recorder state; exports go to side files, never
//! into deterministic reports. The engine's CI therefore byte-diffs
//! the deterministic JSON of a fully-traced run against an untraced
//! one — the contract is enforced, not assumed. See
//! `crates/obs/README.md` for the full statement and the span
//! taxonomy table.

pub mod export;
pub mod phase;
pub mod registry;
pub mod trace;

pub use phase::{Phase, PHASE_COUNT};
pub use registry::{Counter, Gauge, Histogram, HistogramRow, Registry};
pub use trace::{EpochProfile, RegretSample, SpanRecord};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound on retained span records before new spans are counted
/// in `spans_dropped` instead of stored (~14 MB of records).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 18;

/// Dense per-thread id for trace attribution.
fn current_tid() -> u64 {
    use std::cell::Cell;
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: Cell<Option<u64>> = const { Cell::new(None) };
    }
    TID.with(|slot| match slot.get() {
        Some(t) => t,
        None => {
            let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(t));
            t
        }
    })
}

/// A typed auction-health alert: a watched health signal crossed its
/// configured threshold in some epoch. Alerts are observability output
/// only — they are stored in the recorder, rendered by the exporters,
/// and never read back by the pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HealthAlert {
    /// The rolling-window eviction rate crossed its watermark.
    EvictionStorm {
        /// Epoch the window closed on.
        epoch: u64,
        /// Evictions per epoch observed over the window.
        observed: f64,
        /// Configured watermark the observation crossed.
        threshold: f64,
    },
    /// An epoch's admission latency missed the configured SLO.
    SloMiss {
        /// The offending epoch.
        epoch: u64,
        /// Epoch admission latency in microseconds.
        observed_us: u64,
        /// Configured SLO threshold in microseconds.
        threshold_us: u64,
    },
    /// A readmission candidate aged past the starvation bound.
    Starvation {
        /// Epoch the queue was measured at.
        epoch: u64,
        /// Oldest queue age in epochs.
        observed_epochs: u64,
        /// Configured starvation bound in epochs.
        threshold_epochs: u64,
    },
}

impl HealthAlert {
    /// Stable kind label used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthAlert::EvictionStorm { .. } => "eviction_storm",
            HealthAlert::SloMiss { .. } => "slo_miss",
            HealthAlert::Starvation { .. } => "starvation",
        }
    }

    /// The epoch the alert fired on.
    pub fn epoch(&self) -> u64 {
        match *self {
            HealthAlert::EvictionStorm { epoch, .. }
            | HealthAlert::SloMiss { epoch, .. }
            | HealthAlert::Starvation { epoch, .. } => epoch,
        }
    }
}

/// A begin-marker for one epoch bracket: wall start plus a snapshot of
/// the phase accumulators, so `epoch_end` can diff.
#[derive(Debug)]
struct EpochMark {
    epoch: u64,
    start: Instant,
    phase_ns: [u64; PHASE_COUNT],
    phase_hits: [u64; PHASE_COUNT],
}

/// The shared state behind an enabled [`Recorder`].
#[derive(Debug)]
pub struct ObsCore {
    origin: Instant,
    registry: Registry,
    phase_ns: [AtomicU64; PHASE_COUNT],
    phase_hits: [AtomicU64; PHASE_COUNT],
    spans: Mutex<Vec<SpanRecord>>,
    span_capacity: usize,
    spans_dropped: AtomicU64,
    profiles: Mutex<Vec<EpochProfile>>,
    open_epoch: Mutex<Option<EpochMark>>,
    alerts: Mutex<Vec<HealthAlert>>,
}

impl ObsCore {
    fn new(span_capacity: usize) -> Self {
        ObsCore {
            origin: Instant::now(),
            registry: Registry::default(),
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
            span_capacity,
            spans_dropped: AtomicU64::new(0),
            profiles: Mutex::new(Vec::new()),
            open_epoch: Mutex::new(None),
            alerts: Mutex::new(Vec::new()),
        }
    }

    fn load_phase_ns(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|i| self.phase_ns[i].load(Ordering::Relaxed))
    }

    fn load_phase_hits(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|i| self.phase_hits[i].load(Ordering::Relaxed))
    }

    fn finish_span(&self, phase: Phase, start: Instant, attr: Option<(&'static str, u64)>) {
        let end = Instant::now();
        let dur_ns = end.duration_since(start).as_nanos() as u64;
        let start_ns = start.duration_since(self.origin).as_nanos() as u64;
        let i = phase.index();
        self.phase_ns[i].fetch_add(dur_ns, Ordering::Relaxed);
        self.phase_hits[i].fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            phase,
            start_ns,
            dur_ns,
            tid: current_tid(),
            attr,
        };
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < self.span_capacity {
            spans.push(record);
        } else {
            drop(spans);
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Everything an enabled recorder has accumulated, frozen at one
/// moment — the input to the [`export`] serializers.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// Retained spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after the retention buffer filled.
    pub spans_dropped: u64,
    /// Sorted counter `(name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Sorted gauge `(name, value)` pairs.
    pub gauges: Vec<(String, f64)>,
    /// Sorted histogram rows; see [`HistogramRow`].
    pub histograms: Vec<HistogramRow>,
    /// Lifetime per-phase nanoseconds.
    pub phase_ns: [u64; PHASE_COUNT],
    /// Lifetime per-phase span counts.
    pub phase_hits: [u64; PHASE_COUNT],
    /// Completed epoch brackets in order.
    pub profiles: Vec<EpochProfile>,
    /// Auction-health alerts in firing order.
    pub alerts: Vec<HealthAlert>,
}

/// The observability handle threaded through the stack. `Default` (and
/// [`Recorder::off`]) is the no-op recorder; [`Recorder::enabled`]
/// allocates shared state. Cloning shares state — every layer holding
/// a clone feeds the same registry and trace.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    core: Option<Arc<ObsCore>>,
}

/// Recorders compare equal when they share state (or are both off) —
/// this keeps `#[derive(PartialEq)]` usable on configs that carry one.
impl PartialEq for Recorder {
    fn eq(&self, other: &Self) -> bool {
        match (&self.core, &other.core) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Recorder {
    /// The no-op recorder (same as `Default`). Never observes anything.
    pub fn off() -> Self {
        Recorder { core: None }
    }

    /// An enabled recorder with the default span retention bound.
    pub fn enabled() -> Self {
        Self::enabled_with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder retaining at most `span_capacity` spans
    /// (further spans only bump `spans_dropped`).
    pub fn enabled_with_capacity(span_capacity: usize) -> Self {
        Recorder {
            core: Some(Arc::new(ObsCore::new(span_capacity))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Open a span for `phase`; the span closes (and is recorded) when
    /// the guard drops. Off recorders return an inert guard without
    /// reading the clock.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        self.span_inner(phase, None)
    }

    /// [`Recorder::span`] with an integer attribute attached to the
    /// emitted record (e.g. `payment.probe` suffix length).
    #[inline]
    pub fn span_attr(&self, phase: Phase, name: &'static str, value: u64) -> SpanGuard<'_> {
        self.span_inner(phase, Some((name, value)))
    }

    #[inline]
    fn span_inner(&self, phase: Phase, attr: Option<(&'static str, u64)>) -> SpanGuard<'_> {
        match &self.core {
            None => SpanGuard { inner: None },
            Some(core) => SpanGuard {
                inner: Some(SpanGuardInner {
                    core,
                    phase,
                    start: Instant::now(),
                    attr,
                }),
            },
        }
    }

    /// Add to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(core) = &self.core {
            core.registry.counter(name).add(delta);
        }
    }

    /// Set gauge `name`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(core) = &self.core {
            core.registry.gauge(name).set(value);
        }
    }

    /// Record into histogram `name`.
    #[inline]
    pub fn histogram_record(&self, name: &str, value: u64) {
        if let Some(core) = &self.core {
            core.registry.histogram(name).record(value);
        }
    }

    /// Lock-free handle to counter `name` for high-frequency sites
    /// (one map lock at acquisition, none per update). `None` when off.
    pub fn counter_handle(&self, name: &str) -> Option<Arc<Counter>> {
        self.core.as_ref().map(|c| c.registry.counter(name))
    }

    /// Open an epoch bracket: snapshots the phase accumulators so
    /// [`Recorder::epoch_end`] can attribute activity to this epoch.
    pub fn epoch_begin(&self, epoch: u64) {
        if let Some(core) = &self.core {
            let mark = EpochMark {
                epoch,
                start: Instant::now(),
                phase_ns: core.load_phase_ns(),
                phase_hits: core.load_phase_hits(),
            };
            *core.open_epoch.lock().unwrap() = Some(mark);
        }
    }

    /// Close the bracket opened by [`Recorder::epoch_begin`] and store
    /// an [`EpochProfile`]. A mismatched or missing bracket is ignored
    /// (observability must never panic the pipeline).
    pub fn epoch_end(&self, epoch: u64) {
        if let Some(core) = &self.core {
            let Some(mark) = core.open_epoch.lock().unwrap().take() else {
                return;
            };
            if mark.epoch != epoch {
                return;
            }
            let wall_ns = mark.start.elapsed().as_nanos() as u64;
            let now_ns = core.load_phase_ns();
            let now_hits = core.load_phase_hits();
            let profile = EpochProfile {
                epoch,
                wall_ns,
                phase_ns: std::array::from_fn(|i| now_ns[i].saturating_sub(mark.phase_ns[i])),
                phase_hits: std::array::from_fn(|i| now_hits[i].saturating_sub(mark.phase_hits[i])),
                regret: None,
            };
            core.profiles.lock().unwrap().push(profile);
        }
    }

    /// Attach a regret-oracle verdict to the already-stored profile of
    /// `epoch` (the oracle runs strictly after the bracket closed).
    /// Unknown epochs are ignored — observability never panics.
    pub fn profile_set_regret(&self, epoch: u64, sample: RegretSample) {
        if let Some(core) = &self.core {
            let mut profiles = core.profiles.lock().unwrap();
            if let Some(p) = profiles.iter_mut().rev().find(|p| p.epoch == epoch) {
                p.regret = Some(sample);
            }
        }
    }

    /// Record a typed auction-health alert.
    pub fn alert(&self, alert: HealthAlert) {
        if let Some(core) = &self.core {
            core.alerts.lock().unwrap().push(alert);
        }
    }

    /// Lifetime per-phase totals `(ns, hits)` — the same accumulators
    /// the epoch profiles diff. Cheap (atomic loads only), so drivers
    /// can diff across scopes the epoch bracket does not cover (e.g.
    /// the pre-epoch topology repair pass). `None` when off.
    pub fn phase_totals(&self) -> Option<([u64; PHASE_COUNT], [u64; PHASE_COUNT])> {
        self.core
            .as_ref()
            .map(|c| (c.load_phase_ns(), c.load_phase_hits()))
    }

    /// Spans discarded so far (0 when off).
    pub fn spans_dropped(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.spans_dropped.load(Ordering::Relaxed))
    }

    /// Direct registry access for tests and exporters (`None` when off).
    pub fn registry(&self) -> Option<&Registry> {
        self.core.as_ref().map(|c| &c.registry)
    }

    /// Freeze everything recorded so far. `None` when off.
    pub fn snapshot(&self) -> Option<ObsSnapshot> {
        let core = self.core.as_ref()?;
        Some(ObsSnapshot {
            spans: core.spans.lock().unwrap().clone(),
            spans_dropped: core.spans_dropped.load(Ordering::Relaxed),
            counters: core.registry.counters_snapshot(),
            gauges: core.registry.gauges_snapshot(),
            histograms: core.registry.histograms_snapshot(),
            phase_ns: core.load_phase_ns(),
            phase_hits: core.load_phase_hits(),
            profiles: core.profiles.lock().unwrap().clone(),
            alerts: core.alerts.lock().unwrap().clone(),
        })
    }
}

#[derive(Debug)]
struct SpanGuardInner<'a> {
    core: &'a ObsCore,
    phase: Phase,
    start: Instant,
    attr: Option<(&'static str, u64)>,
}

/// RAII span: records on drop. The off-recorder variant holds nothing
/// and drops to nothing.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records ~0ns"]
pub struct SpanGuard<'a> {
    inner: Option<SpanGuardInner<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.core.finish_span(inner.phase, inner.start, inner.attr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_side_effect_free() {
        let r = Recorder::off();
        assert!(!r.is_enabled());
        // Exercise every recording entry point.
        {
            let _g = r.span(Phase::EpochPlan);
            let _h = r.span_attr(Phase::PaymentProbe, "suffix", 7);
        }
        r.counter_add("c", 1);
        r.gauge_set("g", 2.0);
        r.histogram_record("h", 3);
        r.epoch_begin(0);
        r.epoch_end(0);
        r.profile_set_regret(
            0,
            RegretSample {
                online_value: 1.0,
                fractional_bound: 2.0,
                ratio: 0.5,
                duality_gap: 0.0,
                commodities: 1,
                iterations: 1,
            },
        );
        r.alert(HealthAlert::SloMiss {
            epoch: 0,
            observed_us: 1,
            threshold_us: 1,
        });
        assert!(r.counter_handle("c").is_none());
        assert_eq!(r.spans_dropped(), 0);
        // Nothing observable exists: no registry, no snapshot.
        assert!(r.registry().is_none());
        assert!(r.snapshot().is_none());
        // And an *enabled* recorder created afterwards starts empty —
        // the off recorder wrote to no shared/global state.
        let live = Recorder::enabled();
        let snap = live.snapshot().unwrap();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(live.registry().unwrap().is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates_spans_and_metrics() {
        let r = Recorder::enabled();
        {
            let _g = r.span(Phase::SelectionDijkstra);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _g = r.span_attr(Phase::PaymentProbe, "suffix_len", 42);
        }
        r.counter_add("probes", 2);
        r.gauge_set("guard_slack", 0.5);
        r.histogram_record("lat", 1024);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].phase, Phase::SelectionDijkstra);
        assert!(snap.spans[0].dur_ns >= 1_000_000);
        assert_eq!(snap.spans[1].attr, Some(("suffix_len", 42)));
        assert_eq!(snap.phase_hits[Phase::SelectionDijkstra.index()], 1);
        assert!(snap.phase_ns[Phase::SelectionDijkstra.index()] >= 1_000_000);
        assert_eq!(snap.counters, vec![("probes".to_owned(), 2)]);
        assert_eq!(snap.gauges, vec![("guard_slack".to_owned(), 0.5)]);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn span_capacity_bounds_retention() {
        let r = Recorder::enabled_with_capacity(2);
        for _ in 0..5 {
            let _g = r.span(Phase::ParSteal);
        }
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans_dropped, 3);
        // Phase accumulators still saw all five.
        assert_eq!(snap.phase_hits[Phase::ParSteal.index()], 5);
    }

    #[test]
    fn epoch_profiles_diff_phase_accumulators() {
        let r = Recorder::enabled();
        {
            let _g = r.span(Phase::EpochOpen);
        }
        r.epoch_begin(7);
        {
            let _g = r.span(Phase::EpochPlan);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        r.epoch_end(7);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.profiles.len(), 1);
        let p = &snap.profiles[0];
        assert_eq!(p.epoch, 7);
        // The pre-bracket EpochOpen span is excluded by the diff.
        assert_eq!(p.phase_hits[Phase::EpochOpen.index()], 0);
        assert_eq!(p.phase_hits[Phase::EpochPlan.index()], 1);
        assert!(p.wall_ns >= p.phase_ns[Phase::EpochPlan.index()]);
        // Mismatched end is ignored, not fatal.
        r.epoch_end(99);
        assert_eq!(r.snapshot().unwrap().profiles.len(), 1);
    }

    #[test]
    fn regret_attaches_to_its_epoch_profile() {
        let r = Recorder::enabled();
        r.epoch_begin(4);
        r.epoch_end(4);
        r.epoch_begin(5);
        r.epoch_end(5);
        let sample = RegretSample {
            online_value: 3.0,
            fractional_bound: 4.0,
            ratio: 0.75,
            duality_gap: 0.1,
            commodities: 7,
            iterations: 12,
        };
        r.profile_set_regret(5, sample);
        // Unknown epoch: ignored, never fatal.
        r.profile_set_regret(99, sample);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.profiles[0].regret, None);
        assert_eq!(snap.profiles[1].regret, Some(sample));
    }

    #[test]
    fn alerts_accumulate_in_firing_order() {
        let r = Recorder::enabled();
        r.alert(HealthAlert::EvictionStorm {
            epoch: 2,
            observed: 9.5,
            threshold: 4.0,
        });
        r.alert(HealthAlert::Starvation {
            epoch: 3,
            observed_epochs: 11,
            threshold_epochs: 8,
        });
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.alerts.len(), 2);
        assert_eq!(snap.alerts[0].kind(), "eviction_storm");
        assert_eq!(snap.alerts[0].epoch(), 2);
        assert_eq!(snap.alerts[1].kind(), "starvation");
        // Clones share the alert stream like every other channel.
        let r2 = r.clone();
        r2.alert(HealthAlert::SloMiss {
            epoch: 4,
            observed_us: 900,
            threshold_us: 500,
        });
        assert_eq!(r.snapshot().unwrap().alerts.len(), 3);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r2.counter_add("shared", 1);
        assert_eq!(
            r.snapshot().unwrap().counters,
            vec![("shared".to_owned(), 1)]
        );
        assert_eq!(r, r2);
        assert_ne!(r, Recorder::enabled());
        assert_eq!(Recorder::off(), Recorder::default());
    }
}
