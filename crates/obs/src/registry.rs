//! The metrics registry: counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Instrument storage is a plain atomic per instrument; the only lock
//! is a short [`Mutex`] around the name → instrument map, taken once
//! per *name resolution*, never per *update* if the caller holds a
//! handle. All updates use `Relaxed` ordering — metrics are advisory
//! telemetry, not synchronization, and a snapshot taken at a quiescent
//! point (epoch boundary, end of run) observes everything anyway.
//!
//! ## Histogram bucket scheme
//!
//! Buckets are powers of two keyed by bit length: value `0` lands in
//! bucket 0, and a value `v > 0` lands in bucket `bit_length(v)` —
//! i.e. bucket `i ≥ 1` covers the half-open octave `[2^{i-1}, 2^i)`,
//! except bucket 64 which also absorbs `u64::MAX`. That gives exactly
//! [`BUCKETS`] = 66 buckets, one `leading_zeros` instruction per
//! record, and bucket boundaries that are exact in every radix-2
//! float/int conversion (no accumulated rounding drift across
//! platforms). The scheme is pinned by tests below.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 for zero, buckets 1..=64 for
/// each bit length, plus bucket 65 is *not* used — see [`bucket_index`].
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value: `0` for zero, else the bit
/// length of `v` (so powers of two open a fresh bucket: `2^k` is the
/// first value of bucket `k + 1`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value that lands in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    assert!(i < BUCKETS);
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram (see the module docs for the scheme).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a histogram that has absorbed > 2^64 total is
        // already unreadable; never wrap silently.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Hits in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `p`-quantile (`0.0..=1.0`): the
    /// upper edge of the first bucket whose cumulative count reaches
    /// `ceil(p · count)`. Returns 0 on an empty histogram.
    pub fn quantile_upper(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.bucket(i);
            if cum >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// `(bucket_lower, bucket_upper, hits)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let hits = self.bucket(i);
                (hits > 0).then(|| (bucket_lower(i), bucket_upper(i), hits))
            })
            .collect()
    }
}

/// One histogram row in a snapshot: `(name, count, sum, nonzero
/// buckets)`, buckets as `(lower, upper, hits)`.
pub type HistogramRow = (String, u64, u64, Vec<(u64, u64, u64)>);

/// Name → instrument maps. Lookup takes a short lock; the returned
/// `Arc` handles update lock-free thereafter.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_owned(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// True when nothing has ever been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.lock().unwrap().is_empty()
            && self.gauges.lock().unwrap().is_empty()
            && self.histograms.lock().unwrap().is_empty()
    }

    /// Sorted `(name, value)` snapshot of every counter.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted `(name, value)` snapshot of every gauge.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted `(name, count, sum, nonzero buckets)` snapshot of every
    /// histogram.
    pub fn histograms_snapshot(&self) -> Vec<HistogramRow> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.count(), v.sum(), v.nonzero_buckets()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_zero_and_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_lower(1), 1);
        assert_eq!(bucket_upper(1), 1);
    }

    #[test]
    fn bucket_scheme_powers_of_two_open_new_buckets() {
        // 2^k is the first value of bucket k+1; 2^k − 1 is the last of
        // bucket k — exercised at every octave edge.
        for k in 1..64usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k, "2^{k} - 1");
            assert_eq!(bucket_lower(k + 1), p);
            assert_eq!(bucket_upper(k), p - 1);
        }
    }

    #[test]
    fn bucket_scheme_u64_max() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
        assert_eq!(bucket_lower(64), 1u64 << 63);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        // Each bucket's lower bound is the previous upper bound + 1.
        for i in 1..BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i}");
        }
    }

    #[test]
    fn histogram_records_edges() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, (1u64 << 63) - 1, 1u64 << 63, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(63), 1); // 2^63 - 1
        assert_eq!(h.bucket(64), 2); // 2^63, u64::MAX
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_upper(0.5), 0, "empty histogram");
        for v in 0..100u64 {
            h.record(v);
        }
        // Median of 0..100 is ≤ 63 (bucket 6 upper edge).
        assert_eq!(h.quantile_upper(0.5), 63);
        assert_eq!(h.quantile_upper(1.0), 127);
        assert_eq!(h.quantile_upper(0.0), 0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::default();
        assert!(r.is_empty());
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.gauge("g").set(1.25);
        assert_eq!(r.gauge("g").get(), 1.25);
        assert!(!r.is_empty());
        assert_eq!(r.counters_snapshot(), vec![("a".to_owned(), 5)]);
    }
}
