//! Span records and per-epoch phase profiles — the raw material the
//! exporters serialize.

use crate::phase::{Phase, PHASE_COUNT};

/// One completed span: a phase, when it started (ns since the
/// recorder's origin), how long it ran, which thread ran it, and an
/// optional integer attribute (e.g. `payment.probe`'s resumed suffix
/// length).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The phase this span measures.
    pub phase: Phase,
    /// Start offset in nanoseconds from the recorder's creation.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense per-thread id (0 = the thread that first recorded).
    pub tid: u64,
    /// Optional `(name, value)` attribute.
    pub attr: Option<(&'static str, u64)>,
}

/// One regret-oracle verdict attached to an epoch profile: how the
/// online epoch's admitted value compares to the offline fractional
/// optimum solved over the same frozen pre-epoch snapshot. The sample
/// is produced strictly out-of-band (after the epoch bracket closes)
/// and never feeds back into any allocation or payment decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegretSample {
    /// Value the online epoch actually admitted.
    pub online_value: f64,
    /// Fractional-UFP upper bound over the frozen snapshot (≥ online).
    pub fractional_bound: f64,
    /// `online_value / fractional_bound`, clamped to `[0, 1]`; defined
    /// as `1.0` when the epoch was infeasible for everyone (bound 0).
    pub ratio: f64,
    /// Dual-certificate slack of the oracle solve (`upper − primal` of
    /// the packing run; a mechanical weak-duality witness).
    pub duality_gap: f64,
    /// Commodities the snapshot contributed to the oracle LP.
    pub commodities: usize,
    /// Packing-solver iterations the oracle spent.
    pub iterations: usize,
}

/// Aggregated phase activity between one `epoch_begin`/`epoch_end`
/// pair: wall time of the bracket plus, per phase, the nanoseconds and
/// span count accumulated inside it.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochProfile {
    /// The epoch index the caller passed to `epoch_begin`.
    pub epoch: u64,
    /// Wall-clock nanoseconds between begin and end.
    pub wall_ns: u64,
    /// Per-phase nanoseconds accumulated inside the bracket
    /// (indexed by [`Phase::index`]).
    pub phase_ns: [u64; PHASE_COUNT],
    /// Per-phase span counts accumulated inside the bracket.
    pub phase_hits: [u64; PHASE_COUNT],
    /// Regret-oracle verdict for this epoch, when one was sampled
    /// (attached after the bracket closed via
    /// [`crate::Recorder::profile_set_regret`]).
    pub regret: Option<RegretSample>,
}

impl EpochProfile {
    /// Nanoseconds in the three `epoch.*` stages, which partition an
    /// engine epoch end to end — the profile coverage numerator.
    pub fn epoch_stage_ns(&self) -> u64 {
        Phase::ALL
            .iter()
            .filter(|p| p.is_epoch_stage())
            .map(|p| self.phase_ns[p.index()])
            .sum()
    }

    /// `epoch_stage_ns / wall_ns` (0 when the bracket had no wall
    /// time). The `--profile` acceptance check asserts this lands
    /// within 10% of 1.0 on a single-engine run.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.epoch_stage_ns() as f64 / self.wall_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_uses_only_epoch_stages() {
        let mut p = EpochProfile {
            epoch: 3,
            wall_ns: 1_000,
            phase_ns: [0; PHASE_COUNT],
            phase_hits: [0; PHASE_COUNT],
            regret: None,
        };
        p.phase_ns[Phase::EpochOpen.index()] = 100;
        p.phase_ns[Phase::EpochPlan.index()] = 600;
        p.phase_ns[Phase::EpochCommit.index()] = 250;
        // Nested phases must not inflate coverage.
        p.phase_ns[Phase::SelectionDijkstra.index()] = 550;
        assert_eq!(p.epoch_stage_ns(), 950);
        assert!((p.coverage() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_wall_coverage_is_zero() {
        let p = EpochProfile {
            epoch: 0,
            wall_ns: 0,
            phase_ns: [0; PHASE_COUNT],
            phase_hits: [0; PHASE_COUNT],
            regret: None,
        };
        assert_eq!(p.coverage(), 0.0);
    }
}
