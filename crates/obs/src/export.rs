//! Serializers for [`ObsSnapshot`](crate::ObsSnapshot): span JSONL, a
//! chrome://tracing-compatible trace file, and a metrics-registry JSON
//! dump. All output is **out-of-band telemetry** — none of it may be
//! embedded in a deterministic report (timestamps and durations are
//! wall-clock and vary run to run).

use crate::phase::Phase;
use crate::ObsSnapshot;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep floats
        // visually typed for downstream tooling.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// One JSON object per line, one line per retained span:
/// `{"phase":"epoch.plan","ts_us":…,"dur_us":…,"tid":…}` with the
/// optional attribute inlined as its own key. A final `meta` line
/// carries the drop counter so consumers can detect truncation.
pub fn spans_jsonl(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"tid\":{}",
            s.phase.name(),
            s.start_ns / 1_000,
            s.dur_ns / 1_000,
            s.tid
        );
        if let Some((name, value)) = s.attr {
            let _ = write!(out, ",\"{}\":{}", escape(name), value);
        }
        out.push_str("}\n");
    }
    let _ = writeln!(
        out,
        "{{\"meta\":\"ufp_obs\",\"spans\":{},\"spans_dropped\":{}}}",
        snap.spans.len(),
        snap.spans_dropped
    );
    out
}

/// A chrome://tracing (and Perfetto) compatible JSON document: one
/// complete event (`"ph":"X"`) per span, microsecond timestamps, the
/// recorder's dense thread ids as `tid`.
pub fn chrome_trace(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for s in &snap.spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ufp\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            s.phase.name(),
            s.tid,
            s.start_ns / 1_000,
            s.dur_ns / 1_000
        );
        if let Some((name, value)) = s.attr {
            let _ = write!(out, ",\"args\":{{\"{}\":{}}}", escape(name), value);
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"spans_dropped\":\"{}\"}}}}\n",
        snap.spans_dropped
    );
    out
}

/// The full registry plus phase totals and epoch profiles as one JSON
/// document — the `--metrics-out` payload.
pub fn metrics_json(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), value);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), fmt_f64(*value));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, count, sum, buckets)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            escape(name),
            count,
            sum
        );
        for (j, (lo, hi, hits)) in buckets.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}[{lo}, {hi}, {hits}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  },\n  \"phases\": {");
    for (i, p) in Phase::ALL.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"total_us\": {}, \"spans\": {}}}",
            p.name(),
            snap.phase_ns[p.index()] / 1_000,
            snap.phase_hits[p.index()]
        );
    }
    let _ = write!(
        out,
        "\n  }},\n  \"spans_retained\": {},\n  \"spans_dropped\": {},\n  \"epoch_profiles\": [",
        snap.spans.len(),
        snap.spans_dropped
    );
    for (i, prof) in snap.profiles.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"epoch\": {}, \"wall_us\": {}, \"coverage\": {}, \"phases\": {{",
            prof.epoch,
            prof.wall_ns / 1_000,
            fmt_f64(prof.coverage())
        );
        let mut first = true;
        for p in Phase::ALL {
            if prof.phase_hits[p.index()] == 0 && prof.phase_ns[p.index()] == 0 {
                continue;
            }
            let sep = if first { "" } else { ", " };
            first = false;
            let _ = write!(
                out,
                "{sep}\"{}\": [{}, {}]",
                p.name(),
                prof.phase_ns[p.index()] / 1_000,
                prof.phase_hits[p.index()]
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, Recorder};

    fn sample_snapshot() -> ObsSnapshot {
        let r = Recorder::enabled();
        r.epoch_begin(0);
        {
            let _g = r.span(Phase::EpochPlan);
        }
        {
            let _g = r.span_attr(Phase::PaymentProbe, "suffix_len", 9);
        }
        r.epoch_end(0);
        r.counter_add("par.steals", 3);
        r.gauge_set("engine.guard_slack", 1.5);
        r.histogram_record("probe.suffix", 9);
        r.snapshot().unwrap()
    }

    #[test]
    fn jsonl_has_one_object_per_span_plus_meta() {
        let snap = sample_snapshot();
        let text = spans_jsonl(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), snap.spans.len() + 1);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[1].contains("\"suffix_len\":9"));
        assert!(lines.last().unwrap().contains("\"spans_dropped\":0"));
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let snap = sample_snapshot();
        let text = chrome_trace(&snap);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), snap.spans.len());
        assert!(text.contains("\"name\":\"epoch.plan\""));
        assert!(text.contains("\"args\":{\"suffix_len\":9}"));
    }

    #[test]
    fn metrics_json_carries_registry_and_profiles() {
        let snap = sample_snapshot();
        let text = metrics_json(&snap);
        assert!(text.contains("\"par.steals\": 3"));
        assert!(text.contains("\"engine.guard_slack\": 1.5"));
        assert!(text.contains("\"probe.suffix\": {\"count\": 1, \"sum\": 9"));
        assert!(text.contains("\"epoch\": 0"));
        assert!(text.contains("\"payment.probe\""));
    }

    #[test]
    fn escaping_and_float_formatting() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
