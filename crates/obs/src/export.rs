//! Serializers for [`ObsSnapshot`](crate::ObsSnapshot): span JSONL, a
//! chrome://tracing-compatible trace file, a metrics-registry JSON
//! dump, and a Prometheus text exposition. All output is **out-of-band
//! telemetry** — none of it may be embedded in a deterministic report
//! (timestamps and durations are wall-clock and vary run to run).

use crate::phase::Phase;
use crate::ObsSnapshot;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep floats
        // visually typed for downstream tooling.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// One JSON object per line, one line per retained span:
/// `{"phase":"epoch.plan","ts_us":…,"dur_us":…,"tid":…}` with the
/// optional attribute inlined as its own key. A final `meta` line
/// carries the drop counter so consumers can detect truncation.
pub fn spans_jsonl(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.spans {
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"tid\":{}",
            s.phase.name(),
            s.start_ns / 1_000,
            s.dur_ns / 1_000,
            s.tid
        );
        if let Some((name, value)) = s.attr {
            let _ = write!(out, ",\"{}\":{}", escape(name), value);
        }
        out.push_str("}\n");
    }
    let _ = writeln!(
        out,
        "{{\"meta\":\"ufp_obs\",\"spans\":{},\"spans_dropped\":{}}}",
        snap.spans.len(),
        snap.spans_dropped
    );
    out
}

/// A chrome://tracing (and Perfetto) compatible JSON document: one
/// complete event (`"ph":"X"`) per span, microsecond timestamps, the
/// recorder's dense thread ids as `tid`.
pub fn chrome_trace(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for s in &snap.spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ufp\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            s.phase.name(),
            s.tid,
            s.start_ns / 1_000,
            s.dur_ns / 1_000
        );
        if let Some((name, value)) = s.attr {
            let _ = write!(out, ",\"args\":{{\"{}\":{}}}", escape(name), value);
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"spans_dropped\":\"{}\"}}}}\n",
        snap.spans_dropped
    );
    out
}

/// The full registry plus phase totals and epoch profiles as one JSON
/// document — the `--metrics-out` payload.
pub fn metrics_json(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), value);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), fmt_f64(*value));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, count, sum, buckets)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            escape(name),
            count,
            sum
        );
        for (j, (lo, hi, hits)) in buckets.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}[{lo}, {hi}, {hits}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  },\n  \"phases\": {");
    for (i, p) in Phase::ALL.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"total_us\": {}, \"spans\": {}}}",
            p.name(),
            snap.phase_ns[p.index()] / 1_000,
            snap.phase_hits[p.index()]
        );
    }
    let _ = write!(
        out,
        "\n  }},\n  \"spans_retained\": {},\n  \"spans_dropped\": {},\n  \"epoch_profiles\": [",
        snap.spans.len(),
        snap.spans_dropped
    );
    for (i, prof) in snap.profiles.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"epoch\": {}, \"wall_us\": {}, \"coverage\": {}, \"phases\": {{",
            prof.epoch,
            prof.wall_ns / 1_000,
            fmt_f64(prof.coverage())
        );
        let mut first = true;
        for p in Phase::ALL {
            if prof.phase_hits[p.index()] == 0 && prof.phase_ns[p.index()] == 0 {
                continue;
            }
            let sep = if first { "" } else { ", " };
            first = false;
            let _ = write!(
                out,
                "{sep}\"{}\": [{}, {}]",
                p.name(),
                prof.phase_ns[p.index()] / 1_000,
                prof.phase_hits[p.index()]
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Sanitize an internal dotted metric name into a legal Prometheus
/// metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character
/// becomes `_`, and a leading digit gets a `_` prefix. Empty names
/// become `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the only three escapes the exposition format defines).
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a float the way the exposition format spells specials.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// The whole snapshot as a Prometheus text exposition (format 0.0.4) —
/// the `--health-out` payload. Registry counters are suffixed `_total`
/// (unless already so named), histograms become cumulative
/// `_bucket{le=…}` series with `+Inf`/`_sum`/`_count`, phase totals and
/// health alerts are rendered as labelled series, and each epoch's
/// regret-oracle sample (when present) becomes `ufp_regret_*` series
/// labelled by epoch.
pub fn prometheus_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let mut n = prom_name(name);
        if !n.ends_with("_total") {
            n.push_str("_total");
        }
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(*value));
    }
    for (name, count, sum, buckets) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (_, hi, hits) in buckets {
            cumulative += hits;
            let _ = writeln!(out, "{n}_bucket{{le=\"{hi}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{n}_sum {sum}");
        let _ = writeln!(out, "{n}_count {count}");
    }
    out.push_str("# TYPE ufp_phase_seconds_total counter\n");
    for p in Phase::ALL {
        let _ = writeln!(
            out,
            "ufp_phase_seconds_total{{phase=\"{}\"}} {}",
            prom_label_value(p.name()),
            prom_f64(snap.phase_ns[p.index()] as f64 / 1e9)
        );
    }
    out.push_str("# TYPE ufp_phase_spans_total counter\n");
    for p in Phase::ALL {
        let _ = writeln!(
            out,
            "ufp_phase_spans_total{{phase=\"{}\"}} {}",
            prom_label_value(p.name()),
            snap.phase_hits[p.index()]
        );
    }
    let _ = writeln!(
        out,
        "# TYPE ufp_spans_dropped_total counter\nufp_spans_dropped_total {}",
        snap.spans_dropped
    );
    let mut alert_counts = std::collections::BTreeMap::new();
    for a in &snap.alerts {
        *alert_counts.entry(a.kind()).or_insert(0u64) += 1;
    }
    out.push_str("# TYPE ufp_health_alerts_total counter\n");
    for (kind, count) in &alert_counts {
        let _ = writeln!(
            out,
            "ufp_health_alerts_total{{kind=\"{}\"}} {count}",
            prom_label_value(kind)
        );
    }
    let sampled: Vec<_> = snap
        .profiles
        .iter()
        .filter_map(|p| p.regret.map(|r| (p.epoch, r)))
        .collect();
    if !sampled.is_empty() {
        for (metric, read) in [
            ("ufp_regret_ratio", 0usize),
            ("ufp_regret_online_value", 1),
            ("ufp_regret_fractional_bound", 2),
            ("ufp_regret_duality_gap", 3),
        ] {
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (epoch, r) in &sampled {
                let v = match read {
                    0 => r.ratio,
                    1 => r.online_value,
                    2 => r.fractional_bound,
                    _ => r.duality_gap,
                };
                let _ = writeln!(out, "{metric}{{epoch=\"{epoch}\"}} {}", prom_f64(v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HealthAlert, Phase, Recorder, RegretSample};

    fn sample_snapshot() -> ObsSnapshot {
        let r = Recorder::enabled();
        r.epoch_begin(0);
        {
            let _g = r.span(Phase::EpochPlan);
        }
        {
            let _g = r.span_attr(Phase::PaymentProbe, "suffix_len", 9);
        }
        r.epoch_end(0);
        r.counter_add("par.steals", 3);
        r.gauge_set("engine.guard_slack", 1.5);
        r.histogram_record("probe.suffix", 9);
        r.snapshot().unwrap()
    }

    #[test]
    fn jsonl_has_one_object_per_span_plus_meta() {
        let snap = sample_snapshot();
        let text = spans_jsonl(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), snap.spans.len() + 1);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[1].contains("\"suffix_len\":9"));
        assert!(lines.last().unwrap().contains("\"spans_dropped\":0"));
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let snap = sample_snapshot();
        let text = chrome_trace(&snap);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert_eq!(text.matches("\"ph\":\"X\"").count(), snap.spans.len());
        assert!(text.contains("\"name\":\"epoch.plan\""));
        assert!(text.contains("\"args\":{\"suffix_len\":9}"));
    }

    #[test]
    fn metrics_json_carries_registry_and_profiles() {
        let snap = sample_snapshot();
        let text = metrics_json(&snap);
        assert!(text.contains("\"par.steals\": 3"));
        assert!(text.contains("\"engine.guard_slack\": 1.5"));
        assert!(text.contains("\"probe.suffix\": {\"count\": 1, \"sum\": 9"));
        assert!(text.contains("\"epoch\": 0"));
        assert!(text.contains("\"payment.probe\""));
    }

    #[test]
    fn escaping_and_float_formatting() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    fn assert_legal_prom_name(n: &str) {
        let mut chars = n.chars();
        let first = chars.next().expect("empty metric name");
        assert!(
            first.is_ascii_alphabetic() || first == '_' || first == ':',
            "bad first char in {n}"
        );
        for c in chars {
            assert!(
                c.is_ascii_alphanumeric() || c == '_' || c == ':',
                "bad char {c:?} in {n}"
            );
        }
    }

    #[test]
    fn prometheus_sanitizes_adversarial_metric_names() {
        let r = Recorder::enabled();
        // Dots, spaces, unicode, quotes, leading digits, empty string:
        // every one must come out as a legal metric name.
        r.counter_add("engine.evictions_total", 4);
        r.counter_add("weird name {with=\"labels\"}", 1);
        r.gauge_set("7starts.with.digit", 1.5);
        r.gauge_set("uni\u{2603}code", 2.5);
        r.gauge_set("", 0.5);
        r.histogram_record("epoch wall µs", 100);
        let text = prometheus_text(&r.snapshot().unwrap());
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line has a name");
            // Histogram sample suffixes (_bucket/_sum/_count) are part
            // of the rendered name and must themselves be legal.
            assert_legal_prom_name(name);
        }
        // `_total` is appended exactly once.
        assert!(text.contains("engine_evictions_total 4"));
        assert!(!text.contains("engine_evictions_total_total"));
        assert!(text.contains("weird_name__with__labels___total 1"));
        assert!(text.contains("_7starts_with_digit 1.5"));
    }

    #[test]
    fn prometheus_empty_registry_still_exports_phase_series() {
        let r = Recorder::enabled();
        let text = prometheus_text(&r.snapshot().unwrap());
        // No registry metrics, no alerts, no regret — but the fixed
        // phase/drop series are always present and well-formed.
        assert!(text.contains("# TYPE ufp_phase_seconds_total counter"));
        assert!(text.contains("ufp_phase_seconds_total{phase=\"epoch.plan\"} 0"));
        assert!(text.contains("ufp_spans_dropped_total 0"));
        assert!(!text.contains("ufp_regret_ratio"));
        assert!(!text.contains("{kind="));
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.contains(' '),
                "malformed line {line}"
            );
        }
    }

    #[test]
    fn prometheus_histograms_are_cumulative() {
        let r = Recorder::enabled();
        r.histogram_record("lat.us", 1);
        r.histogram_record("lat.us", 1);
        r.histogram_record("lat.us", 1_000_000);
        let text = prometheus_text(&r.snapshot().unwrap());
        assert!(text.contains("# TYPE lat_us histogram"));
        // First nonzero bucket holds 2, the +Inf bucket the full count.
        assert!(text.contains("lat_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_count 3"));
        assert!(text.contains("lat_us_sum 1000002"));
    }

    #[test]
    fn prometheus_renders_alerts_and_regret() {
        let r = Recorder::enabled();
        r.epoch_begin(3);
        r.epoch_end(3);
        r.profile_set_regret(
            3,
            RegretSample {
                online_value: 8.0,
                fractional_bound: 10.0,
                ratio: 0.8,
                duality_gap: 0.25,
                commodities: 5,
                iterations: 40,
            },
        );
        r.alert(HealthAlert::SloMiss {
            epoch: 3,
            observed_us: 900,
            threshold_us: 500,
        });
        r.alert(HealthAlert::SloMiss {
            epoch: 4,
            observed_us: 700,
            threshold_us: 500,
        });
        let text = prometheus_text(&r.snapshot().unwrap());
        assert!(text.contains("ufp_health_alerts_total{kind=\"slo_miss\"} 2"));
        assert!(text.contains("ufp_regret_ratio{epoch=\"3\"} 0.8"));
        assert!(text.contains("ufp_regret_fractional_bound{epoch=\"3\"} 10"));
        assert!(text.contains("ufp_regret_duality_gap{epoch=\"3\"} 0.25"));
    }

    #[test]
    fn prometheus_label_escaping() {
        assert_eq!(prom_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
    }
}
