//! Property-based tests for the graph substrate.
//!
//! The load-bearing invariant: the optimized, workspace-reusing Dijkstra
//! must agree with the naive Bellman–Ford oracle on every graph, weight
//! assignment, and query — distances equal, and returned paths valid with
//! matching weight.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ufp_netgraph::bellman::BellmanFord;
use ufp_netgraph::dijkstra::{Dijkstra, Targets};
use ufp_netgraph::enumerate::simple_paths;
use ufp_netgraph::generators;
use ufp_netgraph::graph::{Graph, GraphBuilder};
use ufp_netgraph::ids::NodeId;

/// Strategy: a random directed graph (adjacency by arc list) plus positive
/// weights per edge.
fn arb_digraph() -> impl Strategy<Value = (Graph, Vec<f64>)> {
    (2usize..12, 0usize..40, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_edges = n * (n - 1);
        let m = (extra % (max_edges + 1)).max(1).min(max_edges);
        let g = generators::gnm_digraph(n, m, (1.0, 8.0), &mut rng);
        let weights: Vec<f64> = (0..g.num_edges())
            .map(|i| ((seed.rotate_left(i as u32) % 1000) as f64) / 100.0 + 0.01)
            .collect();
        (g, weights)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford((g, w) in arb_digraph()) {
        let mut dij = Dijkstra::new(g.num_nodes());
        for src in 0..g.num_nodes().min(4) {
            let src = NodeId(src as u32);
            let oracle = BellmanFord::run(&g, &w, src);
            dij.run(&g, &w, src, Targets::All, |_| true);
            for v in g.node_ids() {
                match (dij.distance(v), oracle.distance(v)) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9,
                        "distance mismatch at {v}: dijkstra {a} vs bellman {b}"),
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "reachability mismatch at {v}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn dijkstra_paths_are_valid_and_consistent((g, w) in arb_digraph()) {
        let mut dij = Dijkstra::new(g.num_nodes());
        let src = NodeId(0);
        dij.run(&g, &w, src, Targets::All, |_| true);
        for v in g.node_ids() {
            if let Some(p) = dij.path_to(v) {
                prop_assert!(p.validate(&g).is_ok());
                prop_assert_eq!(p.source(), src);
                prop_assert_eq!(p.target(), v);
                let d = dij.distance(v).unwrap();
                prop_assert!((p.weight(&w) - d).abs() < 1e-9,
                    "path weight {} disagrees with reported distance {}", p.weight(&w), d);
            }
        }
    }

    #[test]
    fn enumeration_contains_the_shortest_path((g, w) in arb_digraph()) {
        let mut dij = Dijkstra::new(g.num_nodes());
        let (s, t) = (NodeId(0), NodeId((g.num_nodes() - 1) as u32));
        if let Some(res) = dij.shortest_path(&g, &w, s, t, |_| true) {
            let all = simple_paths(&g, s, t, usize::MAX, 100_000, |_| true);
            prop_assert!(!all.is_empty());
            // every enumerated path is valid and none is shorter than Dijkstra's
            let mut best = f64::INFINITY;
            for p in &all {
                prop_assert!(p.validate(&g).is_ok());
                best = best.min(p.weight(&w));
            }
            prop_assert!(res.distance <= best + 1e-9,
                "dijkstra {} worse than enumerated best {}", res.distance, best);
            prop_assert!(best <= res.distance + 1e-9,
                "enumeration missed the optimum: best {} vs dijkstra {}", best, res.distance);
        }
    }

    #[test]
    fn csr_round_trip_preserves_edges((g, _w) in arb_digraph()) {
        // Every edge appears in the adjacency of its source exactly once.
        let mut counts = vec![0usize; g.num_edges()];
        for v in g.node_ids() {
            for adj in g.neighbors(v) {
                prop_assert_eq!(g.edge(adj.edge).src, v);
                prop_assert_eq!(g.edge(adj.edge).dst, adj.to);
                counts[adj.edge.index()] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 1));
    }
}

#[test]
fn undirected_dijkstra_agrees_with_bellman_on_grid() {
    let g = generators::grid(5, 5, 3.0);
    let w: Vec<f64> = (0..g.num_edges()).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut dij = Dijkstra::new(g.num_nodes());
    for s in [0u32, 7, 24] {
        let oracle = BellmanFord::run(&g, &w, NodeId(s));
        dij.run(&g, &w, NodeId(s), Targets::All, |_| true);
        for v in g.node_ids() {
            assert_eq!(
                dij.distance(v).is_some(),
                oracle.distance(v).is_some(),
                "reachability mismatch"
            );
            if let (Some(a), Some(b)) = (dij.distance(v), oracle.distance(v)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn builder_rejects_bad_graphs() {
    let mut b = GraphBuilder::directed(3);
    b.add_edge(NodeId(0), NodeId(1), 1.0);
    let g = b.build();
    assert_eq!(g.num_edges(), 1);
    assert!(std::panic::catch_unwind(|| {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(0), NodeId(1), -1.0);
    })
    .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PR 4 contract: the indexed 4-ary decrease-key queue and the lazy
    /// binary-heap queue are interchangeable — identical settle verdicts,
    /// bit-identical distances, identical reconstructed paths — under
    /// random graphs, weights, edge filters, and target modes. This is
    /// what lets the default backend be chosen by benchmark alone.
    #[test]
    fn dijkstra_heap_backends_bit_identical((g, w) in arb_digraph()) {
        use ufp_netgraph::dijkstra::HeapKind;
        use ufp_netgraph::path::Path;
        let mut idx = Dijkstra::with_heap(g.num_nodes(), HeapKind::Indexed4);
        let mut lazy = Dijkstra::with_heap(g.num_nodes(), HeapKind::LazyBinary);
        let mut buf = Path::trivial(NodeId(0));
        for (qi, src) in (0..g.num_nodes().min(4)).enumerate() {
            let src = NodeId(src as u32);
            let filter = |e: ufp_netgraph::ids::EdgeId| (e.0 as usize + qi) % 5 != 1;
            let targets = match qi {
                0 => Targets::All,
                1 => Targets::One(NodeId((g.num_nodes() as u32) - 1)),
                _ => Targets::All,
            };
            idx.run(&g, &w, src, targets, filter);
            lazy.run(&g, &w, src, targets, filter);
            for v in g.node_ids() {
                let (a, b) = (idx.distance(v), lazy.distance(v));
                prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits),
                    "distance diverged at {}", v);
                let (pa, pb) = (idx.path_to(v), lazy.path_to(v));
                prop_assert_eq!(&pa, &pb, "path diverged at {}", v);
                // The reuse API writes the same bytes as the allocating one.
                if idx.path_to_into(v, &mut buf) {
                    prop_assert_eq!(Some(&buf), pa.as_ref());
                }
            }
        }
    }
}
