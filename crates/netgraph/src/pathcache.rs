//! Per-slot shortest-path cache with an edge→slot interest index.
//!
//! The incremental selection loop in `ufp-core` keeps, for every
//! still-unrouted request, its last shortest path and distance. The
//! monotone weight dynamics of Algorithm 1 (edge weights only grow,
//! residuals only shrink within an epoch) guarantee that a cached answer
//! stays **exact** until one of the edges *on the cached path* changes —
//! changes elsewhere can only make alternative paths worse. This module
//! is the storage half of that scheme:
//!
//! * a dense slot-indexed store of `(distance, Path)` entries, refreshed
//!   in place (allocation-free after warm-up via
//!   [`crate::dijkstra::Dijkstra::path_to_into`]);
//! * a reverse **interest index** `edge → [(slot, version)]`: committing
//!   a slot's path registers the slot under each edge it crosses, and
//!   [`PathCache::drain_interested`] answers "whose cached paths cross
//!   this edge?" when the edge's weight or residual moves.
//!
//! Staleness is handled by versioning, not eager unlinking: every commit
//! or eviction bumps the slot's version, so registrations left behind by
//! a previous path are dropped lazily the next time their edge is
//! scanned. Total index work is therefore bounded by total registration
//! work (each entry is pushed once and removed once).
//!
//! The cache is policy-free: it does not decide *when* an entry is dirty
//! (the selection loop tracks that, together with the weight-scale
//! generation), it only stores answers and inverts paths to slots.

use crate::ids::{EdgeId, NodeId};
use crate::path::Path;

/// One interest registration: `slot` had `edge` on its cached path as of
/// `version`. Stale once the slot's version moves on.
#[derive(Clone, Copy, Debug)]
struct InterestEntry {
    slot: u32,
    version: u64,
}

/// Dense per-slot path/distance cache with reverse edge interest.
#[derive(Clone, Debug)]
pub struct PathCache {
    /// Cached distance per slot (meaningful only while `present`).
    dist: Vec<f64>,
    /// Cached path per slot; `None` until first commit, then reused as a
    /// buffer for every later refresh of the same slot.
    paths: Vec<Option<Path>>,
    present: Vec<bool>,
    version: Vec<u64>,
    interest: Vec<Vec<InterestEntry>>,
}

impl PathCache {
    /// An empty cache over `num_slots` slots and `num_edges` edges.
    pub fn new(num_slots: usize, num_edges: usize) -> Self {
        PathCache {
            dist: vec![0.0; num_slots],
            paths: vec![None; num_slots],
            present: vec![false; num_slots],
            version: vec![0; num_slots],
            interest: vec![Vec::new(); num_edges],
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.present.len()
    }

    /// The cached `(distance, path)` of `slot`, if one is stored.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<(f64, &Path)> {
        let s = slot as usize;
        if !self.present[s] {
            return None;
        }
        Some((self.dist[s], self.paths[s].as_ref().expect("present entry")))
    }

    /// Mutable access to `slot`'s path buffer for an in-place refresh
    /// (hand it to `Dijkstra::path_to_into`, then call
    /// [`PathCache::commit`]). Creates the buffer on first use; the
    /// entry is not considered present until committed.
    pub fn refresh_buffer(&mut self, slot: u32) -> &mut Path {
        let s = slot as usize;
        self.present[s] = false;
        self.paths[s].get_or_insert_with(|| Path::trivial(NodeId(0)))
    }

    /// Commit the path currently in `slot`'s buffer with its distance:
    /// bumps the slot's version (invalidating old registrations) and
    /// registers interest under every edge of the new path.
    pub fn commit(&mut self, slot: u32, dist: f64) {
        let s = slot as usize;
        let path = self.paths[s]
            .as_ref()
            .expect("commit requires a filled refresh_buffer");
        self.version[s] += 1;
        let version = self.version[s];
        for &e in path.edges() {
            self.interest[e.index()].push(InterestEntry { slot, version });
        }
        self.dist[s] = dist;
        self.present[s] = true;
    }

    /// Store an owned path for `slot` (the grouped fan-out refresh path,
    /// where workers hand back materialized paths). Equivalent to
    /// filling the refresh buffer and committing.
    pub fn install(&mut self, slot: u32, dist: f64, path: Path) {
        self.paths[slot as usize] = Some(path);
        self.commit(slot, dist);
    }

    /// Drop `slot`'s entry (selected winners, unreachable requests). Old
    /// interest registrations die by version bump.
    pub fn evict(&mut self, slot: u32) {
        let s = slot as usize;
        self.present[s] = false;
        self.version[s] += 1;
    }

    /// Collect into `out` every slot whose *current* cached path crosses
    /// `edge`, removing the scanned registrations (current ones included
    /// — the caller is about to refresh those slots, which re-registers
    /// them; a slot that stays dirty keeps its registrations under the
    /// other edges of its stale path, so later scans still find it).
    /// `out` is appended to, not cleared, and may receive a slot at most
    /// once per call but repeatedly across calls — deduplicate with a
    /// dirty flag on the caller's side.
    pub fn drain_interested(&mut self, edge: EdgeId, out: &mut Vec<u32>) {
        let list = &mut self.interest[edge.index()];
        for entry in list.drain(..) {
            let s = entry.slot as usize;
            if self.present[s] && self.version[s] == entry.version {
                out.push(entry.slot);
            }
        }
    }

    /// Registered interest entries for `edge`, stale ones included
    /// (diagnostics / tests).
    pub fn interest_len(&self, edge: EdgeId) -> usize {
        self.interest[edge.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[u32]) -> Path {
        // Edge ids synthesized as src node id (good enough for cache
        // tests — the cache never validates against a graph).
        let edges: Vec<EdgeId> = nodes[..nodes.len() - 1]
            .iter()
            .map(|&n| EdgeId(n))
            .collect();
        Path::new(nodes.iter().map(|&n| NodeId(n)).collect(), edges)
    }

    #[test]
    fn install_get_evict_round_trip() {
        let mut c = PathCache::new(4, 8);
        assert!(c.get(1).is_none());
        c.install(1, 2.5, path(&[0, 1, 2]));
        let (d, p) = c.get(1).unwrap();
        assert_eq!(d, 2.5);
        assert_eq!(p.len(), 2);
        c.evict(1);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn interest_finds_crossing_slots_once() {
        let mut c = PathCache::new(4, 8);
        c.install(0, 1.0, path(&[0, 1, 2])); // edges 0, 1
        c.install(1, 1.0, path(&[1, 2, 3])); // edges 1, 2
        c.install(2, 1.0, path(&[3, 4])); // edge 3
        let mut out = Vec::new();
        c.drain_interested(EdgeId(1), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        // Drained: a second scan of the same edge finds nothing until a
        // re-commit re-registers.
        out.clear();
        c.drain_interested(EdgeId(1), &mut out);
        assert!(out.is_empty());
        // Slot 0 is still registered under its other edge.
        out.clear();
        c.drain_interested(EdgeId(0), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn stale_registrations_are_dropped() {
        let mut c = PathCache::new(2, 8);
        c.install(0, 1.0, path(&[0, 1, 2])); // edges 0, 1
        c.install(0, 2.0, path(&[0, 3, 4])); // now edges 0, 3
        let mut out = Vec::new();
        // Edge 1 belonged to the old path only: the stale entry must not
        // resurface slot 0.
        c.drain_interested(EdgeId(1), &mut out);
        assert!(out.is_empty());
        // Edge 0 has one stale and one current entry; slot reported once.
        c.drain_interested(EdgeId(0), &mut out);
        assert_eq!(out, vec![0]);
        // Evicted slots never surface.
        c.install(0, 2.0, path(&[0, 3, 4]));
        c.evict(0);
        out.clear();
        c.drain_interested(EdgeId(3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn refresh_buffer_commit_reuses_allocation() {
        let mut c = PathCache::new(2, 8);
        c.install(0, 1.0, path(&[0, 1, 2]));
        let before = c.get(0).unwrap().1.nodes().as_ptr();
        {
            let buf = c.refresh_buffer(0);
            // In-place rebuild, as Dijkstra::path_to_into would do.
            let replacement = path(&[0, 5, 6, 7]);
            *buf = replacement;
        }
        c.commit(0, 9.0);
        let (d, p) = c.get(0).unwrap();
        assert_eq!(d, 9.0);
        assert_eq!(p.len(), 3);
        // While a refresh is in flight (buffer taken, not committed) the
        // entry reads as absent.
        c.refresh_buffer(0);
        assert!(c.get(0).is_none());
        c.commit(0, 9.5);
        assert!(c.get(0).is_some());
        let _ = before; // pointer comparison is moot after the swap above
    }
}
