//! Compressed sparse-row adjacency.
//!
//! The adjacency of every vertex is a contiguous slice of `(neighbor,
//! edge-id)` pairs, so the Dijkstra relaxation loop walks a single flat
//! array with perfect spatial locality — the standard HPC layout for
//! static graphs. Built once by [`Csr::build`]; the graph is immutable
//! afterwards.

use crate::ids::{EdgeId, NodeId};

/// One adjacency entry: the vertex on the far side of `edge`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// Neighbor reached by traversing the edge from the owning vertex.
    pub to: NodeId,
    /// The edge traversed (shared between both directions when undirected).
    pub edge: EdgeId,
}

/// Compressed sparse-row adjacency structure.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` delimits `entries` for vertex `v`.
    offsets: Vec<u32>,
    entries: Vec<AdjEntry>,
}

impl Csr {
    /// Build from an arc list. Each `(src, dst, edge)` triple becomes one
    /// adjacency entry of `src`; callers add both directions for
    /// undirected edges. Uses counting sort: O(n + m), deterministic entry
    /// order (by source vertex, then insertion order of the arcs).
    pub fn build(num_nodes: u32, arcs: &[(NodeId, NodeId, EdgeId)]) -> Self {
        let n = num_nodes as usize;
        let mut counts = vec![0u32; n + 1];
        for &(src, _, _) in arcs {
            debug_assert!(src.index() < n, "arc source out of range");
            counts[src.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![
            AdjEntry {
                to: NodeId(0),
                edge: EdgeId(0)
            };
            arcs.len()
        ];
        for &(src, dst, edge) in arcs {
            let slot = cursor[src.index()] as usize;
            entries[slot] = AdjEntry { to: dst, edge };
            cursor[src.index()] += 1;
        }
        Csr { offsets, entries }
    }

    /// Adjacency slice of vertex `v`.
    #[inline(always)]
    pub fn neighbors(&self, v: NodeId) -> &[AdjEntry] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Out-degree of vertex `v` (counting multi-edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Total number of adjacency entries (2·|E| for undirected graphs).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }
    fn e(v: u32) -> EdgeId {
        EdgeId(v)
    }

    #[test]
    fn builds_grouped_and_ordered() {
        // arcs listed out of source order on purpose
        let arcs = vec![
            (n(2), n(0), e(0)),
            (n(0), n(1), e(1)),
            (n(0), n(2), e(2)),
            (n(2), n(1), e(3)),
        ];
        let csr = Csr::build(3, &arcs);
        assert_eq!(
            csr.neighbors(n(0)),
            &[
                AdjEntry {
                    to: n(1),
                    edge: e(1)
                },
                AdjEntry {
                    to: n(2),
                    edge: e(2)
                }
            ]
        );
        assert_eq!(csr.neighbors(n(1)), &[]);
        assert_eq!(csr.degree(n(2)), 2);
        assert_eq!(csr.num_entries(), 4);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::build(4, &[]);
        for v in 0..4 {
            assert!(csr.neighbors(n(v)).is_empty());
        }
    }

    #[test]
    fn parallel_edges_kept_separate() {
        let arcs = vec![(n(0), n(1), e(0)), (n(0), n(1), e(1))];
        let csr = Csr::build(2, &arcs);
        assert_eq!(csr.degree(n(0)), 2);
        assert_ne!(csr.neighbors(n(0))[0].edge, csr.neighbors(n(0))[1].edge);
    }

    #[test]
    fn insertion_order_preserved_within_vertex() {
        let arcs: Vec<_> = (0..10u32).map(|i| (n(0), n(1), e(i))).collect();
        let csr = Csr::build(2, &arcs);
        let ids: Vec<u32> = csr.neighbors(n(0)).iter().map(|a| a.edge.0).collect();
        assert_eq!(ids, (0..10u32).collect::<Vec<_>>());
    }
}
