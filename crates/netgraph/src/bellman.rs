//! Bellman–Ford single-source shortest paths.
//!
//! Deliberately simple O(n·m) implementation used as a *test oracle* for
//! [`crate::dijkstra`] (the two must agree on non-negative weights) and by
//! the LP substrate's sanity checks. Not used on any hot path.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::path::Path;

/// Distances and parent pointers from a single source.
#[derive(Clone, Debug)]
pub struct BellmanFord {
    dist: Vec<f64>,
    parent_node: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
}

impl BellmanFord {
    /// Run Bellman–Ford from `src`. Panics on negative cycles (cannot occur
    /// with the non-negative weights used throughout this workspace; the
    /// check documents the assumption).
    pub fn run(graph: &Graph, weights: &[f64], src: NodeId) -> Self {
        let n = graph.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent_node = vec![None; n];
        let mut parent_edge = vec![None; n];
        dist[src.index()] = 0.0;

        // Relax via adjacency so undirected edges work in both directions.
        for round in 0..n {
            let mut changed = false;
            for v in graph.node_ids() {
                if dist[v.index()].is_infinite() {
                    continue;
                }
                for adj in graph.neighbors(v) {
                    let cand = dist[v.index()] + weights[adj.edge.index()];
                    if cand < dist[adj.to.index()] - 1e-15 {
                        dist[adj.to.index()] = cand;
                        parent_node[adj.to.index()] = Some(v);
                        parent_edge[adj.to.index()] = Some(adj.edge);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            assert!(round + 1 < n || !changed, "negative cycle detected");
        }
        BellmanFord {
            dist,
            parent_node,
            parent_edge,
        }
    }

    /// Distance to `v`, or `None` if unreachable.
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Shortest path to `v`, or `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if self.dist[v.index()].is_infinite() {
            return None;
        }
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some(p) = self.parent_node[cur.index()] {
            edges.push(self.parent_edge[cur.index()].expect("parent edge set with node"));
            cur = p;
            nodes.push(cur);
        }
        nodes.reverse();
        edges.reverse();
        Some(Path::new(nodes, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn matches_hand_computation() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        b.add_edge(NodeId(1), NodeId(3), 1.0);
        b.add_edge(NodeId(2), NodeId(3), 1.0);
        let g = b.build();
        let w = vec![1.0, 4.0, 2.0, 0.5];
        let bf = BellmanFord::run(&g, &w, NodeId(0));
        assert_eq!(bf.distance(NodeId(3)), Some(3.0));
        let p = bf.path_to(NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = GraphBuilder::directed(2).build();
        let bf = BellmanFord::run(&g, &[], NodeId(0));
        assert_eq!(bf.distance(NodeId(1)), None);
        assert!(bf.path_to(NodeId(1)).is_none());
    }

    #[test]
    fn undirected_relaxes_both_ways() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(NodeId(1), NodeId(0), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        let g = b.build();
        let bf = BellmanFord::run(&g, &[5.0, 7.0], NodeId(0));
        assert_eq!(bf.distance(NodeId(2)), Some(12.0));
    }
}
