//! A total-order wrapper for finite `f64` values.
//!
//! Dijkstra's priority queue and the per-iteration "most violated dual
//! constraint" selection both need `Ord` on floating-point scores. All
//! scores in this workspace are finite and non-negative by construction
//! (edge weights are positive exponentials, demands and values are
//! positive), so we reject NaN at construction instead of carrying
//! IEEE-754 partial-order complexity into every comparison.

use std::cmp::Ordering;

/// A finite, totally ordered `f64`.
///
/// Construction panics on NaN; every other value (including infinities,
/// which legitimately appear as "no path" distances) is allowed.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a float. Panics if `v` is NaN.
    #[inline(always)]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrderedF64 cannot hold NaN");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline(always)]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedF64 {
    #[inline(always)]
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline(always)]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline(always)]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction (debug) and never produced
        // by the positive-weight arithmetic feeding this type.
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_finite_values() {
        let mut v = vec![
            OrderedF64::new(3.5),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.0),
            OrderedF64::new(f64::INFINITY),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrderedF64::get).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.5, f64::INFINITY]);
    }

    #[test]
    fn equality_matches_f64() {
        assert_eq!(OrderedF64::new(2.0), OrderedF64::new(2.0));
        assert_ne!(OrderedF64::new(2.0), OrderedF64::new(2.0000001));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    fn from_impl() {
        let x: OrderedF64 = 1.25f64.into();
        assert_eq!(x.get(), 1.25);
    }
}
