//! Breadth-first search utilities: reachability and hop counts.

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::ids::NodeId;

/// Hop distance (number of edges) from `src` to every vertex;
/// `usize::MAX` marks unreachable vertices.
pub fn hop_distances(graph: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.num_nodes()];
    dist[src.index()] = 0;
    let mut queue = VecDeque::with_capacity(16);
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for adj in graph.neighbors(v) {
            if dist[adj.to.index()] == usize::MAX {
                dist[adj.to.index()] = dv + 1;
                queue.push_back(adj.to);
            }
        }
    }
    dist
}

/// True iff `dst` is reachable from `src`.
pub fn is_reachable(graph: &Graph, src: NodeId, dst: NodeId) -> bool {
    hop_distances(graph, src)[dst.index()] != usize::MAX
}

/// Number of vertices reachable from `src` (including `src`).
pub fn reachable_count(graph: &Graph, src: NodeId) -> usize {
    hop_distances(graph, src)
        .iter()
        .filter(|&&d| d != usize::MAX)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn hop_counts_on_a_line() {
        let mut b = GraphBuilder::directed(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0);
        }
        let g = b.build();
        assert_eq!(hop_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
        assert!(is_reachable(&g, NodeId(0), NodeId(3)));
        assert!(!is_reachable(&g, NodeId(3), NodeId(0)));
        assert_eq!(reachable_count(&g, NodeId(2)), 2);
    }

    #[test]
    fn undirected_reachability_is_symmetric() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        assert!(is_reachable(&g, NodeId(1), NodeId(0)));
        assert!(!is_reachable(&g, NodeId(0), NodeId(2)));
    }
}
