//! Indexed 4-ary min-heap with decrease-key.
//!
//! Two hot loops in this workspace need a monotone priority queue over a
//! dense slot space:
//!
//! * Dijkstra's tentative-distance queue (slots are node ids). The
//!   classic `BinaryHeap<Reverse<(dist, node)>>` + lazy-deletion scheme
//!   pushes one entry per *relaxation* and filters stale pops with a
//!   settled check; this heap keeps exactly one entry per node and
//!   shrinks it in place on decrease-key, so the heap never holds more
//!   than `n` entries and every pop is live.
//! * The incremental selection loop's lazy score heap (slots are request
//!   ids), whose keys move the *other* way — scores only grow — via
//!   [`IndexedMinHeap::update`], and whose entries must be removable by
//!   slot when a request is selected or proven pathless. Lazy deletion
//!   is a poor fit there: stale score entries would accumulate across
//!   thousands of iterations with no settle check to filter them.
//!
//! Ordering is lexicographic on `(key, slot)`: among equal keys the
//! smaller slot wins. That is byte-for-byte the tie-break the lazy
//! `(OrderedF64, NodeId)` tuples gave Dijkstra, and exactly the
//! deterministic request-id tie-break Algorithm 1's argmin requires —
//! swapping either consumer onto this heap changes no observable result
//! (proptested against the lazy implementation).
//!
//! Layout notes: keys live *inline* in the heap array as `(key, slot)`
//! pairs, so sift comparisons touch one contiguous array; the side
//! `pos` index only pays on swaps (an earlier side-array layout lost
//! ~20% to pointer chasing). The 4-ary fan-out (children of `i` at
//! `4i+1 ..= 4i+4`) halves the tree depth of a binary heap: more
//! comparisons per level, fewer cache-missing levels. Measured on this
//! workspace's Dijkstra (`selection_benches`, `dijkstra_heap/*`), this
//! heap beats the lazy binary heap by 11–18% on full-tree queries and
//! ties it on targeted early-exit queries — which is why it is
//! [`crate::dijkstra::HeapKind`]'s default.

use crate::ordered::OrderedF64;

/// Sentinel for "slot not in the heap" in the position index.
const ABSENT: u32 = u32::MAX;

/// Heap arity. Children of position `i` live at `D*i + 1 ..= D*i + D`.
const D: usize = 4;

/// An indexed min-heap over dense `u32` slots with `f64` keys, ordered by
/// `(key, slot)`.
///
/// The slot universe is fixed at construction ([`IndexedMinHeap::new`]);
/// each slot is in the heap at most once. [`IndexedMinHeap::clear`] costs
/// `O(live entries)`, so a workspace reused across many queries (the
/// Dijkstra pattern) pays per-query cost proportional to what the query
/// touched, not to the universe size.
#[derive(Clone, Debug)]
pub struct IndexedMinHeap {
    /// `pos[slot]` — position of `slot` in `data`, or [`ABSENT`].
    pos: Vec<u32>,
    /// The heap itself: `(key, slot)` in 4-ary heap order.
    data: Vec<(OrderedF64, u32)>,
}

impl IndexedMinHeap {
    /// A heap over slots `0 .. num_slots`, initially empty.
    pub fn new(num_slots: usize) -> Self {
        IndexedMinHeap {
            pos: vec![ABSENT; num_slots],
            data: Vec::new(),
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no entry is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when `slot` currently has an entry.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.pos[slot as usize] != ABSENT
    }

    /// Current key of `slot`, if it has an entry.
    #[inline]
    pub fn key(&self, slot: u32) -> Option<f64> {
        let at = self.pos[slot as usize];
        (at != ABSENT).then(|| self.data[at as usize].0.get())
    }

    /// Remove every entry in `O(live entries)`.
    pub fn clear(&mut self) {
        for &(_, slot) in &self.data {
            self.pos[slot as usize] = ABSENT;
        }
        self.data.clear();
    }

    /// The minimum `(slot, key)` without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(u32, f64)> {
        self.data.first().map(|&(k, slot)| (slot, k.get()))
    }

    /// Remove and return the minimum `(slot, key)`.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        let &(key, top) = self.data.first()?;
        self.remove_at(0);
        Some((top, key.get()))
    }

    /// Insert `slot`, or lower its key to `key` if that is an
    /// improvement under the `(key, slot)` order. Returns `true` when
    /// the heap changed — exactly the condition under which a Dijkstra
    /// relaxation succeeded. A `key` at or above the current one is a
    /// no-op (monotone queues never regress on this path; use
    /// [`IndexedMinHeap::update`] for keys that may move up).
    pub fn insert_or_decrease(&mut self, slot: u32, key: f64) -> bool {
        let k = OrderedF64::new(key);
        let at = self.pos[slot as usize];
        if at == ABSENT {
            self.pos[slot as usize] = self.data.len() as u32;
            self.data.push((k, slot));
            self.sift_up(self.data.len() - 1);
            true
        } else if k < self.data[at as usize].0 {
            self.data[at as usize].0 = k;
            self.sift_up(at as usize);
            true
        } else {
            false
        }
    }

    /// Set `slot`'s key to `key`, inserting it if absent. Unlike
    /// [`IndexedMinHeap::insert_or_decrease`] the key may move in either
    /// direction — this is the lazy score heap's refresh, where stale
    /// keys are lower bounds and refreshed keys have grown.
    pub fn update(&mut self, slot: u32, key: f64) {
        let k = OrderedF64::new(key);
        let at = self.pos[slot as usize];
        if at == ABSENT {
            self.pos[slot as usize] = self.data.len() as u32;
            self.data.push((k, slot));
            self.sift_up(self.data.len() - 1);
            return;
        }
        let at = at as usize;
        let grew = k > self.data[at].0;
        self.data[at].0 = k;
        if grew {
            self.sift_down(at);
        } else {
            self.sift_up(at);
        }
    }

    /// Remove `slot`'s entry if present; returns whether it was.
    pub fn remove(&mut self, slot: u32) -> bool {
        let at = self.pos[slot as usize];
        if at == ABSENT {
            return false;
        }
        self.remove_at(at as usize);
        true
    }

    /// `(key, slot)` lexicographic order between heap entries.
    #[inline]
    fn less(a: (OrderedF64, u32), b: (OrderedF64, u32)) -> bool {
        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    fn remove_at(&mut self, at: usize) {
        let last = self.data.len() - 1;
        self.pos[self.data[at].1 as usize] = ABSENT;
        if at == last {
            self.data.pop();
            return;
        }
        let moved = self.data[last];
        self.data[at] = moved;
        self.pos[moved.1 as usize] = at as u32;
        self.data.pop();
        // The filler came from the bottom: it can only need to go down,
        // unless the removed entry sat below the filler's rightful place.
        self.sift_down(at);
        self.sift_up(self.pos[moved.1 as usize] as usize);
    }

    fn sift_up(&mut self, mut at: usize) {
        let entry = self.data[at];
        while at > 0 {
            let parent = (at - 1) / D;
            if Self::less(entry, self.data[parent]) {
                let p = self.data[parent];
                self.data[at] = p;
                self.pos[p.1 as usize] = at as u32;
                at = parent;
            } else {
                break;
            }
        }
        self.data[at] = entry;
        self.pos[entry.1 as usize] = at as u32;
    }

    fn sift_down(&mut self, mut at: usize) {
        let n = self.data.len();
        let entry = self.data[at];
        loop {
            let first_child = D * at + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let mut best_entry = self.data[best];
            let last_child = (first_child + D - 1).min(n - 1);
            for c in first_child + 1..=last_child {
                let ce = self.data[c];
                if Self::less(ce, best_entry) {
                    best = c;
                    best_entry = ce;
                }
            }
            if Self::less(best_entry, entry) {
                self.data[at] = best_entry;
                self.pos[best_entry.1 as usize] = at as u32;
                at = best;
            } else {
                break;
            }
        }
        self.data[at] = entry;
        self.pos[entry.1 as usize] = at as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_then_slot_order() {
        let mut h = IndexedMinHeap::new(8);
        for (slot, key) in [(3, 2.0), (1, 1.0), (5, 2.0), (0, 3.0), (7, 1.0)] {
            assert!(h.insert_or_decrease(slot, key));
        }
        let order: Vec<(u32, f64)> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(
            order,
            vec![(1, 1.0), (7, 1.0), (3, 2.0), (5, 2.0), (0, 3.0)]
        );
        assert!(h.is_empty());
    }

    #[test]
    fn decrease_key_reorders_and_ignores_increases() {
        let mut h = IndexedMinHeap::new(4);
        h.insert_or_decrease(0, 5.0);
        h.insert_or_decrease(1, 4.0);
        assert_eq!(h.peek(), Some((1, 4.0)));
        // An increase through the monotone API is a no-op.
        assert!(!h.insert_or_decrease(0, 9.0));
        assert_eq!(h.key(0), Some(5.0));
        // A decrease takes effect and can take the top.
        assert!(h.insert_or_decrease(0, 1.0));
        assert_eq!(h.pop(), Some((0, 1.0)));
        assert_eq!(h.pop(), Some((1, 4.0)));
    }

    #[test]
    fn update_moves_keys_both_ways() {
        let mut h = IndexedMinHeap::new(4);
        h.update(2, 1.0);
        h.update(3, 2.0);
        h.update(2, 5.0); // grow past slot 3
        assert_eq!(h.peek(), Some((3, 2.0)));
        h.update(2, 0.5); // shrink back below
        assert_eq!(h.pop(), Some((2, 0.5)));
        assert_eq!(h.pop(), Some((3, 2.0)));
    }

    #[test]
    fn remove_arbitrary_entries() {
        let mut h = IndexedMinHeap::new(8);
        for slot in 0..8u32 {
            h.insert_or_decrease(slot, (8 - slot) as f64);
        }
        assert!(h.remove(7)); // current minimum
        assert!(h.remove(3)); // interior
        assert!(!h.remove(3)); // already gone
        let mut popped: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|(s, _)| s).collect();
        popped.sort_unstable();
        assert_eq!(popped, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn clear_is_proportional_and_sound() {
        let mut h = IndexedMinHeap::new(16);
        for slot in 0..10u32 {
            h.insert_or_decrease(slot, slot as f64);
        }
        h.clear();
        assert!(h.is_empty());
        for slot in 0..16u32 {
            assert!(!h.contains(slot));
        }
        // Reusable after clear.
        h.insert_or_decrease(9, 1.5);
        assert_eq!(h.pop(), Some((9, 1.5)));
    }

    /// Model check against a sorted reference under a random op stream.
    #[test]
    fn matches_reference_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let slots = 64u32;
        let mut h = IndexedMinHeap::new(slots as usize);
        let mut model: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for _ in 0..4000 {
            match rng.random_range(0..4u32) {
                0 => {
                    let slot = rng.random_range(0..slots);
                    let key = rng.random_range(0.0..100.0f64);
                    let took = model.get(&slot).is_none_or(|&k| key < f64::from_bits(k));
                    assert_eq!(h.insert_or_decrease(slot, key), took);
                    if took {
                        model.insert(slot, key.to_bits());
                    }
                }
                1 => {
                    let slot = rng.random_range(0..slots);
                    let key = rng.random_range(0.0..100.0f64);
                    h.update(slot, key);
                    model.insert(slot, key.to_bits());
                }
                2 => {
                    let slot = rng.random_range(0..slots);
                    assert_eq!(h.remove(slot), model.remove(&slot).is_some());
                }
                _ => {
                    let expect = model
                        .iter()
                        .map(|(&s, &k)| (f64::from_bits(k), s))
                        .min_by(|a, b| a.partial_cmp(b).unwrap());
                    match expect {
                        None => assert_eq!(h.pop(), None),
                        Some((k, s)) => {
                            assert_eq!(h.pop(), Some((s, k)));
                            model.remove(&s);
                        }
                    }
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }
}
