//! Structured and random graph families.
//!
//! These are the raw topologies; `ufp-workloads` composes them with
//! requests (and with the paper's adversarial constructions).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// Random simple directed graph with exactly `num_edges` distinct arcs,
/// capacities drawn uniformly from `cap_range` (use a degenerate range for
/// uniform capacities). Panics if `num_edges > n(n-1)`.
pub fn gnm_digraph<R: Rng>(
    num_nodes: usize,
    num_edges: usize,
    cap_range: (f64, f64),
    rng: &mut R,
) -> Graph {
    assert!(num_nodes >= 2, "need at least two nodes");
    let max_edges = num_nodes * (num_nodes - 1);
    assert!(
        num_edges <= max_edges,
        "requested {num_edges} arcs but only {max_edges} are possible"
    );
    let mut b = GraphBuilder::directed(num_nodes);
    if num_edges * 3 >= max_edges {
        // Dense regime: shuffle the full arc set (exact, no rejection).
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for i in 0..num_nodes as u32 {
            for j in 0..num_nodes as u32 {
                if i != j {
                    all.push((i, j));
                }
            }
        }
        all.shuffle(rng);
        for &(i, j) in all.iter().take(num_edges) {
            b.add_edge(NodeId(i), NodeId(j), sample_cap(cap_range, rng));
        }
    } else {
        // Sparse regime: rejection-sample distinct arcs.
        let mut used = std::collections::HashSet::with_capacity(num_edges * 2);
        while used.len() < num_edges {
            let i = rng.random_range(0..num_nodes as u32);
            let j = rng.random_range(0..num_nodes as u32);
            if i != j && used.insert((i, j)) {
                b.add_edge(NodeId(i), NodeId(j), sample_cap(cap_range, rng));
            }
        }
    }
    b.build()
}

fn sample_cap<R: Rng>((lo, hi): (f64, f64), rng: &mut R) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "capacity range must be positive");
    if hi == lo {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

/// Community-structured random digraph: `communities` blocks of
/// `nodes_per` vertices each (community `k` owns the contiguous node-id
/// block `k·nodes_per .. (k+1)·nodes_per`), with `edges_per` random
/// intra-community arcs per block and `inter_edges` additional arcs
/// whose endpoints lie in *different* communities. Capacities are drawn
/// uniformly from `cap_range` for intra-community edges and from
/// `inter_cap_range` for the inter-community (boundary) ones.
///
/// `inter_edges = 0` yields a disconnected union of components aligned
/// with the node blocks — the topology on which a block-partitioned
/// sharded engine is provably equivalent to a single engine (no path can
/// leave its shard). Small positive `inter_edges` model the realistic
/// case: mostly-local traffic with a thin cross-shard backbone that
/// capacity leases arbitrate.
pub fn community_digraph<R: Rng>(
    communities: usize,
    nodes_per: usize,
    edges_per: usize,
    inter_edges: usize,
    cap_range: (f64, f64),
    inter_cap_range: (f64, f64),
    rng: &mut R,
) -> Graph {
    assert!(communities >= 1 && nodes_per >= 2);
    let max_intra = nodes_per * (nodes_per - 1);
    assert!(
        edges_per <= max_intra,
        "requested {edges_per} intra-community arcs but only {max_intra} are possible"
    );
    let n = communities * nodes_per;
    let mut b = GraphBuilder::directed(n);
    let mut used = std::collections::HashSet::with_capacity(communities * edges_per * 2);
    for k in 0..communities {
        let base = (k * nodes_per) as u32;
        let mut added = 0usize;
        if edges_per * 3 >= max_intra {
            // Dense block: shuffle the full intra-block arc set.
            let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_intra);
            for i in 0..nodes_per as u32 {
                for j in 0..nodes_per as u32 {
                    if i != j {
                        all.push((base + i, base + j));
                    }
                }
            }
            all.shuffle(rng);
            for &(i, j) in all.iter().take(edges_per) {
                used.insert((i, j));
                b.add_edge(NodeId(i), NodeId(j), sample_cap(cap_range, rng));
            }
        } else {
            while added < edges_per {
                let i = base + rng.random_range(0..nodes_per as u32);
                let j = base + rng.random_range(0..nodes_per as u32);
                if i != j && used.insert((i, j)) {
                    b.add_edge(NodeId(i), NodeId(j), sample_cap(cap_range, rng));
                    added += 1;
                }
            }
        }
    }
    if communities >= 2 {
        let max_inter = n * (n - 1) - communities * max_intra;
        assert!(
            inter_edges <= max_inter,
            "requested {inter_edges} inter-community arcs but only {max_inter} are possible"
        );
        let mut added = 0usize;
        while added < inter_edges {
            let i = rng.random_range(0..n as u32);
            let j = rng.random_range(0..n as u32);
            let same = (i as usize) / nodes_per == (j as usize) / nodes_per;
            if i != j && !same && used.insert((i, j)) {
                b.add_edge(NodeId(i), NodeId(j), sample_cap(inter_cap_range, rng));
                added += 1;
            }
        }
    } else {
        assert_eq!(inter_edges, 0, "one community has no inter-community arcs");
    }
    b.build()
}

/// Undirected `rows × cols` grid with uniform capacity — the "ISP
/// backbone"-style topology used by the routing example and benchmarks.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let mut b = GraphBuilder::undirected(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), capacity);
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), capacity);
            }
        }
    }
    b.build()
}

/// Directed layered DAG: `layers` columns of `width` vertices; every vertex
/// is wired to `fanout` random vertices of the next layer (without
/// duplicates). Vertex `l * width + i` is vertex `i` of layer `l`.
pub fn layered_dag<R: Rng>(
    layers: usize,
    width: usize,
    fanout: usize,
    capacity: f64,
    rng: &mut R,
) -> Graph {
    assert!(layers >= 2 && width >= 1);
    let fanout = fanout.min(width);
    let mut b = GraphBuilder::directed(layers * width);
    let mut targets: Vec<u32> = (0..width as u32).collect();
    for l in 0..layers - 1 {
        for i in 0..width {
            let src = NodeId((l * width + i) as u32);
            targets.shuffle(rng);
            for &t in targets.iter().take(fanout) {
                let dst = NodeId(((l + 1) * width) as u32 + t);
                b.add_edge(src, dst, capacity);
            }
        }
    }
    b.build()
}

/// Undirected cycle on `n ≥ 3` vertices with uniform capacity.
pub fn ring(n: usize, capacity: f64) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 vertices");
    let mut b = GraphBuilder::undirected(n);
    for i in 0..n {
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32), capacity);
    }
    b.build()
}

/// Complete directed graph on `n` vertices (both arc directions), uniform
/// capacity. Used by stress tests.
pub fn complete_digraph(n: usize, capacity: f64) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::directed(n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j {
                b.add_edge(NodeId(i), NodeId(j), capacity);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_has_exact_edge_count_sparse_and_dense() {
        let mut rng = StdRng::seed_from_u64(1);
        let sparse = gnm_digraph(50, 100, (4.0, 4.0), &mut rng);
        assert_eq!(sparse.num_edges(), 100);
        let dense = gnm_digraph(10, 80, (1.0, 2.0), &mut rng);
        assert_eq!(dense.num_edges(), 80);
        // no duplicate arcs
        let mut seen = std::collections::HashSet::new();
        for e in dense.edges() {
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn gnm_capacities_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm_digraph(20, 60, (3.0, 9.0), &mut rng);
        for e in g.edges() {
            assert!(e.capacity >= 3.0 && e.capacity <= 9.0);
        }
    }

    #[test]
    fn community_digraph_respects_block_structure() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = community_digraph(4, 25, 120, 10, (8.0, 16.0), (30.0, 40.0), &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 4 * 120 + 10);
        let mut inter = 0;
        for e in g.edges() {
            let (cs, cd) = (e.src.0 / 25, e.dst.0 / 25);
            if cs == cd {
                assert!(e.capacity >= 8.0 && e.capacity <= 16.0);
            } else {
                assert!(e.capacity >= 30.0 && e.capacity <= 40.0);
                inter += 1;
            }
        }
        assert_eq!(inter, 10);
    }

    #[test]
    fn community_digraph_zero_inter_is_component_aligned() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = community_digraph(3, 20, 80, 0, (4.0, 4.0), (4.0, 4.0), &mut rng);
        for e in g.edges() {
            assert_eq!(e.src.0 / 20, e.dst.0 / 20, "no edge may cross blocks");
        }
        // No node outside block 0 is reachable from inside it.
        for d in bfs::hop_distances(&g, NodeId(3)).iter().skip(20) {
            assert_eq!(*d, usize::MAX);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, 5.0);
        assert_eq!(g.num_nodes(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17
        assert_eq!(g.num_edges(), 17);
        assert!(bfs::is_reachable(&g, NodeId(0), NodeId(11)));
        assert_eq!(g.min_capacity(), 5.0);
    }

    #[test]
    fn layered_dag_only_moves_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = layered_dag(4, 5, 3, 2.0, &mut rng);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 3 * 5 * 3);
        for e in g.edges() {
            assert_eq!(
                e.dst.0 / 5,
                e.src.0 / 5 + 1,
                "edges cross exactly one layer"
            );
        }
    }

    #[test]
    fn ring_is_connected_cycle() {
        let g = ring(6, 1.0);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(bfs::reachable_count(&g, NodeId(0)), 6);
        assert_eq!(bfs::hop_distances(&g, NodeId(0))[3], 3);
    }

    #[test]
    fn complete_digraph_counts() {
        let g = complete_digraph(5, 1.0);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g1 = gnm_digraph(30, 90, (1.0, 5.0), &mut StdRng::seed_from_u64(7));
        let g2 = gnm_digraph(30, 90, (1.0, 5.0), &mut StdRng::seed_from_u64(7));
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (a, b) in g1.edges().iter().zip(g2.edges()) {
            assert_eq!(a, b);
        }
    }
}
