//! # ufp-netgraph
//!
//! Capacitated graph substrate for the truthful unsplittable-flow library.
//!
//! The unsplittable flow problem (UFP) routes connection requests through an
//! edge-capacitated directed or undirected graph. This crate provides
//! everything the algorithms above it need from a graph:
//!
//! * [`Graph`] — an immutable capacitated multigraph with a compressed
//!   sparse-row adjacency built once at construction ([`GraphBuilder`]).
//! * [`dijkstra`] — non-negative shortest paths with reusable workspaces
//!   (the inner loop of the paper's Algorithm 1 is "one Dijkstra per
//!   remaining request per iteration", so this is the hot path), backed
//!   by the indexed 4-ary decrease-key heap of [`heap`].
//! * [`pathcache`] — per-slot shortest-path cache with a reverse
//!   edge→slot interest index, the storage layer of `ufp-core`'s
//!   incremental (dirty-set) selection loop.
//! * [`bellman`] — a Bellman–Ford reference implementation used as a test
//!   oracle against Dijkstra.
//! * [`enumerate`] — bounded simple-path enumeration, used by the
//!   "reasonable iterative path-minimizing algorithm" engine on the paper's
//!   lower-bound constructions where scores are not edge-additive.
//! * [`generators`] — random and structured graph families.
//! * [`residual`] — committed-load tracking over a graph's edges, the
//!   residual-capacity view the streaming admission engine allocates
//!   against.
//! * [`topology`] — a versioned dynamic overlay over the immutable
//!   graph: typed mutation events (capacity resize, link down/up, node
//!   drain) with an event log and a state fingerprint, the substrate
//!   for mid-run failures and maintenance.
//!
//! All node/edge handles are `u32` newtypes ([`NodeId`], [`EdgeId`]); dense
//! `Vec` indexing everywhere, no hashing on the hot path.

pub mod bellman;
pub mod bfs;
pub mod csr;
pub mod dijkstra;
pub mod enumerate;
pub mod generators;
pub mod graph;
pub mod heap;
pub mod ids;
pub mod ordered;
pub mod path;
pub mod pathcache;
pub mod residual;
pub mod topology;

pub use dijkstra::{Dijkstra, HeapKind, ShortestPathResult};
pub use graph::{Edge, Graph, GraphBuilder, GraphKind};
pub use heap::IndexedMinHeap;
pub use ids::{EdgeId, NodeId};
pub use ordered::OrderedF64;
pub use path::Path;
pub use pathcache::PathCache;
pub use residual::ResidualCaps;
pub use topology::{Topology, TopologyError, TopologyEvent};
