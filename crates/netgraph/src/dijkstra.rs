//! Dijkstra shortest paths with a reusable workspace.
//!
//! Algorithm 1 of the paper performs, per iteration, one shortest-path
//! query for every still-unrouted request — this is the hot loop of the
//! whole library. The [`Dijkstra`] struct owns all scratch arrays and uses
//! an epoch-stamping scheme so that consecutive queries pay O(touched)
//! rather than O(n) reset cost, and zero allocations after warm-up.
//!
//! Two priority-queue backends are provided (see [`HeapKind`]):
//!
//! * [`HeapKind::Indexed4`] (the default) — the indexed 4-ary heap of
//!   [`crate::heap`], one live entry per node, decrease-key instead of
//!   duplicate pushes, no stale pops.
//! * [`HeapKind::LazyBinary`] — the classic
//!   `BinaryHeap<Reverse<(dist, node)>>` with lazy deletion, kept so the
//!   two can be benchmarked against each other on real workloads
//!   (`selection_benches`) and proptested for equivalence.
//!
//! Both order pending nodes by `(distance, node id)` and apply identical
//! relaxations, so every observable output — settle order, distances,
//! parent pointers, reconstructed paths — is **bit-identical** across
//! backends. The default can therefore be switched by measurement alone.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::heap::IndexedMinHeap;
use crate::ids::{EdgeId, NodeId};
use crate::ordered::OrderedF64;
use crate::path::Path;

/// Which vertices a query must settle before it may stop.
#[derive(Clone, Copy, Debug)]
pub enum Targets<'a> {
    /// Settle every reachable vertex (full shortest-path tree).
    All,
    /// Stop as soon as this vertex is settled.
    One(NodeId),
    /// Stop as soon as every listed vertex is settled (or exhausted).
    Set(&'a [NodeId]),
}

/// A shortest path together with its length under the query weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ShortestPathResult {
    /// `Σ_{e∈p} w_e` — the paper's `|p_r|`.
    pub distance: f64,
    /// The realizing simple path.
    pub path: Path,
}

/// Priority-queue backend for [`Dijkstra`]. See the module docs; results
/// are bit-identical either way, only the constant factors differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HeapKind {
    /// Indexed 4-ary heap with decrease-key (no stale entries). Default:
    /// it won the `selection_benches` `dijkstra_heap` comparison.
    #[default]
    Indexed4,
    /// Binary heap of `(dist, node)` tuples with lazy deletion — the
    /// pre-PR-4 implementation, retained as the benchmark baseline.
    LazyBinary,
}

/// The queue operations the main loop needs, so one generic loop serves
/// both backends (monomorphized — no dispatch on the hot path).
trait RelaxQueue {
    fn reset(&mut self);
    fn offer(&mut self, node: NodeId, dist: f64);
    fn take_min(&mut self) -> Option<(NodeId, f64)>;
}

impl RelaxQueue for IndexedMinHeap {
    #[inline]
    fn reset(&mut self) {
        self.clear();
    }

    #[inline]
    fn offer(&mut self, node: NodeId, dist: f64) {
        self.insert_or_decrease(node.0, dist);
    }

    #[inline]
    fn take_min(&mut self) -> Option<(NodeId, f64)> {
        self.pop().map(|(slot, key)| (NodeId(slot), key))
    }
}

impl RelaxQueue for BinaryHeap<Reverse<(OrderedF64, NodeId)>> {
    #[inline]
    fn reset(&mut self) {
        self.clear();
    }

    #[inline]
    fn offer(&mut self, node: NodeId, dist: f64) {
        self.push(Reverse((OrderedF64::new(dist), node)));
    }

    #[inline]
    fn take_min(&mut self) -> Option<(NodeId, f64)> {
        self.pop().map(|Reverse((d, v))| (v, d.get()))
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Reusable Dijkstra workspace over graphs with at most the configured
/// number of nodes.
#[derive(Clone, Debug)]
pub struct Dijkstra {
    dist: Vec<f64>,
    parent_node: Vec<u32>,
    parent_edge: Vec<u32>,
    /// `stamp[v] == epoch` ⇔ `dist[v]`/parents are valid for this query.
    stamp: Vec<u32>,
    /// `settled[v] == epoch` ⇔ `v` was popped with its final distance.
    settled: Vec<u32>,
    target_stamp: Vec<u32>,
    epoch: u32,
    kind: HeapKind,
    indexed: IndexedMinHeap,
    lazy: BinaryHeap<Reverse<(OrderedF64, NodeId)>>,
}

impl Dijkstra {
    /// Create a workspace for graphs with `num_nodes` vertices, using
    /// the default queue backend.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_heap(num_nodes, HeapKind::default())
    }

    /// Create a workspace with an explicit queue backend (benchmarks and
    /// equivalence tests; everything else should use [`Dijkstra::new`]).
    pub fn with_heap(num_nodes: usize, kind: HeapKind) -> Self {
        Dijkstra {
            dist: vec![f64::INFINITY; num_nodes],
            parent_node: vec![NO_PARENT; num_nodes],
            parent_edge: vec![NO_PARENT; num_nodes],
            stamp: vec![0; num_nodes],
            settled: vec![0; num_nodes],
            target_stamp: vec![0; num_nodes],
            epoch: 0,
            kind,
            indexed: IndexedMinHeap::new(num_nodes),
            lazy: BinaryHeap::new(),
        }
    }

    /// The queue backend this workspace runs on.
    pub fn heap_kind(&self) -> HeapKind {
        self.kind
    }

    fn begin_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: hard reset keeps stamps sound.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.target_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Run a query from `src`. `usable(e)` gates edge traversal (pass
    /// `|_| true` for plain shortest paths; residual-capacity routing
    /// passes a capacity check). `weights[e]` must be non-negative.
    ///
    /// After the call, [`Dijkstra::distance`] and [`Dijkstra::path_to`]
    /// read out results for any vertex that was settled.
    pub fn run<F>(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        src: NodeId,
        targets: Targets<'_>,
        usable: F,
    ) where
        F: Fn(EdgeId) -> bool,
    {
        // Split the borrow: the queue is taken out of `self` for the
        // duration of the loop so the generic body can borrow the scratch
        // arrays mutably alongside it.
        match self.kind {
            HeapKind::Indexed4 => {
                let mut queue = std::mem::replace(&mut self.indexed, IndexedMinHeap::new(0));
                self.run_impl(graph, weights, src, targets, usable, &mut queue);
                self.indexed = queue;
            }
            HeapKind::LazyBinary => {
                let mut queue = std::mem::take(&mut self.lazy);
                self.run_impl(graph, weights, src, targets, usable, &mut queue);
                self.lazy = queue;
            }
        }
    }

    fn run_impl<F, Q>(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        src: NodeId,
        targets: Targets<'_>,
        usable: F,
        queue: &mut Q,
    ) where
        F: Fn(EdgeId) -> bool,
        Q: RelaxQueue,
    {
        debug_assert!(weights.len() >= graph.num_edges());
        debug_assert!(src.index() < graph.num_nodes());
        self.begin_epoch();
        let epoch = self.epoch;
        queue.reset();

        let mut remaining_targets = match targets {
            Targets::All => usize::MAX,
            Targets::One(t) => {
                self.target_stamp[t.index()] = epoch;
                1
            }
            Targets::Set(ts) => {
                let mut uniq = 0;
                for &t in ts {
                    if self.target_stamp[t.index()] != epoch {
                        self.target_stamp[t.index()] = epoch;
                        uniq += 1;
                    }
                }
                uniq
            }
        };

        self.dist[src.index()] = 0.0;
        self.parent_node[src.index()] = NO_PARENT;
        self.parent_edge[src.index()] = NO_PARENT;
        self.stamp[src.index()] = epoch;
        queue.offer(src, 0.0);

        while let Some((v, dv)) = queue.take_min() {
            let vi = v.index();
            if self.settled[vi] == epoch {
                continue; // stale entry (lazy backend only)
            }
            self.settled[vi] = epoch;
            debug_assert_eq!(dv, self.dist[vi]);

            if remaining_targets != usize::MAX && self.target_stamp[vi] == epoch {
                remaining_targets -= 1;
                if remaining_targets == 0 {
                    return;
                }
            }

            for adj in graph.neighbors(v) {
                if !usable(adj.edge) {
                    continue;
                }
                let w = weights[adj.edge.index()];
                debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
                let ui = adj.to.index();
                if self.settled[ui] == epoch {
                    continue;
                }
                let cand = dv + w;
                if self.stamp[ui] != epoch || cand < self.dist[ui] {
                    self.stamp[ui] = epoch;
                    self.dist[ui] = cand;
                    self.parent_node[ui] = v.0;
                    self.parent_edge[ui] = adj.edge.0;
                    queue.offer(adj.to, cand);
                }
            }
        }
    }

    /// Distance of `v` from the last query's source, if `v` was settled.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        (self.settled[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// Reconstruct the shortest path to `v` found by the last query.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        let mut path = Path::trivial(v);
        self.path_to_into(v, &mut path).then_some(path)
    }

    /// Reconstruct the shortest path to `v` into `out`, reusing its
    /// allocations; returns whether `v` was settled (on `false`, `out` is
    /// left untouched). The contents written are bit-identical to what
    /// [`Dijkstra::path_to`] returns — this is the allocation-free
    /// variant for hot loops that rematerialize paths into long-lived
    /// buffers (the winner re-derivation in `ufp-core`'s selection loop
    /// and the per-request path cache refresh both use it).
    pub fn path_to_into(&self, v: NodeId, out: &mut Path) -> bool {
        if self.settled[v.index()] != self.epoch {
            return false;
        }
        out.rebuild(|nodes, edges| {
            nodes.push(v);
            let mut cur = v;
            while self.parent_node[cur.index()] != NO_PARENT {
                edges.push(EdgeId(self.parent_edge[cur.index()]));
                cur = NodeId(self.parent_node[cur.index()]);
                nodes.push(cur);
            }
            nodes.reverse();
            edges.reverse();
        });
        true
    }

    /// Walk the shortest-path tree from `v` back to the source, calling
    /// `visit` with each tree edge (target-to-source order). Returns
    /// whether `v` was settled. This is path reconstruction without the
    /// [`Path`] materialization — interest-index registration wants the
    /// edges only.
    pub fn for_each_path_edge<F: FnMut(EdgeId)>(&self, v: NodeId, mut visit: F) -> bool {
        if self.settled[v.index()] != self.epoch {
            return false;
        }
        let mut cur = v;
        while self.parent_node[cur.index()] != NO_PARENT {
            visit(EdgeId(self.parent_edge[cur.index()]));
            cur = NodeId(self.parent_node[cur.index()]);
        }
        true
    }

    /// Convenience single-pair query.
    pub fn shortest_path<F>(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        src: NodeId,
        dst: NodeId,
        usable: F,
    ) -> Option<ShortestPathResult>
    where
        F: Fn(EdgeId) -> bool,
    {
        self.run(graph, weights, src, Targets::One(dst), usable);
        let distance = self.distance(dst)?;
        let path = self.path_to(dst)?;
        Some(ShortestPathResult { distance, path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3 (cost 1 + 1), 0 -> 2 -> 3 (cost 10 + 0.5)
        let mut b = GraphBuilder::directed(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0); // e0 w=1
        b.add_edge(NodeId(0), NodeId(2), 1.0); // e1 w=10
        b.add_edge(NodeId(1), NodeId(3), 1.0); // e2 w=1
        b.add_edge(NodeId(2), NodeId(3), 1.0); // e3 w=0.5
        b.build()
    }

    #[test]
    fn picks_cheaper_route() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
            .unwrap();
        assert!((r.distance - 2.0).abs() < 1e-12);
        assert_eq!(r.path.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(r.path.validate(&g).is_ok());
    }

    #[test]
    fn filter_reroutes() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        // Forbid edge e2 (1 -> 3): must go the expensive way.
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |e| e != EdgeId(2))
            .unwrap();
        assert!((r.distance - 10.5).abs() < 1e-12);
        assert_eq!(r.path.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let w = vec![1.0];
        let mut d = Dijkstra::new(g.num_nodes());
        assert!(d
            .shortest_path(&g, &w, NodeId(0), NodeId(2), |_| true)
            .is_none());
    }

    #[test]
    fn source_equals_target_gives_trivial_path() {
        let g = diamond();
        let w = vec![1.0; 4];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(2), NodeId(2), |_| true)
            .unwrap();
        assert_eq!(r.distance, 0.0);
        assert!(r.path.is_empty());
    }

    #[test]
    fn workspace_reuse_across_queries() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        for kind in [HeapKind::Indexed4, HeapKind::LazyBinary] {
            let mut d = Dijkstra::with_heap(g.num_nodes(), kind);
            for _ in 0..100 {
                let a = d
                    .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
                    .unwrap();
                assert!((a.distance - 2.0).abs() < 1e-12);
                let b = d
                    .shortest_path(&g, &w, NodeId(1), NodeId(3), |_| true)
                    .unwrap();
                assert!((b.distance - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn undirected_traversal_both_ways() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(2), NodeId(1), 1.0); // stored 2->1; traversable 1->2
        let g = b.build();
        let w = vec![1.0, 2.0];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(2), |_| true)
            .unwrap();
        assert!((r.distance - 3.0).abs() < 1e-12);
        assert!(r.path.validate(&g).is_ok());
    }

    #[test]
    fn multi_target_early_exit_settles_all_targets() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(
            &g,
            &w,
            NodeId(0),
            Targets::Set(&[NodeId(1), NodeId(3)]),
            |_| true,
        );
        assert_eq!(d.distance(NodeId(1)), Some(1.0));
        assert_eq!(d.distance(NodeId(3)), Some(2.0));
    }

    #[test]
    fn full_tree_settles_everything_reachable() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, &w, NodeId(0), Targets::All, |_| true);
        for v in 0..4 {
            assert!(d.distance(NodeId(v)).is_some());
        }
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let g = diamond();
        let w = vec![0.0, 0.0, 0.0, 0.0];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
            .unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path.len(), 2);
    }

    #[test]
    fn heap_kinds_are_bit_identical() {
        // Random-ish weighted graph: every distance, path, and settle
        // verdict must match across backends, bit for bit.
        let mut b = GraphBuilder::directed(12);
        let mut w = Vec::new();
        for i in 0..12u32 {
            for j in 0..12u32 {
                if i != j && (i * 7 + j * 3) % 4 != 0 {
                    b.add_edge(NodeId(i), NodeId(j), 1.0);
                    w.push(0.25 + (((i * 31 + j * 17) % 11) as f64) / 7.0);
                }
            }
        }
        let g = b.build();
        let mut a = Dijkstra::with_heap(g.num_nodes(), HeapKind::Indexed4);
        let mut l = Dijkstra::with_heap(g.num_nodes(), HeapKind::LazyBinary);
        for src in 0..12u32 {
            a.run(&g, &w, NodeId(src), Targets::All, |e| e.0 % 5 != 1);
            l.run(&g, &w, NodeId(src), Targets::All, |e| e.0 % 5 != 1);
            for v in 0..12u32 {
                let (da, dl) = (a.distance(NodeId(v)), l.distance(NodeId(v)));
                assert_eq!(da.map(f64::to_bits), dl.map(f64::to_bits));
                assert_eq!(a.path_to(NodeId(v)), l.path_to(NodeId(v)));
            }
        }
    }

    #[test]
    fn path_to_into_reuses_and_matches() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, &w, NodeId(0), Targets::All, |_| true);
        let mut buf = Path::trivial(NodeId(0));
        for v in 0..4u32 {
            assert!(d.path_to_into(NodeId(v), &mut buf));
            assert_eq!(Some(buf.clone()), d.path_to(NodeId(v)));
            let mut edges = Vec::new();
            assert!(d.for_each_path_edge(NodeId(v), |e| edges.push(e)));
            edges.reverse();
            assert_eq!(edges, buf.edges());
        }
        // Unsettled target: report false, leave the buffer alone.
        let mut b2 = GraphBuilder::directed(3);
        b2.add_edge(NodeId(0), NodeId(1), 1.0);
        let g2 = b2.build();
        d.run(&g2, &[1.0], NodeId(0), Targets::All, |_| true);
        let before = buf.clone();
        assert!(!d.path_to_into(NodeId(2), &mut buf));
        assert_eq!(before, buf);
        assert!(!d.for_each_path_edge(NodeId(2), |_| {}));
    }
}
