//! Dijkstra shortest paths with a reusable workspace.
//!
//! Algorithm 1 of the paper performs, per iteration, one shortest-path
//! query for every still-unrouted request — this is the hot loop of the
//! whole library. The [`Dijkstra`] struct owns all scratch arrays and uses
//! an epoch-stamping scheme so that consecutive queries pay O(touched)
//! rather than O(n) reset cost, and zero allocations after warm-up.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::ordered::OrderedF64;
use crate::path::Path;

/// Which vertices a query must settle before it may stop.
#[derive(Clone, Copy, Debug)]
pub enum Targets<'a> {
    /// Settle every reachable vertex (full shortest-path tree).
    All,
    /// Stop as soon as this vertex is settled.
    One(NodeId),
    /// Stop as soon as every listed vertex is settled (or exhausted).
    Set(&'a [NodeId]),
}

/// A shortest path together with its length under the query weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ShortestPathResult {
    /// `Σ_{e∈p} w_e` — the paper's `|p_r|`.
    pub distance: f64,
    /// The realizing simple path.
    pub path: Path,
}

const NO_PARENT: u32 = u32::MAX;

/// Reusable Dijkstra workspace over graphs with at most the configured
/// number of nodes.
#[derive(Clone, Debug)]
pub struct Dijkstra {
    dist: Vec<f64>,
    parent_node: Vec<u32>,
    parent_edge: Vec<u32>,
    /// `stamp[v] == epoch` ⇔ `dist[v]`/parents are valid for this query.
    stamp: Vec<u32>,
    /// `settled[v] == epoch` ⇔ `v` was popped with its final distance.
    settled: Vec<u32>,
    target_stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(OrderedF64, NodeId)>>,
}

impl Dijkstra {
    /// Create a workspace for graphs with `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        Dijkstra {
            dist: vec![f64::INFINITY; num_nodes],
            parent_node: vec![NO_PARENT; num_nodes],
            parent_edge: vec![NO_PARENT; num_nodes],
            stamp: vec![0; num_nodes],
            settled: vec![0; num_nodes],
            target_stamp: vec![0; num_nodes],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn begin_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: hard reset keeps stamps sound.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.target_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    /// Run a query from `src`. `usable(e)` gates edge traversal (pass
    /// `|_| true` for plain shortest paths; residual-capacity routing
    /// passes a capacity check). `weights[e]` must be non-negative.
    ///
    /// After the call, [`Dijkstra::distance`] and [`Dijkstra::path_to`]
    /// read out results for any vertex that was settled.
    pub fn run<F>(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        src: NodeId,
        targets: Targets<'_>,
        usable: F,
    ) where
        F: Fn(EdgeId) -> bool,
    {
        debug_assert!(weights.len() >= graph.num_edges());
        debug_assert!(src.index() < graph.num_nodes());
        self.begin_epoch();
        let epoch = self.epoch;

        let mut remaining_targets = match targets {
            Targets::All => usize::MAX,
            Targets::One(t) => {
                self.target_stamp[t.index()] = epoch;
                1
            }
            Targets::Set(ts) => {
                let mut uniq = 0;
                for &t in ts {
                    if self.target_stamp[t.index()] != epoch {
                        self.target_stamp[t.index()] = epoch;
                        uniq += 1;
                    }
                }
                uniq
            }
        };

        self.dist[src.index()] = 0.0;
        self.parent_node[src.index()] = NO_PARENT;
        self.parent_edge[src.index()] = NO_PARENT;
        self.stamp[src.index()] = epoch;
        self.heap.push(Reverse((OrderedF64::new(0.0), src)));

        while let Some(Reverse((d, v))) = self.heap.pop() {
            let vi = v.index();
            if self.settled[vi] == epoch {
                continue; // stale heap entry (lazy deletion)
            }
            // A popped entry can also be stale if a shorter one was pushed
            // later and already settled the node; guarded above. Otherwise
            // dist is final:
            self.settled[vi] = epoch;
            let dv = d.get();
            debug_assert_eq!(dv, self.dist[vi]);

            if remaining_targets != usize::MAX && self.target_stamp[vi] == epoch {
                remaining_targets -= 1;
                if remaining_targets == 0 {
                    return;
                }
            }

            for adj in graph.neighbors(v) {
                if !usable(adj.edge) {
                    continue;
                }
                let w = weights[adj.edge.index()];
                debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
                let ui = adj.to.index();
                if self.settled[ui] == epoch {
                    continue;
                }
                let cand = dv + w;
                if self.stamp[ui] != epoch || cand < self.dist[ui] {
                    self.stamp[ui] = epoch;
                    self.dist[ui] = cand;
                    self.parent_node[ui] = v.0;
                    self.parent_edge[ui] = adj.edge.0;
                    self.heap.push(Reverse((OrderedF64::new(cand), adj.to)));
                }
            }
        }
    }

    /// Distance of `v` from the last query's source, if `v` was settled.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        (self.settled[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// Reconstruct the shortest path to `v` found by the last query.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if self.settled[v.index()] != self.epoch {
            return None;
        }
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while self.parent_node[cur.index()] != NO_PARENT {
            edges.push(EdgeId(self.parent_edge[cur.index()]));
            cur = NodeId(self.parent_node[cur.index()]);
            nodes.push(cur);
        }
        nodes.reverse();
        edges.reverse();
        Some(Path::new(nodes, edges))
    }

    /// Convenience single-pair query.
    pub fn shortest_path<F>(
        &mut self,
        graph: &Graph,
        weights: &[f64],
        src: NodeId,
        dst: NodeId,
        usable: F,
    ) -> Option<ShortestPathResult>
    where
        F: Fn(EdgeId) -> bool,
    {
        self.run(graph, weights, src, Targets::One(dst), usable);
        let distance = self.distance(dst)?;
        let path = self.path_to(dst)?;
        Some(ShortestPathResult { distance, path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1 -> 3 (cost 1 + 1), 0 -> 2 -> 3 (cost 10 + 0.5)
        let mut b = GraphBuilder::directed(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0); // e0 w=1
        b.add_edge(NodeId(0), NodeId(2), 1.0); // e1 w=10
        b.add_edge(NodeId(1), NodeId(3), 1.0); // e2 w=1
        b.add_edge(NodeId(2), NodeId(3), 1.0); // e3 w=0.5
        b.build()
    }

    #[test]
    fn picks_cheaper_route() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
            .unwrap();
        assert!((r.distance - 2.0).abs() < 1e-12);
        assert_eq!(r.path.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(r.path.validate(&g).is_ok());
    }

    #[test]
    fn filter_reroutes() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        // Forbid edge e2 (1 -> 3): must go the expensive way.
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |e| e != EdgeId(2))
            .unwrap();
        assert!((r.distance - 10.5).abs() < 1e-12);
        assert_eq!(r.path.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let w = vec![1.0];
        let mut d = Dijkstra::new(g.num_nodes());
        assert!(d
            .shortest_path(&g, &w, NodeId(0), NodeId(2), |_| true)
            .is_none());
    }

    #[test]
    fn source_equals_target_gives_trivial_path() {
        let g = diamond();
        let w = vec![1.0; 4];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(2), NodeId(2), |_| true)
            .unwrap();
        assert_eq!(r.distance, 0.0);
        assert!(r.path.is_empty());
    }

    #[test]
    fn workspace_reuse_across_queries() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        for _ in 0..100 {
            let a = d
                .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
                .unwrap();
            assert!((a.distance - 2.0).abs() < 1e-12);
            let b = d
                .shortest_path(&g, &w, NodeId(1), NodeId(3), |_| true)
                .unwrap();
            assert!((b.distance - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn undirected_traversal_both_ways() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(2), NodeId(1), 1.0); // stored 2->1; traversable 1->2
        let g = b.build();
        let w = vec![1.0, 2.0];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(2), |_| true)
            .unwrap();
        assert!((r.distance - 3.0).abs() < 1e-12);
        assert!(r.path.validate(&g).is_ok());
    }

    #[test]
    fn multi_target_early_exit_settles_all_targets() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(
            &g,
            &w,
            NodeId(0),
            Targets::Set(&[NodeId(1), NodeId(3)]),
            |_| true,
        );
        assert_eq!(d.distance(NodeId(1)), Some(1.0));
        assert_eq!(d.distance(NodeId(3)), Some(2.0));
    }

    #[test]
    fn full_tree_settles_everything_reachable() {
        let g = diamond();
        let w = vec![1.0, 10.0, 1.0, 0.5];
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, &w, NodeId(0), Targets::All, |_| true);
        for v in 0..4 {
            assert!(d.distance(NodeId(v)).is_some());
        }
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let g = diamond();
        let w = vec![0.0, 0.0, 0.0, 0.0];
        let mut d = Dijkstra::new(g.num_nodes());
        let r = d
            .shortest_path(&g, &w, NodeId(0), NodeId(3), |_| true)
            .unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path.len(), 2);
    }
}
