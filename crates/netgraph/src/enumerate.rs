//! Bounded enumeration of simple paths.
//!
//! The paper's lower-bound theorems quantify over *reasonable iterative
//! path-minimizing algorithms* whose scores need not be edge-additive
//! (e.g. `h₂(p) = (d/v)·∏ f_e/c_e`), so Dijkstra does not apply. On the
//! small adversarial graphs of Figures 2 and 3 we instead enumerate all
//! simple `s→t` paths (optionally capped) and let the engine score each.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};
use crate::path::Path;

/// Enumerate simple paths from `src` to `dst`.
///
/// * `max_hops` bounds path length (edges); use `usize::MAX` for no bound.
/// * `max_paths` caps the number of returned paths to protect against
///   combinatorial blow-up; enumeration is depth-first and deterministic
///   (adjacency order), so the cap is reproducible.
/// * `usable(e)` gates edges, mirroring residual-capacity routing.
///
/// Returns paths in DFS discovery order.
pub fn simple_paths<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
    max_paths: usize,
    usable: F,
) -> Vec<Path>
where
    F: Fn(EdgeId) -> bool,
{
    let mut out = Vec::new();
    if max_paths == 0 {
        return out;
    }
    let mut on_path = vec![false; graph.num_nodes()];
    let mut nodes = vec![src];
    let mut edges: Vec<EdgeId> = Vec::new();
    on_path[src.index()] = true;

    // Explicit DFS stack of adjacency cursors, avoiding recursion so deep
    // paths (the subdivided Figure-2 variant) cannot overflow the stack.
    let mut cursors = vec![0usize];
    while let Some(cursor) = cursors.last_mut() {
        let v = *nodes.last().expect("node stack never empty");
        if v == dst && !edges.is_empty() {
            out.push(Path::new(nodes.clone(), edges.clone()));
            if out.len() >= max_paths {
                return out;
            }
            // dst reached: backtrack (simple paths cannot extend past dst
            // and return; any extension revisiting dst is non-simple).
            on_path[v.index()] = false;
            nodes.pop();
            edges.pop();
            cursors.pop();
            continue;
        }
        let adj = graph.neighbors(v);
        let mut advanced = false;
        while *cursor < adj.len() {
            let entry = adj[*cursor];
            *cursor += 1;
            if edges.len() >= max_hops {
                break;
            }
            if on_path[entry.to.index()] || !usable(entry.edge) {
                continue;
            }
            nodes.push(entry.to);
            edges.push(entry.edge);
            on_path[entry.to.index()] = true;
            cursors.push(0);
            advanced = true;
            break;
        }
        if !advanced && cursors.last().map(|c| *c >= graph.neighbors(v).len()) == Some(true) {
            on_path[v.index()] = false;
            nodes.pop();
            edges.pop();
            cursors.pop();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        b.add_edge(NodeId(1), NodeId(3), 1.0);
        b.add_edge(NodeId(2), NodeId(3), 1.0);
        b.build()
    }

    #[test]
    fn finds_both_diamond_paths() {
        let g = diamond();
        let paths = simple_paths(&g, NodeId(0), NodeId(3), usize::MAX, usize::MAX, |_| true);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.validate(&g).is_ok());
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(3));
        }
    }

    #[test]
    fn hop_limit_prunes() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(NodeId(0), NodeId(3), 1.0); // direct
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        b.add_edge(NodeId(2), NodeId(3), 1.0); // 3-hop
        let g = b.build();
        let paths = simple_paths(&g, NodeId(0), NodeId(3), 1, usize::MAX, |_| true);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn path_cap_respected() {
        let g = diamond();
        let paths = simple_paths(&g, NodeId(0), NodeId(3), usize::MAX, 1, |_| true);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn edge_filter_respected() {
        let g = diamond();
        let paths = simple_paths(&g, NodeId(0), NodeId(3), usize::MAX, usize::MAX, |e| {
            e != EdgeId(0)
        });
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn undirected_paths_do_not_backtrack() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(1), NodeId(2), 1.0);
        let g = b.build();
        let paths = simple_paths(&g, NodeId(0), NodeId(2), usize::MAX, usize::MAX, |_| true);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn no_paths_when_disconnected() {
        let g = GraphBuilder::directed(2).build();
        assert!(
            simple_paths(&g, NodeId(0), NodeId(1), usize::MAX, usize::MAX, |_| true).is_empty()
        );
    }

    #[test]
    fn complete_graph_k4_counts() {
        // K4 undirected: simple paths between two fixed vertices:
        // 1 direct, 2 of length 2, 2 of length 3 => 5.
        let mut b = GraphBuilder::undirected(4);
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                b.add_edge(NodeId(i), NodeId(j), 1.0);
            }
        }
        let g = b.build();
        let paths = simple_paths(&g, NodeId(0), NodeId(3), usize::MAX, usize::MAX, |_| true);
        assert_eq!(paths.len(), 5);
    }
}
