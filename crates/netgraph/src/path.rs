//! Simple paths through a [`Graph`].

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// A simple path: a node sequence plus the edges connecting consecutive
/// nodes. `nodes.len() == edges.len() + 1` always holds; a request routed
/// over `k` edges stores `k + 1` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Assemble a path from its node and edge sequences, checking the
    /// structural invariant. Endpoint/adjacency consistency against a graph
    /// is checked separately by [`Path::validate`].
    pub fn new(nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        assert_eq!(
            nodes.len(),
            edges.len() + 1,
            "path must have exactly one more node than edges"
        );
        Path { nodes, edges }
    }

    /// The trivial single-vertex path (zero edges). Useful as a base case
    /// in enumeration; never a legal routing (requests have `s != t`).
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// First vertex.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last vertex.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are never empty")
    }

    /// Number of edges (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edge sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Rebuild this path's contents in place, reusing the existing
    /// `Vec` allocations (the structural invariant is re-checked after
    /// `fill` runs). Crate-internal: this is the engine room of
    /// [`crate::dijkstra::Dijkstra::path_to_into`], which lets hot loops
    /// rematerialize paths into a long-lived buffer instead of
    /// allocating two fresh `Vec`s per reconstruction.
    pub(crate) fn rebuild<F>(&mut self, fill: F)
    where
        F: FnOnce(&mut Vec<NodeId>, &mut Vec<EdgeId>),
    {
        self.nodes.clear();
        self.edges.clear();
        fill(&mut self.nodes, &mut self.edges);
        assert_eq!(
            self.nodes.len(),
            self.edges.len() + 1,
            "path must have exactly one more node than edges"
        );
    }

    /// Sum of `weights[e]` over the path's edges — the quantity
    /// `|p| = Σ_{e∈p} y_e` from the paper.
    pub fn weight(&self, weights: &[f64]) -> f64 {
        self.edges.iter().map(|e| weights[e.index()]).sum()
    }

    /// Minimum residual capacity along the path under `residual[e]`.
    pub fn bottleneck(&self, residual: &[f64]) -> f64 {
        self.edges
            .iter()
            .map(|e| residual[e.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Check that the path is a well-formed *simple* path of `graph`:
    /// consecutive nodes joined by the recorded edge (respecting direction
    /// in directed graphs), no repeated vertex.
    pub fn validate(&self, graph: &Graph) -> Result<(), PathError> {
        for window in self.nodes.windows(2) {
            let (a, b) = (window[0], window[1]);
            if a.index() >= graph.num_nodes() || b.index() >= graph.num_nodes() {
                return Err(PathError::NodeOutOfRange);
            }
        }
        for (i, &eid) in self.edges.iter().enumerate() {
            if eid.index() >= graph.num_edges() {
                return Err(PathError::EdgeOutOfRange);
            }
            let e = graph.edge(eid);
            let (a, b) = (self.nodes[i], self.nodes[i + 1]);
            let forward = e.src == a && e.dst == b;
            let backward = e.src == b && e.dst == a;
            let ok = match graph.kind() {
                crate::graph::GraphKind::Directed => forward,
                crate::graph::GraphKind::Undirected => forward || backward,
            };
            if !ok {
                return Err(PathError::EdgeMismatch { position: i });
            }
        }
        let mut seen = vec![false; graph.num_nodes()];
        for &n in &self.nodes {
            if seen[n.index()] {
                return Err(PathError::RepeatedNode(n));
            }
            seen[n.index()] = true;
        }
        Ok(())
    }
}

/// Violations reported by [`Path::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathError {
    /// A node id exceeds the graph's node count.
    NodeOutOfRange,
    /// An edge id exceeds the graph's edge count.
    EdgeOutOfRange,
    /// The edge at `position` does not join its adjacent nodes.
    EdgeMismatch {
        /// Index into the edge sequence.
        position: usize,
    },
    /// The path visits a vertex twice (not simple).
    RepeatedNode(NodeId),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NodeOutOfRange => write!(f, "path node out of range"),
            PathError::EdgeOutOfRange => write!(f, "path edge out of range"),
            PathError::EdgeMismatch { position } => {
                write!(f, "edge at position {position} does not join its endpoints")
            }
            PathError::RepeatedNode(n) => write!(f, "path revisits node {n}"),
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn line_graph() -> (Graph, Vec<EdgeId>) {
        let mut b = GraphBuilder::directed(4);
        let edges = vec![
            b.add_edge(NodeId(0), NodeId(1), 1.0),
            b.add_edge(NodeId(1), NodeId(2), 2.0),
            b.add_edge(NodeId(2), NodeId(3), 3.0),
        ];
        (b.build(), edges)
    }

    #[test]
    fn valid_path_passes() {
        let (g, e) = line_graph();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)], e.clone());
        assert!(p.validate(&g).is_ok());
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(3));
    }

    #[test]
    fn weight_and_bottleneck() {
        let (g, e) = line_graph();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)], e);
        let w = vec![0.5, 0.25, 0.125];
        assert!((p.weight(&w) - 0.875).abs() < 1e-12);
        let residual: Vec<f64> = g.edges().iter().map(|e| e.capacity).collect();
        assert_eq!(p.bottleneck(&residual), 1.0);
    }

    #[test]
    fn wrong_direction_rejected_in_directed_graph() {
        let (g, e) = line_graph();
        let p = Path::new(vec![NodeId(1), NodeId(0)], vec![e[0]]);
        assert_eq!(p.validate(&g), Err(PathError::EdgeMismatch { position: 0 }));
    }

    #[test]
    fn backward_traversal_allowed_in_undirected_graph() {
        let mut b = GraphBuilder::undirected(2);
        let e = b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let p = Path::new(vec![NodeId(1), NodeId(0)], vec![e]);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn repeated_node_rejected() {
        let mut b = GraphBuilder::undirected(2);
        let e = b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(0)], vec![e, e]);
        assert_eq!(p.validate(&g), Err(PathError::RepeatedNode(NodeId(0))));
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(7));
        assert!(p.is_empty());
        assert_eq!(p.source(), p.target());
    }

    #[test]
    #[should_panic]
    fn node_edge_count_invariant_enforced() {
        let _ = Path::new(vec![NodeId(0)], vec![EdgeId(0)]);
    }
}
