//! Dynamic-topology overlay: typed mutation events over an immutable
//! [`Graph`].
//!
//! The base [`Graph`] never changes — CSR adjacency, edge endpoints and
//! nominal capacities are built once and shared (`Arc<Graph>`) across
//! engines, shards, and payment probes. Production networks still lose
//! links, resize capacity, and drain nodes for maintenance, so this
//! module layers a mutable *overlay* on top: per-edge effective
//! capacity, per-edge up/down state, and per-node drain state, mutated
//! exclusively through a typed, validated [`TopologyEvent`] stream.
//!
//! The overlay is an event-sourced value: `version()` is the number of
//! applied events, the state at version `v` is the base graph plus the
//! log prefix `log()[..v]`, and [`Topology::events_since`] yields the
//! delta between two versions — which is exactly what a snapshot
//! restore onto a mutated network replays as a typed migration.
//! [`Topology::fingerprint`] hashes the *state* (not the log), so two
//! event histories that reach the same effective network compare equal.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// One validated topology mutation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologyEvent {
    /// Resize an edge's effective capacity (raise or lower; must be
    /// finite and strictly positive — model "no capacity" as
    /// [`TopologyEvent::LinkDown`], which is reversible without losing
    /// the configured size).
    SetCapacity {
        /// Edge to resize.
        edge: EdgeId,
        /// New effective capacity.
        capacity: f64,
    },
    /// Fail a link: its effective capacity becomes zero until a
    /// matching [`TopologyEvent::LinkUp`]. Idempotent.
    LinkDown {
        /// Edge to fail.
        edge: EdgeId,
    },
    /// Restore a failed link at its configured capacity. Idempotent.
    LinkUp {
        /// Edge to restore.
        edge: EdgeId,
    },
    /// Drain a node for maintenance: every incident edge stops
    /// accepting *new* admissions, but flows already routed through the
    /// node keep their capacity (drain is graceful; it never evicts).
    /// Idempotent.
    DrainNode {
        /// Node to drain.
        node: NodeId,
    },
    /// End a node's maintenance window. Idempotent.
    UndrainNode {
        /// Node to undrain.
        node: NodeId,
    },
}

/// Validation failure for a [`TopologyEvent`]. Rejected events are not
/// applied and not logged — the overlay never holds a half-applied
/// mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyError {
    /// The event names an edge the base graph does not have.
    UnknownEdge {
        /// Offending edge id.
        edge: u32,
        /// Number of edges in the base graph.
        edges: usize,
    },
    /// The event names a node the base graph does not have.
    UnknownNode {
        /// Offending node id.
        node: u32,
        /// Number of nodes in the base graph.
        nodes: usize,
    },
    /// A capacity resize to a non-finite or non-positive value.
    BadCapacity {
        /// Edge the resize targeted.
        edge: u32,
        /// The rejected capacity.
        capacity: f64,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownEdge { edge, edges } => {
                write!(
                    f,
                    "topology event names edge {edge} of a {edges}-edge graph"
                )
            }
            TopologyError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "topology event names node {node} of a {nodes}-node graph"
                )
            }
            TopologyError::BadCapacity { edge, capacity } => {
                write!(f, "capacity resize of edge {edge} to invalid {capacity}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;

fn fnv_push(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Versioned mutable overlay over an immutable [`Graph`]: effective
/// per-edge capacities, link up/down state, node drain state, and the
/// event log that produced them.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Configured effective capacity per edge (survives down/up cycles).
    capacity: Vec<f64>,
    /// Link state per edge.
    up: Vec<bool>,
    /// Maintenance state per node.
    drained: Vec<bool>,
    /// Edge endpoints copied from the base graph, so availability is
    /// answerable without re-borrowing the graph.
    endpoints: Vec<(u32, u32)>,
    /// Every applied event, in order; `version() == log.len()`.
    log: Vec<TopologyEvent>,
}

impl Topology {
    /// Pristine overlay at version 0: every link up at its base
    /// capacity, no node drained.
    pub fn new(graph: &Graph) -> Self {
        Topology {
            capacity: graph.edges().iter().map(|e| e.capacity).collect(),
            up: vec![true; graph.num_edges()],
            drained: vec![false; graph.num_nodes()],
            endpoints: graph.edges().iter().map(|e| (e.src.0, e.dst.0)).collect(),
            log: Vec::new(),
        }
    }

    /// Rebuild the overlay state at a given version by replaying an
    /// event prefix over the base graph — the snapshot-migration path.
    pub fn replay(graph: &Graph, events: &[TopologyEvent]) -> Result<Self, TopologyError> {
        let mut t = Topology::new(graph);
        for &ev in events {
            t.apply(ev)?;
        }
        Ok(t)
    }

    /// Number of applied events; the state equals the base graph plus
    /// `log()[..version()]`.
    pub fn version(&self) -> u64 {
        self.log.len() as u64
    }

    /// The full applied-event log, oldest first.
    pub fn log(&self) -> &[TopologyEvent] {
        &self.log
    }

    /// The event delta from `version` (a past [`Topology::version`])
    /// to the present — what a restore from an older snapshot replays.
    pub fn events_since(&self, version: u64) -> &[TopologyEvent] {
        &self.log[(version as usize).min(self.log.len())..]
    }

    /// Check an event against the base graph without applying it.
    pub fn validate(&self, event: TopologyEvent) -> Result<(), TopologyError> {
        let check_edge = |edge: EdgeId| {
            if edge.index() >= self.capacity.len() {
                Err(TopologyError::UnknownEdge {
                    edge: edge.0,
                    edges: self.capacity.len(),
                })
            } else {
                Ok(())
            }
        };
        let check_node = |node: NodeId| {
            if node.index() >= self.drained.len() {
                Err(TopologyError::UnknownNode {
                    node: node.0,
                    nodes: self.drained.len(),
                })
            } else {
                Ok(())
            }
        };
        match event {
            TopologyEvent::SetCapacity { edge, capacity } => {
                check_edge(edge)?;
                if !capacity.is_finite() || capacity <= 0.0 {
                    return Err(TopologyError::BadCapacity {
                        edge: edge.0,
                        capacity,
                    });
                }
                Ok(())
            }
            TopologyEvent::LinkDown { edge } | TopologyEvent::LinkUp { edge } => check_edge(edge),
            TopologyEvent::DrainNode { node } | TopologyEvent::UndrainNode { node } => {
                check_node(node)
            }
        }
    }

    /// Validate and apply one event, appending it to the log. On error
    /// nothing changes and nothing is logged.
    pub fn apply(&mut self, event: TopologyEvent) -> Result<(), TopologyError> {
        self.validate(event)?;
        match event {
            TopologyEvent::SetCapacity { edge, capacity } => {
                self.capacity[edge.index()] = capacity;
            }
            TopologyEvent::LinkDown { edge } => self.up[edge.index()] = false,
            TopologyEvent::LinkUp { edge } => self.up[edge.index()] = true,
            TopologyEvent::DrainNode { node } => self.drained[node.index()] = true,
            TopologyEvent::UndrainNode { node } => self.drained[node.index()] = false,
        }
        self.log.push(event);
        Ok(())
    }

    /// Effective capacity of `e`: the configured size while the link is
    /// up, zero while it is down.
    #[inline]
    pub fn effective_capacity(&self, e: EdgeId) -> f64 {
        if self.up[e.index()] {
            self.capacity[e.index()]
        } else {
            0.0
        }
    }

    /// All effective capacities in edge-id order — the capacity vector
    /// the residual tracker rebuilds against after a mutation.
    pub fn effective_capacities(&self) -> Vec<f64> {
        (0..self.capacity.len())
            .map(|e| self.effective_capacity(EdgeId(e as u32)))
            .collect()
    }

    /// Whether link `e` is up.
    #[inline]
    pub fn is_up(&self, e: EdgeId) -> bool {
        self.up[e.index()]
    }

    /// Whether node `n` is drained for maintenance.
    #[inline]
    pub fn is_drained(&self, n: NodeId) -> bool {
        self.drained[n.index()]
    }

    /// Whether edge `e` accepts *new* admissions: link up and neither
    /// endpoint drained. (Existing flows on a drained node's edges keep
    /// their capacity — drain is graceful by design.)
    #[inline]
    pub fn available(&self, e: EdgeId) -> bool {
        let (src, dst) = self.endpoints[e.index()];
        self.up[e.index()] && !self.drained[src as usize] && !self.drained[dst as usize]
    }

    /// Per-edge availability in edge-id order — ANDed into the epoch
    /// usable mask by the admission engine.
    pub fn availability(&self) -> Vec<bool> {
        (0..self.capacity.len())
            .map(|e| self.available(EdgeId(e as u32)))
            .collect()
    }

    /// Number of links currently down.
    pub fn links_down(&self) -> usize {
        self.up.iter().filter(|&&u| !u).count()
    }

    /// Number of nodes currently drained.
    pub fn drained_nodes(&self) -> usize {
        self.drained.iter().filter(|&&d| d).count()
    }

    /// True at version 0 with no state change (the common fast path:
    /// engines skip the whole repair machinery on a pristine overlay).
    pub fn is_pristine(&self) -> bool {
        self.log.is_empty()
    }

    /// FNV-1a 64 digest of the effective *state*: capacity bits, link
    /// state, drain state. Log-independent — two histories reaching the
    /// same network fingerprint equal. Snapshots pin `(version,
    /// fingerprint)` so a restore detects both divergence (same
    /// version, different state) and lag (older version, migratable).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_push(&mut h, &(self.capacity.len() as u64).to_le_bytes());
        fnv_push(&mut h, &(self.drained.len() as u64).to_le_bytes());
        for (e, &c) in self.capacity.iter().enumerate() {
            fnv_push(&mut h, &c.to_bits().to_le_bytes());
            fnv_push(&mut h, &[self.up[e] as u8]);
        }
        for &d in &self.drained {
            fnv_push(&mut h, &[d as u8]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(n(0), n(1), 4.0);
        b.add_edge(n(1), n(2), 8.0);
        b.add_edge(n(0), n(2), 2.0);
        b.build()
    }

    #[test]
    fn pristine_overlay_mirrors_the_graph() {
        let g = triangle();
        let t = Topology::new(&g);
        assert!(t.is_pristine());
        assert_eq!(t.version(), 0);
        assert_eq!(t.effective_capacities(), vec![4.0, 8.0, 2.0]);
        assert_eq!(t.availability(), vec![true; 3]);
        assert_eq!(t.links_down(), 0);
        assert_eq!(t.drained_nodes(), 0);
    }

    #[test]
    fn events_mutate_and_log() {
        let g = triangle();
        let mut t = Topology::new(&g);
        t.apply(TopologyEvent::SetCapacity {
            edge: EdgeId(1),
            capacity: 3.5,
        })
        .unwrap();
        t.apply(TopologyEvent::LinkDown { edge: EdgeId(0) })
            .unwrap();
        t.apply(TopologyEvent::DrainNode { node: n(2) }).unwrap();
        assert_eq!(t.version(), 3);
        assert_eq!(t.effective_capacity(EdgeId(0)), 0.0);
        assert_eq!(t.effective_capacity(EdgeId(1)), 3.5);
        assert!(!t.is_up(EdgeId(0)));
        assert!(t.is_drained(n(2)));
        // Edge 0 is down; edges 1 and 2 touch drained node 2.
        assert_eq!(t.availability(), vec![false, false, false]);
        assert_eq!(t.links_down(), 1);
        t.apply(TopologyEvent::LinkUp { edge: EdgeId(0) }).unwrap();
        t.apply(TopologyEvent::UndrainNode { node: n(2) }).unwrap();
        assert_eq!(
            t.effective_capacity(EdgeId(0)),
            4.0,
            "size survives down/up"
        );
        assert_eq!(t.availability(), vec![true, true, true]);
        assert_eq!(t.events_since(3).len(), 2);
    }

    #[test]
    fn invalid_events_are_typed_and_unapplied() {
        let g = triangle();
        let mut t = Topology::new(&g);
        assert_eq!(
            t.apply(TopologyEvent::LinkDown { edge: EdgeId(9) }),
            Err(TopologyError::UnknownEdge { edge: 9, edges: 3 })
        );
        assert_eq!(
            t.apply(TopologyEvent::DrainNode { node: n(7) }),
            Err(TopologyError::UnknownNode { node: 7, nodes: 3 })
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                t.apply(TopologyEvent::SetCapacity {
                    edge: EdgeId(0),
                    capacity: bad,
                }),
                Err(TopologyError::BadCapacity { edge: 0, .. })
            ));
        }
        assert_eq!(t.version(), 0, "rejected events must not be logged");
        assert_eq!(t.fingerprint(), Topology::new(&g).fingerprint());
    }

    #[test]
    fn fingerprint_tracks_state_not_history() {
        let g = triangle();
        let mut a = Topology::new(&g);
        let base = a.fingerprint();
        a.apply(TopologyEvent::LinkDown { edge: EdgeId(0) })
            .unwrap();
        assert_ne!(a.fingerprint(), base);
        a.apply(TopologyEvent::LinkUp { edge: EdgeId(0) }).unwrap();
        // Different history, same state: fingerprints agree, versions don't.
        assert_eq!(a.fingerprint(), base);
        assert_eq!(a.version(), 2);
    }

    #[test]
    fn replay_reproduces_state_and_version() {
        let g = triangle();
        let mut t = Topology::new(&g);
        let events = vec![
            TopologyEvent::SetCapacity {
                edge: EdgeId(2),
                capacity: 7.0,
            },
            TopologyEvent::LinkDown { edge: EdgeId(1) },
            TopologyEvent::DrainNode { node: n(0) },
        ];
        for &e in &events {
            t.apply(e).unwrap();
        }
        let r = Topology::replay(&g, &events).unwrap();
        assert_eq!(r.version(), t.version());
        assert_eq!(r.fingerprint(), t.fingerprint());
        assert_eq!(r.log(), t.log());
        assert!(Topology::replay(&g, &[TopologyEvent::LinkUp { edge: EdgeId(5) }]).is_err());
    }
}
