//! Residual-capacity views over a [`Graph`].
//!
//! A long-lived allocation engine never mutates its graph; it tracks the
//! demand committed to every edge and exposes the *residual* capacities
//! `c_e − load_e` as the effective network for the next allocation epoch.
//! [`ResidualCaps`] is that bookkeeping: commit/release of routed paths,
//! clamped residual read-out, and the utilization summaries the engine's
//! metrics report.

use crate::graph::Graph;
use crate::ids::EdgeId;
use crate::path::Path;

/// Loads at or below this count as "no committed traffic" for
/// [`ResidualCaps::usable_mask`]: commit/release round-trips leave
/// ~1e-16 of float residue per operation, far below any real normalized
/// demand (> 0), and an effectively-empty edge below the floor must not
/// be frozen out forever.
pub const LOAD_EPSILON: f64 = 1e-9;

/// Committed-load tracker over a graph's edges, yielding residual
/// capacities. Loads are kept separately from capacities so release
/// (churn) cannot drift the base network.
#[derive(Clone, Debug)]
pub struct ResidualCaps {
    caps: Vec<f64>,
    load: Vec<f64>,
}

impl ResidualCaps {
    /// Fresh tracker: zero load everywhere.
    pub fn new(graph: &Graph) -> Self {
        ResidualCaps {
            caps: graph.edges().iter().map(|e| e.capacity).collect(),
            load: vec![0.0; graph.num_edges()],
        }
    }

    /// Fresh tracker over an explicit capacity vector — the dynamic-
    /// topology path, where the effective capacities (resized links,
    /// zero for failed ones) differ from the base graph's. Returns
    /// `None` on a non-finite or negative capacity.
    pub fn with_caps(caps: Vec<f64>) -> Option<Self> {
        if caps.iter().any(|&c| !c.is_finite() || c < 0.0) {
            return None;
        }
        let load = vec![0.0; caps.len()];
        Some(ResidualCaps { caps, load })
    }

    /// Number of tracked edges.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Base capacity of `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.caps[e.index()]
    }

    /// Demand currently committed through `e`.
    #[inline]
    pub fn load(&self, e: EdgeId) -> f64 {
        self.load[e.index()]
    }

    /// Residual capacity of `e`, clamped at zero (floating-point release
    /// noise cannot produce a negative residual).
    #[inline]
    pub fn residual(&self, e: EdgeId) -> f64 {
        (self.caps[e.index()] - self.load[e.index()]).max(0.0)
    }

    /// All residual capacities, in edge-id order.
    pub fn residuals(&self) -> Vec<f64> {
        (0..self.caps.len())
            .map(|e| self.residual(EdgeId(e as u32)))
            .collect()
    }

    /// Residual capacities masked for an out-of-band solver: the
    /// residual of every edge whose `usable` flag is set, `0.0`
    /// elsewhere — the frozen "effective network" view a regret oracle
    /// prices against (`ufp_lp::solve_fractional_ufp_with_caps` treats
    /// zero-capacity edges as absent). Purely a read-out; the tracker
    /// itself is never touched by oracle runs.
    pub fn oracle_caps(&self, usable: &[bool]) -> Vec<f64> {
        assert_eq!(usable.len(), self.caps.len(), "one flag per edge");
        (0..self.caps.len())
            .map(|e| {
                if usable[e] {
                    self.residual(EdgeId(e as u32))
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Committed per-edge loads in edge-id order — the serializable half
    /// of the tracker (capacities are derivable from the graph). Feed the
    /// exact values back through [`ResidualCaps::import`] to reconstruct
    /// a bit-identical tracker.
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    /// Rebuild a tracker over `graph` from loads exported by
    /// [`ResidualCaps::loads`]. Returns `None` when `loads` does not
    /// match the graph's edge count, contains a non-finite or negative
    /// entry, or exceeds an edge's capacity beyond floating-point
    /// commit/release residue (a committed tracker is always feasible,
    /// so an over-capacity load can only come from corrupted or forged
    /// state and must not restore into a negative-residual network) —
    /// callers restoring persisted state turn the `None` into their own
    /// typed error instead of panicking.
    pub fn import(graph: &Graph, loads: Vec<f64>) -> Option<Self> {
        let caps: Vec<f64> = graph.edges().iter().map(|e| e.capacity).collect();
        Self::import_with_caps(caps, loads)
    }

    /// [`ResidualCaps::import`] against an explicit capacity vector —
    /// restoring persisted loads onto a *mutated* topology, where the
    /// feasibility bound is the effective capacity, not the base
    /// graph's. Same validation and `None` semantics.
    pub fn import_with_caps(caps: Vec<f64>, loads: Vec<f64>) -> Option<Self> {
        if loads.len() != caps.len() {
            return None;
        }
        if caps.iter().any(|&c| !c.is_finite() || c < 0.0) {
            return None;
        }
        let feasible = |l: f64, c: f64| l.is_finite() && l >= 0.0 && l <= c * (1.0 + 1e-9) + 1e-9;
        if loads.iter().zip(&caps).any(|(&l, &c)| !feasible(l, c)) {
            return None;
        }
        Some(ResidualCaps { caps, load: loads })
    }

    /// The per-edge *usable* mask for an epoch with residual floor
    /// `floor`: an edge participates when it carries no committed
    /// traffic (up to [`LOAD_EPSILON`] of commit/release float residue)
    /// or its residual still clears the floor. Centralized here because
    /// every consumer — the single engine, each shard's context, the
    /// cross-shard reconciler — must apply the *identical* rule for the
    /// sharded/single bit-identity contract to hold.
    pub fn usable_mask(&self, floor: f64) -> Vec<bool> {
        (0..self.caps.len())
            .map(|e| {
                let e = EdgeId(e as u32);
                self.load(e) <= LOAD_EPSILON || self.residual(e) >= floor
            })
            .collect()
    }

    /// Fraction of capacity in use on `e` (`load / cap`, in `[0, 1]` up
    /// to floating-point noise).
    #[inline]
    pub fn utilization(&self, e: EdgeId) -> f64 {
        self.load[e.index()] / self.caps[e.index()]
    }

    /// Commit `demand` along every edge of `path`.
    pub fn commit(&mut self, path: &Path, demand: f64) {
        debug_assert!(demand >= 0.0);
        for &e in path.edges() {
            self.load[e.index()] += demand;
        }
    }

    /// Release `demand` along every edge of `path` (churn / expiry).
    /// Loads are clamped at zero against release noise.
    pub fn release(&mut self, path: &Path, demand: f64) {
        debug_assert!(demand >= 0.0);
        for &e in path.edges() {
            let l = &mut self.load[e.index()];
            *l = (*l - demand).max(0.0);
        }
    }

    /// Smallest residual capacity (`B` of the residual network).
    pub fn min_residual(&self) -> f64 {
        (0..self.caps.len())
            .map(|e| self.residual(EdgeId(e as u32)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total committed load divided by total capacity.
    pub fn total_utilization(&self) -> f64 {
        let cap: f64 = self.caps.iter().sum();
        if cap <= 0.0 {
            return 0.0;
        }
        self.load.iter().sum::<f64>() / cap
    }

    /// Histogram of per-edge utilization over `buckets` equal-width bins
    /// spanning `[0, 1]`; utilization `1.0` lands in the last bin.
    pub fn utilization_histogram(&self, buckets: usize) -> Vec<usize> {
        assert!(buckets >= 1);
        let mut hist = vec![0usize; buckets];
        for e in 0..self.caps.len() {
            let u = self.utilization(EdgeId(e as u32)).clamp(0.0, 1.0);
            let b = ((u * buckets as f64) as usize).min(buckets - 1);
            hist[b] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::NodeId;

    fn chain(caps: &[f64]) -> (Graph, Path) {
        let mut b = GraphBuilder::directed(caps.len() + 1);
        for (i, &c) in caps.iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), c);
        }
        let g = b.build();
        let path = Path::new(
            (0..=caps.len()).map(|i| NodeId(i as u32)).collect(),
            (0..caps.len()).map(|i| EdgeId(i as u32)).collect(),
        );
        (g, path)
    }

    #[test]
    fn commit_and_release_roundtrip() {
        let (g, p) = chain(&[4.0, 8.0]);
        let mut r = ResidualCaps::new(&g);
        assert_eq!(r.min_residual(), 4.0);
        r.commit(&p, 1.5);
        assert_eq!(r.residual(EdgeId(0)), 2.5);
        assert_eq!(r.residual(EdgeId(1)), 6.5);
        assert_eq!(r.load(EdgeId(0)), 1.5);
        r.release(&p, 1.5);
        assert_eq!(r.residual(EdgeId(0)), 4.0);
        assert_eq!(r.load(EdgeId(1)), 0.0);
    }

    #[test]
    fn residuals_clamp_at_zero() {
        let (g, p) = chain(&[1.0]);
        let mut r = ResidualCaps::new(&g);
        r.commit(&p, 1.0);
        r.commit(&p, 1e-12); // fp overshoot
        assert_eq!(r.residual(EdgeId(0)), 0.0);
        r.release(&p, 5.0); // over-release clamps too
        assert_eq!(r.load(EdgeId(0)), 0.0);
    }

    #[test]
    fn export_import_is_bit_identical() {
        let (g, p) = chain(&[4.0, 8.0, 2.0]);
        let mut r = ResidualCaps::new(&g);
        r.commit(&p, 0.1 + 0.2); // deliberately noisy f64 value
        r.commit(&p, 1.0 / 3.0);
        r.release(&p, 0.1);
        let restored = ResidualCaps::import(&g, r.loads().to_vec()).expect("valid export");
        for e in 0..g.num_edges() {
            let e = EdgeId(e as u32);
            assert_eq!(restored.load(e).to_bits(), r.load(e).to_bits());
            assert_eq!(restored.residual(e).to_bits(), r.residual(e).to_bits());
            assert_eq!(restored.capacity(e).to_bits(), r.capacity(e).to_bits());
        }
        // And the restored tracker keeps evolving identically.
        let mut a = r.clone();
        let mut b = restored;
        a.commit(&p, 0.7);
        b.commit(&p, 0.7);
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn import_rejects_bad_exports() {
        let (g, _) = chain(&[4.0, 8.0]);
        assert!(ResidualCaps::import(&g, vec![0.0]).is_none(), "length");
        assert!(
            ResidualCaps::import(&g, vec![0.0, f64::NAN]).is_none(),
            "non-finite"
        );
        assert!(
            ResidualCaps::import(&g, vec![0.0, -1.0]).is_none(),
            "negative"
        );
        // Loads beyond capacity (caps are 4 and 8 here) cannot come from
        // a committed tracker; fp residue at the boundary is tolerated.
        assert!(
            ResidualCaps::import(&g, vec![0.0, 9.0]).is_none(),
            "over capacity"
        );
        assert!(ResidualCaps::import(&g, vec![4.0 + 1e-12, 8.0]).is_some());
        assert!(ResidualCaps::import(&g, vec![1.0, 2.0]).is_some());
    }

    #[test]
    fn explicit_caps_track_effective_topology() {
        let (_, p) = chain(&[4.0, 8.0]);
        // Edge 0 resized down to 1.0, edge 1 failed (capacity 0).
        let mut r = ResidualCaps::with_caps(vec![1.0, 0.0]).expect("valid caps");
        assert_eq!(r.capacity(EdgeId(0)), 1.0);
        assert_eq!(r.residual(EdgeId(1)), 0.0);
        r.commit(&p, 0.5);
        assert_eq!(r.residual(EdgeId(0)), 0.5);
        assert!(ResidualCaps::with_caps(vec![1.0, f64::NAN]).is_none());
        assert!(ResidualCaps::with_caps(vec![-1.0]).is_none());
        // import_with_caps bounds loads by the effective capacities.
        assert!(ResidualCaps::import_with_caps(vec![1.0, 0.0], vec![0.5, 0.0]).is_some());
        assert!(
            ResidualCaps::import_with_caps(vec![1.0, 0.0], vec![0.5, 0.1]).is_none(),
            "load on a failed edge"
        );
        assert!(
            ResidualCaps::import_with_caps(vec![1.0], vec![0.5, 0.0]).is_none(),
            "length mismatch"
        );
    }

    #[test]
    fn oracle_caps_mask_unusable_edges() {
        let (g, p) = chain(&[4.0, 8.0, 2.0]);
        let mut r = ResidualCaps::new(&g);
        r.commit(&p, 1.0);
        let caps = r.oracle_caps(&[true, false, true]);
        assert_eq!(caps, vec![3.0, 0.0, 1.0]);
        // Read-out only: the tracker is unchanged.
        assert_eq!(r.loads(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn utilization_histogram_buckets() {
        let (g, _) = chain(&[10.0, 10.0, 10.0, 10.0]);
        let mut r = ResidualCaps::new(&g);
        // loads: 0%, 50%, 95%, 100%
        let one = |e: u32| Path::new(vec![NodeId(e), NodeId(e + 1)], vec![EdgeId(e)]);
        r.commit(&one(1), 5.0);
        r.commit(&one(2), 9.5);
        r.commit(&one(3), 10.0);
        let h = r.utilization_histogram(10);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[0], 1);
        assert_eq!(h[5], 1);
        assert_eq!(h[9], 2, "95% and 100% share the last bucket: {h:?}");
        assert!((r.total_utilization() - 24.5 / 40.0).abs() < 1e-12);
    }
}
