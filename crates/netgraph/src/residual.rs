//! Residual-capacity views over a [`Graph`].
//!
//! A long-lived allocation engine never mutates its graph; it tracks the
//! demand committed to every edge and exposes the *residual* capacities
//! `c_e − load_e` as the effective network for the next allocation epoch.
//! [`ResidualCaps`] is that bookkeeping: commit/release of routed paths,
//! clamped residual read-out, and the utilization summaries the engine's
//! metrics report.

use crate::graph::Graph;
use crate::ids::EdgeId;
use crate::path::Path;

/// Committed-load tracker over a graph's edges, yielding residual
/// capacities. Loads are kept separately from capacities so release
/// (churn) cannot drift the base network.
#[derive(Clone, Debug)]
pub struct ResidualCaps {
    caps: Vec<f64>,
    load: Vec<f64>,
}

impl ResidualCaps {
    /// Fresh tracker: zero load everywhere.
    pub fn new(graph: &Graph) -> Self {
        ResidualCaps {
            caps: graph.edges().iter().map(|e| e.capacity).collect(),
            load: vec![0.0; graph.num_edges()],
        }
    }

    /// Number of tracked edges.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Base capacity of `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.caps[e.index()]
    }

    /// Demand currently committed through `e`.
    #[inline]
    pub fn load(&self, e: EdgeId) -> f64 {
        self.load[e.index()]
    }

    /// Residual capacity of `e`, clamped at zero (floating-point release
    /// noise cannot produce a negative residual).
    #[inline]
    pub fn residual(&self, e: EdgeId) -> f64 {
        (self.caps[e.index()] - self.load[e.index()]).max(0.0)
    }

    /// All residual capacities, in edge-id order.
    pub fn residuals(&self) -> Vec<f64> {
        (0..self.caps.len())
            .map(|e| self.residual(EdgeId(e as u32)))
            .collect()
    }

    /// Fraction of capacity in use on `e` (`load / cap`, in `[0, 1]` up
    /// to floating-point noise).
    #[inline]
    pub fn utilization(&self, e: EdgeId) -> f64 {
        self.load[e.index()] / self.caps[e.index()]
    }

    /// Commit `demand` along every edge of `path`.
    pub fn commit(&mut self, path: &Path, demand: f64) {
        debug_assert!(demand >= 0.0);
        for &e in path.edges() {
            self.load[e.index()] += demand;
        }
    }

    /// Release `demand` along every edge of `path` (churn / expiry).
    /// Loads are clamped at zero against release noise.
    pub fn release(&mut self, path: &Path, demand: f64) {
        debug_assert!(demand >= 0.0);
        for &e in path.edges() {
            let l = &mut self.load[e.index()];
            *l = (*l - demand).max(0.0);
        }
    }

    /// Smallest residual capacity (`B` of the residual network).
    pub fn min_residual(&self) -> f64 {
        (0..self.caps.len())
            .map(|e| self.residual(EdgeId(e as u32)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total committed load divided by total capacity.
    pub fn total_utilization(&self) -> f64 {
        let cap: f64 = self.caps.iter().sum();
        if cap <= 0.0 {
            return 0.0;
        }
        self.load.iter().sum::<f64>() / cap
    }

    /// Histogram of per-edge utilization over `buckets` equal-width bins
    /// spanning `[0, 1]`; utilization `1.0` lands in the last bin.
    pub fn utilization_histogram(&self, buckets: usize) -> Vec<usize> {
        assert!(buckets >= 1);
        let mut hist = vec![0usize; buckets];
        for e in 0..self.caps.len() {
            let u = self.utilization(EdgeId(e as u32)).clamp(0.0, 1.0);
            let b = ((u * buckets as f64) as usize).min(buckets - 1);
            hist[b] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::NodeId;

    fn chain(caps: &[f64]) -> (Graph, Path) {
        let mut b = GraphBuilder::directed(caps.len() + 1);
        for (i, &c) in caps.iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), c);
        }
        let g = b.build();
        let path = Path::new(
            (0..=caps.len()).map(|i| NodeId(i as u32)).collect(),
            (0..caps.len()).map(|i| EdgeId(i as u32)).collect(),
        );
        (g, path)
    }

    #[test]
    fn commit_and_release_roundtrip() {
        let (g, p) = chain(&[4.0, 8.0]);
        let mut r = ResidualCaps::new(&g);
        assert_eq!(r.min_residual(), 4.0);
        r.commit(&p, 1.5);
        assert_eq!(r.residual(EdgeId(0)), 2.5);
        assert_eq!(r.residual(EdgeId(1)), 6.5);
        assert_eq!(r.load(EdgeId(0)), 1.5);
        r.release(&p, 1.5);
        assert_eq!(r.residual(EdgeId(0)), 4.0);
        assert_eq!(r.load(EdgeId(1)), 0.0);
    }

    #[test]
    fn residuals_clamp_at_zero() {
        let (g, p) = chain(&[1.0]);
        let mut r = ResidualCaps::new(&g);
        r.commit(&p, 1.0);
        r.commit(&p, 1e-12); // fp overshoot
        assert_eq!(r.residual(EdgeId(0)), 0.0);
        r.release(&p, 5.0); // over-release clamps too
        assert_eq!(r.load(EdgeId(0)), 0.0);
    }

    #[test]
    fn utilization_histogram_buckets() {
        let (g, _) = chain(&[10.0, 10.0, 10.0, 10.0]);
        let mut r = ResidualCaps::new(&g);
        // loads: 0%, 50%, 95%, 100%
        let one = |e: u32| Path::new(vec![NodeId(e), NodeId(e + 1)], vec![EdgeId(e)]);
        r.commit(&one(1), 5.0);
        r.commit(&one(2), 9.5);
        r.commit(&one(3), 10.0);
        let h = r.utilization_histogram(10);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[0], 1);
        assert_eq!(h[5], 1);
        assert_eq!(h[9], 2, "95% and 100% share the last bucket: {h:?}");
        assert!((r.total_utilization() - 24.5 / 40.0).abs() < 1e-12);
    }
}
