//! Dense `u32` handles for nodes and edges.
//!
//! Algorithms in this workspace index flat `Vec`s by these handles; keeping
//! them at 32 bits halves the memory traffic of adjacency lists and path
//! storage relative to `usize` on 64-bit targets (see the type-size guidance
//! in the Rust performance book).

use std::fmt;

/// Identifier of a vertex. Valid indices are `0..graph.num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge. Valid indices are `0..graph.num_edges()`.
///
/// In undirected graphs a single `EdgeId` is shared by both traversal
/// directions; capacity is consumed jointly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for `Vec` indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The index as a `usize`, for `Vec` indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        // Option niches are not available for plain u32 wrappers; algorithms
        // use sentinel-free parallel `Vec<bool>`/stamp arrays instead.
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(7) > EdgeId(0));
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(EdgeId::from(9u32), EdgeId(9));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(5)), "n5");
        assert_eq!(format!("{:?}", EdgeId(11)), "e11");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(42).index(), 42usize);
        assert_eq!(EdgeId(17).index(), 17usize);
    }
}
