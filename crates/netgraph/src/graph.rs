//! Capacitated multigraph with immutable CSR adjacency.

use crate::csr::{AdjEntry, Csr};
use crate::ids::{EdgeId, NodeId};

/// Whether edges may be traversed in one direction or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Edges are arcs `src -> dst`.
    Directed,
    /// Edges may be traversed both ways; capacity is shared between the
    /// two directions (the standard undirected-UFP semantics used by the
    /// paper's Figure 3 construction).
    Undirected,
}

/// One capacitated edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Tail vertex (one endpoint for undirected graphs).
    pub src: NodeId,
    /// Head vertex (the other endpoint for undirected graphs).
    pub dst: NodeId,
    /// Positive capacity `c_e`.
    pub capacity: f64,
}

/// An immutable capacitated multigraph.
///
/// Construct through [`GraphBuilder`]; the builder validates endpoints and
/// capacities and assembles the CSR adjacency exactly once.
#[derive(Clone, Debug)]
pub struct Graph {
    kind: GraphKind,
    num_nodes: u32,
    edges: Vec<Edge>,
    adjacency: Csr,
}

impl Graph {
    /// Graph kind (directed / undirected).
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge behind `id`.
    #[inline(always)]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Capacity of edge `id`.
    #[inline(always)]
    pub fn capacity(&self, id: EdgeId) -> f64 {
        self.edges[id.index()].capacity
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing adjacency of `v` (both directions for undirected graphs).
    #[inline(always)]
    pub fn neighbors(&self, v: NodeId) -> &[AdjEntry] {
        self.adjacency.neighbors(v)
    }

    /// Minimum edge capacity; the paper's bound parameter `B` once demands
    /// are normalized into `(0, 1]`. Returns `f64::INFINITY` on an edgeless
    /// graph (no constraint binds).
    pub fn min_capacity(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum edge capacity (used by the repetition algorithm's runtime
    /// bound `m · c_max / d_min`).
    pub fn max_capacity(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity).fold(0.0, f64::max)
    }

    /// Endpoint of `edge` opposite to `from`. Panics if `from` is not an
    /// endpoint.
    #[inline]
    pub fn other_endpoint(&self, edge: EdgeId, from: NodeId) -> NodeId {
        let e = self.edge(edge);
        if e.src == from {
            e.dst
        } else {
            debug_assert_eq!(e.dst, from, "vertex is not an endpoint of edge");
            e.src
        }
    }
}

/// Incremental builder for [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    kind: GraphKind,
    num_nodes: u32,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start a directed graph with `num_nodes` vertices.
    pub fn directed(num_nodes: usize) -> Self {
        Self::new(GraphKind::Directed, num_nodes)
    }

    /// Start an undirected graph with `num_nodes` vertices.
    pub fn undirected(num_nodes: usize) -> Self {
        Self::new(GraphKind::Undirected, num_nodes)
    }

    fn new(kind: GraphKind, num_nodes: usize) -> Self {
        assert!(num_nodes <= u32::MAX as usize, "too many nodes");
        GraphBuilder {
            kind,
            num_nodes: num_nodes as u32,
            edges: Vec::new(),
        }
    }

    /// Append `count` fresh vertices, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.num_nodes;
        self.num_nodes = self
            .num_nodes
            .checked_add(count as u32)
            .expect("node count overflow");
        NodeId(first)
    }

    /// Current number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Add an edge with the given positive capacity. Self-loops are
    /// rejected: they can never appear on a simple path, and admitting them
    /// would complicate the undirected adjacency.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> EdgeId {
        assert!(src.0 < self.num_nodes, "edge source {src} out of range");
        assert!(dst.0 < self.num_nodes, "edge target {dst} out of range");
        assert_ne!(src, dst, "self-loops are not representable");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive and finite, got {capacity}"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, capacity });
        id
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut arcs = Vec::with_capacity(match self.kind {
            GraphKind::Directed => self.edges.len(),
            GraphKind::Undirected => self.edges.len() * 2,
        });
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            arcs.push((e.src, e.dst, id));
            if self.kind == GraphKind::Undirected {
                arcs.push((e.dst, e.src, id));
            }
        }
        let adjacency = Csr::build(self.num_nodes, &arcs);
        Graph {
            kind: self.kind,
            num_nodes: self.num_nodes,
            edges: self.edges,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_adjacency_is_one_sided() {
        let mut b = GraphBuilder::directed(3);
        let e01 = b.add_edge(NodeId(0), NodeId(1), 2.0);
        b.add_edge(NodeId(1), NodeId(2), 3.0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(NodeId(0)).len(), 1);
        assert_eq!(g.neighbors(NodeId(1)).len(), 1);
        assert!(g.neighbors(NodeId(2)).is_empty());
        assert_eq!(g.capacity(e01), 2.0);
        assert_eq!(g.min_capacity(), 2.0);
        assert_eq!(g.max_capacity(), 3.0);
    }

    #[test]
    fn undirected_adjacency_is_two_sided_shared_edge() {
        let mut b = GraphBuilder::undirected(2);
        let e = b.add_edge(NodeId(0), NodeId(1), 5.0);
        let g = b.build();
        assert_eq!(g.neighbors(NodeId(0))[0].edge, e);
        assert_eq!(g.neighbors(NodeId(1))[0].edge, e);
        assert_eq!(g.neighbors(NodeId(1))[0].to, NodeId(0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn other_endpoint() {
        let mut b = GraphBuilder::undirected(2);
        let e = b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(e, NodeId(1)), NodeId(0));
    }

    #[test]
    fn add_nodes_extends() {
        let mut b = GraphBuilder::directed(1);
        let first = b.add_nodes(3);
        assert_eq!(first, NodeId(1));
        assert_eq!(b.num_nodes(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_capacity() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(1), NodeId(1), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_endpoint() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(NodeId(0), NodeId(5), 1.0);
    }

    #[test]
    fn parallel_edges_supported() {
        let mut b = GraphBuilder::directed(2);
        let e0 = b.add_edge(NodeId(0), NodeId(1), 1.0);
        let e1 = b.add_edge(NodeId(0), NodeId(1), 2.0);
        let g = b.build();
        assert_ne!(e0, e1);
        assert_eq!(g.neighbors(NodeId(0)).len(), 2);
    }

    #[test]
    fn min_capacity_of_empty_graph_is_infinite() {
        let g = GraphBuilder::directed(3).build();
        assert_eq!(g.min_capacity(), f64::INFINITY);
        assert_eq!(g.max_capacity(), 0.0);
    }
}
