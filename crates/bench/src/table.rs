//! Plain-text result tables — the "rows the paper would report".

use std::fmt::Write as _;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (e.g. "E2").
    pub id: &'static str,
    /// Human title, naming the theorem/figure being reproduced.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (verdicts, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            id,
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// Render as CSV (machine-readable companion to EXPERIMENTS.md).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with 4 significant decimals (table cells).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "smoke", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        t.note("fine");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("bbbb"));
        assert!(s.contains("* fine"));
        // all data lines same width
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("E0", "smoke", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("E0", "smoke", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
