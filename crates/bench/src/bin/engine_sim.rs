//! `engine_sim` — trace-replay driver for the streaming admission-control
//! engine.
//!
//! Generates a deterministic arrival trace (Poisson by default; diurnal /
//! flash-crowd / churn variants via flags), replays it through
//! [`ufp_engine::Engine`] on a random `G(n, m)` network, and prints a
//! summary table. Everything written to **stdout** is a deterministic
//! function of the flags (two runs with the same seed are byte-identical);
//! wall-clock figures (latency percentiles, throughput) go to stderr.
//! Exception: under `--json` the emitted document carries a `"timing"`
//! object (total wall-clock, latency percentiles, throughput) that is
//! explicitly *not* deterministic — strip it before byte-comparing runs.
//!
//! Payments: `--payments critical` prices every admission with
//! prefix-resumed critical-value bisection; `--payments critical-naive`
//! runs the full-rerun baseline (bit-identical revenue, superlinearly
//! slower — kept for speedup measurements like `BENCH_PR2.json`).
//!
//! ```text
//! cargo run -p ufp-bench --release --bin engine_sim
//! cargo run -p ufp-bench --release --bin engine_sim -- \
//!     --nodes 1000 --edges 5000 --epochs 200 --mean 550 --seed 7 \
//!     --process diurnal --churn 20,60 --payments critical --json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ufp_bench::table::{f2, Table};
use ufp_core::StopReason;
use ufp_engine::{Engine, EngineConfig, EventLevel, PaymentPolicy};
use ufp_netgraph::generators;
use ufp_par::Pool;
use ufp_workloads::arrivals::{arrival_trace, ArrivalProcess, ArrivalTraceConfig};
use ufp_workloads::random_ufp::required_b;

struct Options {
    nodes: usize,
    edges: usize,
    epochs: usize,
    mean: f64,
    hotspots: usize,
    epsilon: f64,
    seed: u64,
    process: String,
    churn: Option<(u32, u32)>,
    payments: String,
    json: bool,
    threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            nodes: 1000,
            edges: 5000,
            epochs: 200,
            mean: 550.0,
            hotspots: 32,
            epsilon: 0.5,
            seed: 7,
            process: "poisson".to_string(),
            churn: None,
            payments: "none".to_string(),
            json: false,
            threads: 1,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--nodes" => options.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--edges" => options.edges = value("--edges")?.parse().map_err(|e| format!("{e}"))?,
            "--epochs" => {
                options.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--mean" => options.mean = value("--mean")?.parse().map_err(|e| format!("{e}"))?,
            "--hotspots" => {
                options.hotspots = value("--hotspots")?.parse().map_err(|e| format!("{e}"))?
            }
            "--eps" => options.epsilon = value("--eps")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => options.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--process" => options.process = value("--process")?,
            "--payments" => options.payments = value("--payments")?,
            "--json" => options.json = true,
            "--threads" => {
                options.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--churn" => {
                let spec = value("--churn")?;
                let (lo, hi) = spec
                    .split_once(',')
                    .ok_or_else(|| format!("--churn wants lo,hi, got {spec}"))?;
                options.churn = Some((
                    lo.parse().map_err(|e| format!("{e}"))?,
                    hi.parse().map_err(|e| format!("{e}"))?,
                ));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("engine_sim: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Network: random digraph in the large-capacity regime for the chosen ε.
    let b = required_b(options.edges, options.epsilon).ceil();
    let mut graph_rng = StdRng::seed_from_u64(options.seed);
    let graph = generators::gnm_digraph(options.nodes, options.edges, (b, 2.0 * b), &mut graph_rng);

    let process = match options.process.as_str() {
        "poisson" => ArrivalProcess::Poisson { mean: options.mean },
        "diurnal" => ArrivalProcess::Diurnal {
            mean: options.mean,
            amplitude: 0.6,
            period: 24,
        },
        "flash" => ArrivalProcess::FlashCrowd {
            base: options.mean,
            spike: 4.0 * options.mean,
            at: (options.epochs / 2) as u32,
            width: 5,
        },
        other => {
            eprintln!("engine_sim: unknown process {other} (poisson|diurnal|flash)");
            return ExitCode::FAILURE;
        }
    };
    let trace_config = ArrivalTraceConfig {
        epochs: options.epochs,
        process,
        hotspot_pairs: Some(options.hotspots),
        demand_range: (0.2, 1.0),
        ttl_range: options.churn,
        seed: options.seed,
        ..Default::default()
    };
    let trace = arrival_trace(&graph, &trace_config);
    let total_requests: usize = trace.iter().map(Vec::len).sum();

    // Replay.
    let payment_policy = match options.payments.as_str() {
        "none" => PaymentPolicy::None,
        "critical" => PaymentPolicy::critical_value(),
        "critical-naive" => PaymentPolicy::critical_value_naive(),
        other => {
            eprintln!("engine_sim: unknown payments {other} (none|critical|critical-naive)");
            return ExitCode::FAILURE;
        }
    };
    let engine_config = EngineConfig {
        events: EventLevel::Epoch,
        payments: payment_policy,
        ..EngineConfig::with_epsilon(options.epsilon).parallel(Pool::new(options.threads))
    };
    let mut engine = Engine::new(graph, engine_config);
    let mut stop_counts = [0usize; 4];
    let mut sampled_rows: Vec<Vec<String>> = Vec::new();
    let sample_every = (options.epochs / 10).max(1);
    let replay_started = Instant::now();
    for (t, batch) in trace.iter().enumerate() {
        let report = engine.submit_batch(batch);
        stop_counts[match report.stop {
            StopReason::Exhausted => 0,
            StopReason::Guard => 1,
            StopReason::NoPath => 2,
            StopReason::IterationCap => 3,
        }] += 1;
        if (t + 1) % sample_every == 0 || t + 1 == options.epochs {
            let m = engine.metrics();
            sampled_rows.push(vec![
                report.epoch.to_string(),
                report.arrivals.to_string(),
                report.accepted.to_string(),
                report.released.to_string(),
                f2(100.0 * m.acceptance_rate()),
                f2(100.0 * report.total_utilization),
                f2(report.min_residual),
            ]);
        }
    }

    let replay_elapsed = replay_started.elapsed();

    // Feasibility verdict: active always; cumulative too when no churn.
    let instance = engine.instance();
    let active_ok = engine.active_solution().check_feasible(&instance, false);
    let cumulative_ok = options.churn.is_none().then(|| {
        engine
            .cumulative_solution()
            .check_feasible(&instance, false)
    });
    let feasible = active_ok.is_ok() && cumulative_ok.as_ref().is_none_or(|c| c.is_ok());

    if options.json {
        let metrics = engine.metrics();
        let churn = match options.churn {
            Some((lo, hi)) => format!("[{lo}, {hi}]"),
            None => "null".to_string(),
        };
        println!("{{");
        println!(
            "  \"config\": {{\"nodes\": {}, \"edges\": {}, \"epochs\": {}, \"mean\": {}, \
             \"hotspots\": {}, \"eps\": {}, \"seed\": {}, \"process\": \"{}\", \
             \"churn\": {}, \"payments\": \"{}\", \"threads\": {}}},",
            options.nodes,
            options.edges,
            options.epochs,
            options.mean,
            options.hotspots,
            options.epsilon,
            options.seed,
            options.process,
            churn,
            options.payments,
            options.threads
        );
        println!(
            "  \"totals\": {{\"requests\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"released\": {}, \"acceptance_rate\": {:.6}, \"value_admitted\": {:.6}, \
             \"revenue\": {:.6}, \"utilization\": {:.6}, \
             \"stops\": {{\"exhausted\": {}, \"guard\": {}, \"nopath\": {}, \"cap\": {}}}}},",
            total_requests,
            metrics.accepted,
            metrics.rejected,
            metrics.released,
            metrics.acceptance_rate(),
            metrics.value_admitted,
            metrics.revenue,
            engine.residual().total_utilization(),
            stop_counts[0],
            stop_counts[1],
            stop_counts[2],
            stop_counts[3]
        );
        println!("  \"feasible\": {feasible},");
        // Wall-clock block — the one non-deterministic part of the
        // document; strip it before byte-comparing runs.
        println!(
            "  \"timing\": {{\"elapsed_s\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
             \"requests_per_s\": {:.1}}}",
            replay_elapsed.as_secs_f64(),
            metrics.p50_latency_us().unwrap_or(0),
            metrics.p99_latency_us().unwrap_or(0),
            metrics.requests_per_second().unwrap_or(0.0)
        );
        println!("}}");
        return if feasible {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Deterministic summary (stdout).
    let metrics = engine.metrics();
    let mut timeline = Table::new(
        "SIM-T",
        format!(
            "engine timeline — {} nodes, {} edges, {} epochs, {} process, seed {}",
            options.nodes, options.edges, options.epochs, options.process, options.seed
        ),
        &[
            "epoch",
            "arrivals",
            "accepted",
            "released",
            "cum acc %",
            "util %",
            "min resid",
        ],
    );
    for row in sampled_rows {
        timeline.row(row);
    }
    print!("{}", timeline.render());

    let mut summary = Table::new("SIM-S", "engine summary", &["metric", "value"]);
    let kv = |t: &mut Table, k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv(
        &mut summary,
        "requests in trace",
        total_requests.to_string(),
    );
    kv(&mut summary, "epochs", metrics.epochs.to_string());
    kv(&mut summary, "accepted", metrics.accepted.to_string());
    kv(&mut summary, "rejected", metrics.rejected.to_string());
    kv(&mut summary, "released", metrics.released.to_string());
    kv(
        &mut summary,
        "acceptance rate %",
        f2(100.0 * metrics.acceptance_rate()),
    );
    kv(&mut summary, "value admitted", f2(metrics.value_admitted));
    kv(&mut summary, "payments", options.payments.clone());
    kv(&mut summary, "revenue", f2(metrics.revenue));
    kv(
        &mut summary,
        "total utilization %",
        f2(100.0 * engine.residual().total_utilization()),
    );
    let hist = engine.utilization_histogram(10);
    kv(
        &mut summary,
        "edge util histogram",
        hist.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("/"),
    );
    kv(
        &mut summary,
        "stops exh/guard/nopath/cap",
        format!(
            "{}/{}/{}/{}",
            stop_counts[0], stop_counts[1], stop_counts[2], stop_counts[3]
        ),
    );

    match &active_ok {
        Ok(()) => summary.note("active solution: check_feasible PASS"),
        Err(e) => summary.note(format!("active solution: check_feasible FAIL — {e}")),
    }
    match &cumulative_ok {
        Some(Ok(())) => summary.note("cumulative solution: check_feasible PASS"),
        Some(Err(e)) => summary.note(format!("cumulative solution: check_feasible FAIL — {e}")),
        None => summary.note("cumulative feasibility skipped (churn releases capacity)"),
    }
    print!("{}", summary.render());

    // Wall-clock figures (stderr; excluded from determinism).
    eprintln!(
        "latency p50 {} µs, p99 {} µs; throughput {:.0} requests/s",
        metrics.p50_latency_us().unwrap_or(0),
        metrics.p99_latency_us().unwrap_or(0),
        metrics.requests_per_second().unwrap_or(0.0),
    );

    if feasible {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
